//! Guard-time budget and effective user bandwidth (§IV.C, §V).
//!
//! Between consecutive cells the optical switch reconfigures, the
//! burst-mode receivers reacquire phase, and all packets must hit the
//! switching window despite arrival jitter. No user data flows during that
//! guard time, so it directly taxes the effective bandwidth. On top of
//! that the FEC costs 6.25% of the remaining bits.
//!
//! The demonstrator's 256-byte cell *includes* the guard time, giving the
//! 51.2 ns cell cycle at 40 Gb/s, and the paper claims ≈75% effective user
//! bandwidth — which pins the guard budget at 10.4 ns:
//!
//! ```text
//! (51.2 − 10.4)/51.2 / 1.0625 = 0.75
//! ```

use osmosis_sim::TimeDelta;

/// Itemized guard-time budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardBudget {
    /// SOA gate settling time (§II: ≈5 ns today).
    pub soa_switching: TimeDelta,
    /// Burst-mode receiver phase reacquisition (central reference clock
    /// removes the frequency search; phase still must lock).
    pub phase_reacquisition: TimeDelta,
    /// Packet arrival jitter absorbed at the switch (all cells must arrive
    /// aligned while the crossbar reconfigures; see ref. [20]).
    pub arrival_jitter: TimeDelta,
}

impl GuardBudget {
    /// The demonstrator's budget: 5 + 3.8 + 1.6 = 10.4 ns.
    pub fn osmosis_default() -> Self {
        GuardBudget {
            soa_switching: TimeDelta::from_ns(5),
            phase_reacquisition: TimeDelta::from_ps(3_800),
            arrival_jitter: TimeDelta::from_ps(1_600),
        }
    }

    /// §VII outlook: sub-ns SOAs (DPSK, high current density), fast
    /// dual-time-constant CDR, tighter synchronization.
    pub fn fast_outlook() -> Self {
        GuardBudget {
            soa_switching: TimeDelta::from_ps(800),
            phase_reacquisition: TimeDelta::from_ps(1_000),
            arrival_jitter: TimeDelta::from_ps(700),
        }
    }

    /// Total guard time: the components are sequential within the window
    /// (switch settles, receiver locks, jitter margin), so they add.
    pub fn total(&self) -> TimeDelta {
        self.soa_switching + self.phase_reacquisition + self.arrival_jitter
    }
}

/// Bandwidth-efficiency model of a fixed-cell synchronous port.
#[derive(Debug, Clone, Copy)]
pub struct CellEfficiency {
    /// Cell size in bytes, *including* the guard-time equivalent.
    pub cell_bytes: u64,
    /// Port line rate in Gb/s.
    pub port_gbps: f64,
    /// Guard time per cell.
    pub guard: TimeDelta,
    /// FEC coding overhead (0.0625 for the OSMOSIS code).
    pub fec_overhead: f64,
}

impl CellEfficiency {
    /// The demonstrator: 256-byte cells at 40 Gb/s with the default guard
    /// budget and the (272,256) FEC.
    pub fn osmosis_default() -> Self {
        CellEfficiency {
            cell_bytes: 256,
            port_gbps: 40.0,
            guard: GuardBudget::osmosis_default().total(),
            fec_overhead: 0.0625,
        }
    }

    /// Cell cycle time (serialization of the full cell).
    pub fn cycle(&self) -> TimeDelta {
        TimeDelta::serialization(self.cell_bytes, self.port_gbps)
    }

    /// Fraction of the cycle that carries line bits (1 − guard fraction).
    pub fn line_fraction(&self) -> f64 {
        let cycle = self.cycle().as_ns_f64();
        let guard = self.guard.as_ns_f64();
        assert!(guard < cycle, "guard time exceeds the cell cycle");
        (cycle - guard) / cycle
    }

    /// Effective user bandwidth as a fraction of the raw port rate:
    /// guard tax × FEC tax.
    pub fn user_fraction(&self) -> f64 {
        self.line_fraction() / (1.0 + self.fec_overhead)
    }

    /// Effective user bandwidth in Gb/s.
    pub fn user_gbps(&self) -> f64 {
        self.user_fraction() * self.port_gbps
    }

    /// User payload bytes carried per cell.
    pub fn user_bytes_per_cell(&self) -> f64 {
        self.user_fraction() * self.cell_bytes as f64
    }
}

/// Sweep helper: user-bandwidth fraction as a function of guard time for a
/// given cell size (the §VII argument that faster SOAs permit smaller
/// cells).
pub fn user_fraction_vs_guard(
    cell_bytes: u64,
    port_gbps: f64,
    fec_overhead: f64,
    guards: &[TimeDelta],
) -> Vec<(TimeDelta, f64)> {
    guards
        .iter()
        .map(|&g| {
            let e = CellEfficiency {
                cell_bytes,
                port_gbps,
                guard: g,
                fec_overhead,
            };
            (g, e.user_fraction())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_10_4_ns() {
        let g = GuardBudget::osmosis_default();
        assert_eq!(g.total(), TimeDelta::from_ps(10_400));
    }

    #[test]
    fn fast_outlook_is_sub_3ns() {
        let g = GuardBudget::fast_outlook();
        assert!(g.total() < TimeDelta::from_ns(3));
        assert!(
            g.soa_switching < TimeDelta::from_ns(1),
            "sub-ns SOA per §VII"
        );
    }

    #[test]
    fn demonstrator_cycle_is_51_2ns() {
        let e = CellEfficiency::osmosis_default();
        assert_eq!(e.cycle(), TimeDelta::from_ps(51_200));
    }

    #[test]
    fn paper_claim_75_percent_user_bandwidth() {
        // Table 1: "Effective user bandwidth ≥ 75% of raw transmission
        // bandwidth"; §VI.C: "close to 75%".
        let e = CellEfficiency::osmosis_default();
        let f = e.user_fraction();
        assert!((f - 0.75).abs() < 0.001, "user fraction {f}");
        assert!((e.user_gbps() - 30.0).abs() < 0.05);
        assert!((e.user_bytes_per_cell() - 192.0).abs() < 0.3);
    }

    #[test]
    fn smaller_cells_need_faster_soas() {
        // A 64-byte cell at 40 Gb/s is a 12.8 ns cycle: the 10.4 ns guard
        // would destroy efficiency, the sub-ns outlook keeps it usable.
        let slow = CellEfficiency {
            cell_bytes: 64,
            port_gbps: 40.0,
            guard: GuardBudget::osmosis_default().total(),
            fec_overhead: 0.0625,
        };
        assert!(slow.user_fraction() < 0.20, "{}", slow.user_fraction());
        let fast = CellEfficiency {
            guard: GuardBudget::fast_outlook().total(),
            ..slow
        };
        assert!(fast.user_fraction() > 0.70, "{}", fast.user_fraction());
    }

    #[test]
    #[should_panic(expected = "guard time exceeds")]
    fn guard_longer_than_cycle_rejected() {
        let e = CellEfficiency {
            cell_bytes: 64,
            port_gbps: 40.0,
            guard: TimeDelta::from_ns(20),
            fec_overhead: 0.0625,
        };
        e.line_fraction();
    }

    #[test]
    fn sweep_is_monotone_decreasing() {
        let guards: Vec<TimeDelta> = (0..10).map(TimeDelta::from_ns).collect();
        let pts = user_fraction_vs_guard(256, 40.0, 0.0625, &guards);
        for w in pts.windows(2) {
            assert!(w[1].1 < w[0].1);
        }
        assert!(
            (pts[0].1 - 1.0 / 1.0625).abs() < 1e-9,
            "zero guard → FEC tax only"
        );
    }
}
