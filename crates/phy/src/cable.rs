//! Copper vs. fiber cable models (§I).
//!
//! The paper's opening argument: at 10 Gb/s per wire, copper hits the skin
//! effect — either the conductor diameter grows until the cable bundle is
//! "unmanageably thick", or per-lane equalization burns too much power and
//! chip area. Optical fiber removes the reach/diameter coupling at the
//! cost of EO/OE conversions.
//!
//! The copper model is a first-order skin-effect law: attenuation scales
//! with √f·L/d. The constant is calibrated to a representative 100 Ω
//! twinax: ≈ 20 dB at 5 GHz over 10 m with a 1 mm conductor.

use osmosis_sim::TimeDelta;

/// Skin-effect attenuation constant: dB · mm / (m · √GHz).
pub const COPPER_K: f64 = 2.0;

/// Unequalized receiver budget: how much channel loss a plain CML
/// transceiver tolerates (dB).
pub const UNEQUALIZED_BUDGET_DB: f64 = 15.0;

/// Budget with heavy DFE/FFE equalization (dB).
pub const EQUALIZED_BUDGET_DB: f64 = 35.0;

/// Copper attenuation for a lane at `gbps` (Nyquist = rate/2), length in
/// meters, conductor diameter in millimeters.
pub fn copper_attenuation_db(gbps: f64, length_m: f64, diameter_mm: f64) -> f64 {
    assert!(gbps > 0.0 && length_m >= 0.0 && diameter_mm > 0.0);
    let f_ghz = gbps / 2.0;
    COPPER_K * f_ghz.sqrt() * length_m / diameter_mm
}

/// Maximum copper reach for a given rate, diameter and loss budget.
pub fn copper_max_reach_m(gbps: f64, diameter_mm: f64, budget_db: f64) -> f64 {
    budget_db * diameter_mm / (COPPER_K * (gbps / 2.0).sqrt())
}

/// Conductor diameter needed to cover `length_m` at `gbps` within
/// `budget_db`.
pub fn copper_required_diameter_mm(gbps: f64, length_m: f64, budget_db: f64) -> f64 {
    COPPER_K * (gbps / 2.0).sqrt() * length_m / budget_db
}

/// Fiber attenuation: 0.35 dB/km, rate-independent — the skin effect does
/// not exist in glass.
pub fn fiber_attenuation_db(length_m: f64) -> f64 {
    0.35e-3 * length_m
}

/// Equalizer power for one lane, in watts: empirically ≈ 1 mW per dB of
/// compensated loss per Gb/s of lane rate, normalized to 10 Gb/s
/// (DSP complexity grows with both loss and rate).
pub fn equalizer_power_w(gbps: f64, compensated_db: f64) -> f64 {
    1e-3 * compensated_db.max(0.0) * (gbps / 10.0)
}

/// Propagation delay in copper (≈ 4.3 ns/m, foamed dielectric).
pub fn copper_flight(length_m: f64) -> TimeDelta {
    TimeDelta::from_ns_f64(4.3 * length_m)
}

/// Propagation delay in fiber (5 ns/m, matching the paper's 250 ns per
/// 50 m budget).
pub fn fiber_flight(length_m: f64) -> TimeDelta {
    TimeDelta::fiber_flight(length_m)
}

/// A port's cable plant: how many lanes at what rate, over what distance.
#[derive(Debug, Clone, Copy)]
pub struct PortCabling {
    /// Port bandwidth in GByte/s per direction (12 for IB 12x QDR).
    pub port_gbyte_s: f64,
    /// Per-lane signalling rate in Gb/s.
    pub lane_gbps: f64,
    /// Cable run length in meters.
    pub length_m: f64,
}

impl PortCabling {
    /// The paper's reference port: 12 GByte/s over a 50 m machine room.
    pub fn osmosis_reference() -> Self {
        PortCabling {
            port_gbyte_s: 12.0,
            lane_gbps: 10.0,
            length_m: 50.0,
        }
    }

    /// Number of lanes per direction.
    pub fn lanes(&self) -> u32 {
        (self.port_gbyte_s * 8.0 / self.lane_gbps).ceil() as u32
    }

    /// Copper bundle cross-section (mm²) using the diameter each lane
    /// needs at the unequalized budget, two conductors per differential
    /// lane, both directions.
    pub fn copper_bundle_mm2(&self) -> f64 {
        let d = copper_required_diameter_mm(self.lane_gbps, self.length_m, UNEQUALIZED_BUDGET_DB);
        let per_conductor = std::f64::consts::PI * (d / 2.0) * (d / 2.0);
        per_conductor * 2.0 * 2.0 * self.lanes() as f64
    }

    /// Fiber bundle cross-section (mm²): 250 µm coated fiber per lane per
    /// direction.
    pub fn fiber_bundle_mm2(&self) -> f64 {
        let d = 0.25f64;
        std::f64::consts::PI * (d / 2.0) * (d / 2.0) * 2.0 * self.lanes() as f64
    }

    /// Total equalizer power (W) if copper lanes were driven with DSP at
    /// a 1 mm conductor diameter instead of growing the conductor.
    pub fn copper_eq_power_w(&self) -> f64 {
        let loss = copper_attenuation_db(self.lane_gbps, self.length_m, 1.0);
        let compensated = (loss - UNEQUALIZED_BUDGET_DB).max(0.0);
        equalizer_power_w(self.lane_gbps, compensated) * 2.0 * self.lanes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_point() {
        // 10 Gb/s (5 GHz), 10 m, 1 mm → ≈ 20·√5/5 ... = 2·2.236·10 ≈ 44.7?
        // K = 2.0: 2·√5·10/1 = 44.7 dB. At 1 m: 4.47 dB.
        let a = copper_attenuation_db(10.0, 1.0, 1.0);
        assert!((a - 4.472).abs() < 0.01);
    }

    #[test]
    fn attenuation_scales_with_sqrt_rate() {
        let a10 = copper_attenuation_db(10.0, 10.0, 1.0);
        let a40 = copper_attenuation_db(40.0, 10.0, 1.0);
        assert!((a40 / a10 - 2.0).abs() < 1e-9, "√(40/10) = 2");
    }

    #[test]
    fn reach_and_diameter_are_inverses() {
        let d = copper_required_diameter_mm(10.0, 50.0, UNEQUALIZED_BUDGET_DB);
        let reach = copper_max_reach_m(10.0, d, UNEQUALIZED_BUDGET_DB);
        assert!((reach - 50.0).abs() < 1e-9);
    }

    #[test]
    fn paper_argument_copper_is_impractical_at_machine_room_scale() {
        // 50 m at 10 Gb/s within an unequalized budget needs a conductor
        // diameter that makes the bundle unmanageable (≫ 1 mm per lane).
        let d = copper_required_diameter_mm(10.0, 50.0, UNEQUALIZED_BUDGET_DB);
        assert!(d > 10.0, "diameter {d} mm");
        // ...while fiber loss over the same run is negligible.
        assert!(fiber_attenuation_db(50.0) < 0.1);
    }

    #[test]
    fn paper_argument_bundle_cross_sections() {
        let p = PortCabling::osmosis_reference();
        assert_eq!(p.lanes(), 10, "12 GB/s = 96 Gb/s over 10 Gb/s lanes");
        let cu = p.copper_bundle_mm2();
        let fi = p.fiber_bundle_mm2();
        assert!(
            cu / fi > 1000.0,
            "copper bundle {cu:.0} mm² vs fiber {fi:.2} mm²"
        );
    }

    #[test]
    fn paper_argument_eq_power_is_substantial() {
        // "The second option requires too much power [...] when many links
        // are put in parallel": equalizing 50 m on thin copper costs watts
        // per port.
        let p = PortCabling::osmosis_reference();
        assert!(p.copper_eq_power_w() > 1.0, "{} W", p.copper_eq_power_w());
    }

    #[test]
    fn flight_times() {
        assert_eq!(fiber_flight(50.0), TimeDelta::from_ns(250));
        assert!(copper_flight(50.0) < fiber_flight(50.0));
    }

    #[test]
    fn equalizer_power_zero_below_budget() {
        assert_eq!(equalizer_power_w(10.0, -5.0), 0.0);
        assert!(equalizer_power_w(10.0, 10.0) > 0.0);
    }
}
