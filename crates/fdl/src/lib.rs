//! # osmosis-fdl
//!
//! Emulated optical buffering from switches and fiber delay lines.
//!
//! The paper's buffer-placement argument (Fig. 2) starts from "optical
//! buffers don't exist", forcing an OEO conversion wherever a stage must
//! queue. Tang et al. ("Constructing Sub-exponentially Large Optical
//! Priority Queues with Switches and Fiber Delay Lines") challenge that
//! premise constructively: an N×N crossbar feeding back through a bank of
//! fiber delay lines — each a passive fiber that holds a cell for a fixed
//! integer number of slots — can *emulate* a priority queue of provable
//! size, because a deterministic routing policy can always park each
//! waiting cell on a line whose length matches how long the cell must
//! keep waiting. Recursing the construction grows the emulated size
//! sub-exponentially in switch count; this crate implements one recursion
//! level, which is already super-linear in fiber: `n` delay lines buy a
//! guaranteed queue of `n` cells on `1 + n(n-1)/2` cell-slots of fiber.
//!
//! ## The construction
//!
//! ```text
//!            ┌──────────────────────────────────────┐
//!  arrivals ─┤                                      ├─ departures
//!            │            (n+1)×(n+1) switch        │   (min key)
//!            │                                      │
//!            └─┬────┬────┬────┬──────────────────┬──┘
//!              │L=1 │L=1 │L=2 │L=3     …         │L=n-1
//!              └────┴────┴────┴──────────────────┘
//!                 n fiber delay lines, lengths max(1, i)
//! ```
//!
//! Every slot the switch (a) departs the minimum-key cell if it is
//! currently emerging from a line, and (b) re-routes each still-waiting
//! cell — emerged-but-unserved or newly arrived — onto a delay line. The
//! policy that makes emulation work is the *rank rule*: a cell whose rank
//! (position in key order among all stored cells) is `r` may only enter a
//! line of length `≤ max(1, r)`, so that by the time it can become the
//! head of the queue it is guaranteed to be emerging every slot. The
//! balanced profile `1, 1, 2, 3, …, n-1` makes the greedy
//! shortest-line-first assignment feasible for every rank whenever at
//! most `n` cells are stored — that is the provable size bound
//! [`FdlLines::guaranteed_capacity`], and within it the queue is
//! observation-equivalent to an ideal priority queue with a one-slot
//! insertion latency (a new arrival becomes servable the next slot, once
//! it has transited its first line).
//!
//! ## Loss and degradation model
//!
//! Outside the bound — or when delay lines die
//! ([`FdlQueue::set_line_dead`]; cells already in a dead fiber still
//! emerge, but the line accepts no new cells — and the guaranteed
//! capacity shrinks accordingly) — cells that cannot be scheduled onto
//! any legal line have nowhere physical to exist and are dropped with a
//! typed [`BufferLossReason`]. A serve opportunity missed because the
//! minimum-key cell is still mid-fiber is counted as an underflow stall.
//! Conservation is auditable at every quiescent point:
//! `pushed == popped + dropped + resident`.
//!
//! [`FdlBufferPlane`] packages one FIFO-mode [`FdlQueue`] per input port
//! as a [`BufferPlane`], the drop-in replacement for a multistage
//! fabric's electronic per-stage input buffers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use osmosis_sim::buffer::{BufferLoss, BufferLossReason, BufferPlane, BufferStats};
use std::collections::BTreeMap;

/// A cell's key: `(priority, arrival sequence)`. Lower sorts first, so
/// priority 0 is the most urgent and ties serve in arrival order. FIFO
/// emulation is the degenerate case where every cell has priority 0.
pub type FdlKey = (u64, u64);

/// The delay-line bank of one emulated FDL queue: per-line fiber lengths
/// (in slots) and alive/dead state.
#[derive(Debug, Clone)]
pub struct FdlLines {
    lengths: Vec<u64>,
    dead: Vec<bool>,
}

impl FdlLines {
    /// The balanced Tang profile for `n` lines: lengths
    /// `1, 1, 2, 3, …, n-1` (line `i` has length `max(1, i)`). The two
    /// unit lines keep ranks 0 and 1 emerging every slot; the profile's
    /// guaranteed capacity is exactly `n`.
    pub fn balanced(n: usize) -> Self {
        FdlLines {
            lengths: (0..n).map(|i| i.max(1) as u64).collect(),
            dead: vec![false; n],
        }
    }

    /// A bank with explicit per-line lengths. Returns `None` if any line
    /// has length zero (a fiber must hold a cell for at least one slot).
    pub fn from_lengths(lengths: Vec<u64>) -> Option<Self> {
        if lengths.contains(&0) {
            return None;
        }
        let dead = vec![false; lengths.len()];
        Some(FdlLines { lengths, dead })
    }

    /// Number of lines in the bank, dead or alive.
    pub fn count(&self) -> usize {
        self.lengths.len()
    }

    /// Length in slots of line `line`, if it exists.
    pub fn length(&self, line: usize) -> Option<u64> {
        self.lengths.get(line).copied()
    }

    /// Whether line `line` is dead (out-of-range lines read as dead).
    pub fn is_dead(&self, line: usize) -> bool {
        self.dead.get(line).copied().unwrap_or(true)
    }

    /// Mark line `line` dead or alive. Out-of-range indices are ignored.
    pub fn set_dead(&mut self, line: usize, dead: bool) {
        if let Some(d) = self.dead.get_mut(line) {
            *d = dead;
        }
    }

    /// Number of currently alive lines.
    pub fn alive(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Total cell-slots of alive fiber — the physical storage the bank
    /// pays for. For the balanced profile this is `1 + n(n-1)/2`,
    /// super-linear in the `n` cells it guarantees.
    pub fn fiber_capacity(&self) -> u64 {
        self.lengths
            .iter()
            .zip(&self.dead)
            .filter(|&(_, &d)| !d)
            .map(|(&l, _)| l)
            .sum()
    }

    /// The provable emulation bound over the currently alive lines: the
    /// largest `B` such that, with alive lengths sorted ascending,
    /// `sorted[k] <= max(1, k)` for every `k < B`. Up to `B` stored
    /// cells, the rank rule can always re-park every waiting cell, so
    /// the queue emulates an ideal priority queue losslessly; beyond it,
    /// admission refuses arrivals.
    pub fn guaranteed_capacity(&self) -> usize {
        let mut alive: Vec<u64> = self
            .lengths
            .iter()
            .zip(&self.dead)
            .filter(|&(_, &d)| !d)
            .map(|(&l, _)| l)
            .collect();
        alive.sort_unstable();
        Self::bound(&alive)
    }

    /// The emulation bound the bank would have with every line alive —
    /// the design capacity losses are attributed against: an admission
    /// refusal below this bound can only be the fault plane's doing.
    pub fn nominal_capacity(&self) -> usize {
        let mut all: Vec<u64> = self.lengths.clone();
        all.sort_unstable();
        Self::bound(&all)
    }

    fn bound(sorted: &[u64]) -> usize {
        let mut b = 0usize;
        while b < sorted.len() && sorted[b] <= b.max(1) as u64 {
            b += 1;
        }
        b
    }
}

/// One cell an [`FdlQueue`] could not keep.
#[derive(Debug, Clone)]
pub struct FdlLoss<T> {
    /// The cell's priority.
    pub priority: u64,
    /// The cell's arrival sequence number within this queue.
    pub seq: u64,
    /// Why it was lost.
    pub reason: BufferLossReason,
    /// The cell payload.
    pub payload: T,
}

/// Where a stored cell currently is in the emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Arrived this slot; enters a delay line at settle.
    Pending,
    /// In a fiber, emerging at `emerge`.
    InFiber {
        /// The slot this cell exits its line.
        emerge: u64,
    },
    /// Emerged this slot; servable now, re-parked at settle if unserved.
    Present,
}

/// One emulated (switch, fiber-delay-line) priority queue.
///
/// # Per-slot protocol
///
/// ```text
/// tick(slot)    — fibers deliver: cells whose line ends now turn Present
/// push(…)*      — this slot's arrivals (admission-checked immediately)
/// peek()/pop()* — serve the minimum settled key, if it is Present
/// settle(slot)  — re-park Present leftovers and Pending arrivals onto
///                 legal lines; infeasible cells become typed losses
/// ```
///
/// Within [`FdlLines::guaranteed_capacity`] and with all lines alive, the
/// queue never drops and never stalls: it behaves exactly like a bounded
/// priority queue whose arrivals become servable one slot after entry.
#[derive(Debug, Clone)]
pub struct FdlQueue<T> {
    lines: FdlLines,
    capacity: usize,
    entries: BTreeMap<FdlKey, (State, T)>,
    next_seq: u64,
    stats: BufferStats,
    losses: Vec<FdlLoss<T>>,
}

impl<T> FdlQueue<T> {
    /// A queue over the given delay-line bank.
    pub fn new(lines: FdlLines) -> Self {
        let capacity = lines.guaranteed_capacity();
        FdlQueue {
            lines,
            capacity,
            entries: BTreeMap::new(),
            next_seq: 0,
            stats: BufferStats::default(),
            losses: Vec::new(),
        }
    }

    /// The delay-line bank.
    pub fn lines(&self) -> &FdlLines {
        &self.lines
    }

    /// Current guaranteed capacity (shrinks when lines die).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cells currently stored (in fiber, emerged, or pending).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no cells are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Start slot `slot`: cells whose fiber ends now become Present. If
    /// the minimum settled key is still mid-fiber (possible only after
    /// line deaths force long placements), this serve opportunity is
    /// lost — counted as an underflow stall.
    pub fn tick(&mut self, slot: u64) {
        for (state, _) in self.entries.values_mut() {
            if let State::InFiber { emerge } = *state {
                if emerge <= slot {
                    *state = State::Present;
                }
            }
        }
        if let Some((state, _)) = self
            .entries
            .values()
            .find(|(s, _)| !matches!(s, State::Pending))
        {
            if matches!(state, State::InFiber { .. }) {
                self.stats.underflow_stalls += 1;
            }
        }
    }

    /// Offer a cell with `priority`. Admission succeeds while the queue
    /// holds fewer than [`capacity`](FdlQueue::capacity) cells; a refused
    /// cell is recorded as a typed loss and `false` is returned:
    /// [`BufferLossReason::DeadLine`] when the refusal only exists
    /// because dead lines shrank the capacity below its nominal bound,
    /// [`BufferLossReason::AdmissionFull`] when even a healthy bank
    /// would have refused. Admitted cells become servable after settle,
    /// one slot later.
    pub fn push(&mut self, priority: u64, payload: T) -> bool {
        self.stats.pushed += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.entries.len() >= self.capacity {
            let reason = if self.entries.len() < self.lines.nominal_capacity() {
                BufferLossReason::DeadLine
            } else {
                BufferLossReason::AdmissionFull
            };
            self.stats.dropped += 1;
            match reason {
                BufferLossReason::DeadLine => self.stats.dropped_dead_line += 1,
                _ => self.stats.dropped_admission += 1,
            }
            self.losses.push(FdlLoss {
                priority,
                seq,
                reason,
                payload,
            });
            return false;
        }
        self.entries
            .insert((priority, seq), (State::Pending, payload));
        true
    }

    /// The cell the queue can serve this slot: the minimum settled key,
    /// if it is currently emerging from a line. `None` when the queue is
    /// empty, holds only this slot's arrivals, or the minimum settled
    /// cell is still mid-fiber (underflow).
    pub fn peek(&self) -> Option<(FdlKey, &T)> {
        for (key, (state, payload)) in &self.entries {
            match state {
                State::Pending => continue,
                State::Present => return Some((*key, payload)),
                State::InFiber { .. } => return None,
            }
        }
        None
    }

    /// Serve the cell [`peek`](FdlQueue::peek) offers.
    pub fn pop(&mut self) -> Option<(FdlKey, T)> {
        let key = self.peek().map(|(k, _)| k)?;
        let (_, payload) = self.entries.remove(&key)?;
        self.stats.popped += 1;
        Some((key, payload))
    }

    /// End slot `slot`: route every Present leftover and Pending arrival
    /// onto a delay line. Ranks are frozen at entry (position in key
    /// order among all stored cells); cells are considered in key order
    /// and greedily take the shortest unused alive line, legal when its
    /// length is `≤ max(1, rank)`. A cell with no legal line is dropped:
    /// [`BufferLossReason::DeadLine`] when a dead line would have been
    /// legal, [`BufferLossReason::NoFeasibleLine`] otherwise.
    pub fn settle(&mut self, slot: u64) {
        let mut to_place: Vec<(FdlKey, usize, bool)> = Vec::new();
        for (rank, (key, (state, _))) in self.entries.iter().enumerate() {
            match state {
                State::Present => to_place.push((*key, rank, true)),
                State::Pending => to_place.push((*key, rank, false)),
                State::InFiber { .. } => {}
            }
        }
        if to_place.is_empty() {
            return;
        }
        let mut order: Vec<(u64, usize)> = self
            .lines
            .lengths
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.lines.is_dead(i))
            .map(|(i, &l)| (l, i))
            .collect();
        order.sort_unstable();
        let mut cursor = 0usize;
        for (key, rank, was_present) in to_place {
            let cap = rank.max(1) as u64;
            if order.get(cursor).is_some_and(|&(len, _)| len <= cap) {
                let (len, _) = order[cursor];
                cursor += 1;
                if was_present {
                    self.stats.recirculations += 1;
                }
                if let Some((state, _)) = self.entries.get_mut(&key) {
                    *state = State::InFiber { emerge: slot + len };
                }
            } else {
                let dead_legal = self
                    .lines
                    .lengths
                    .iter()
                    .zip(&self.lines.dead)
                    .any(|(&l, &d)| d && l <= cap);
                let reason = if dead_legal {
                    BufferLossReason::DeadLine
                } else {
                    BufferLossReason::NoFeasibleLine
                };
                if let Some((_, payload)) = self.entries.remove(&key) {
                    self.stats.dropped += 1;
                    match reason {
                        BufferLossReason::DeadLine => self.stats.dropped_dead_line += 1,
                        _ => self.stats.dropped_infeasible += 1,
                    }
                    self.losses.push(FdlLoss {
                        priority: key.0,
                        seq: key.1,
                        reason,
                        payload,
                    });
                }
            }
        }
    }

    /// Mark a line dead or alive; the guaranteed capacity is recomputed
    /// over the surviving lines. Cells already in a dead fiber still
    /// emerge — the fiber is passive — but the line takes no new cells.
    pub fn set_line_dead(&mut self, line: usize, dead: bool) {
        self.lines.set_dead(line, dead);
        self.capacity = self.lines.guaranteed_capacity();
    }

    /// Cumulative counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Drain the losses recorded since the last call.
    pub fn take_losses(&mut self) -> Vec<FdlLoss<T>> {
        std::mem::take(&mut self.losses)
    }

    /// The conservation ledger `(pushed, popped, dropped, resident)`;
    /// `pushed == popped + dropped + resident` holds at every quiescent
    /// point (outside the push→settle window of a slot).
    pub fn ledger(&self) -> (u64, u64, u64, u64) {
        (
            self.stats.pushed,
            self.stats.popped,
            self.stats.dropped,
            self.entries.len() as u64,
        )
    }
}

/// A bank of FIFO-mode [`FdlQueue`]s — one per input port — packaged as
/// the [`BufferPlane`] a multistage fabric can swap in for its
/// electronic VOQs.
///
/// Each input's arrivals share one physical delay-line queue in arrival
/// order (priority 0), with the destination output carried in the
/// payload: the head cell blocks the inputs behind it until its output
/// is served (head-of-line blocking — the physical price of buffering
/// in fiber instead of per-output electronic queues). The `ready`
/// request latency passed by the model is subsumed by the FDL's own
/// one-slot insertion latency: an arrival in slot `t` first emerges at
/// `t + 1`, which matches an input-buffered fabric's `t + 1` grant
/// eligibility exactly.
#[derive(Debug, Clone)]
pub struct FdlBufferPlane<C> {
    ports: usize,
    lines_per_queue: usize,
    queues: Vec<FdlQueue<(usize, C)>>,
}

impl<C> FdlBufferPlane<C> {
    /// A plane for a `ports`-port switch, each input buffered by a
    /// balanced bank of `lines_per_queue` delay lines (guaranteed
    /// capacity `lines_per_queue` cells per input).
    pub fn new(ports: usize, lines_per_queue: usize) -> Self {
        FdlBufferPlane {
            ports,
            lines_per_queue,
            queues: (0..ports)
                .map(|_| FdlQueue::new(FdlLines::balanced(lines_per_queue)))
                .collect(),
        }
    }

    /// The queue buffering `input`, if it exists.
    pub fn queue(&self, input: usize) -> Option<&FdlQueue<(usize, C)>> {
        self.queues.get(input)
    }
}

impl<C> BufferPlane<C> for FdlBufferPlane<C> {
    fn tick(&mut self, slot: u64) {
        for q in &mut self.queues {
            q.tick(slot);
        }
    }

    fn push(&mut self, _slot: u64, input: usize, output: usize, _ready: u64, cell: C) {
        if let Some(q) = self.queues.get_mut(input) {
            q.push(0, (output, cell));
        }
    }

    fn ready(&self, _slot: u64, input: usize, output: usize) -> bool {
        self.queues
            .get(input)
            .and_then(|q| q.peek())
            .is_some_and(|(_, &(o, _))| o == output)
    }

    fn pop(&mut self, slot: u64, input: usize, output: usize) -> Option<C> {
        if !self.ready(slot, input, output) {
            return None;
        }
        let (_, (_, cell)) = self.queues.get_mut(input)?.pop()?;
        Some(cell)
    }

    fn settle(&mut self, slot: u64) {
        for q in &mut self.queues {
            q.settle(slot);
        }
    }

    fn occupancy(&self, input: usize) -> usize {
        self.queues.get(input).map_or(0, |q| q.len())
    }

    fn total(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn take_losses(&mut self) -> Vec<BufferLoss<C>> {
        let mut out = Vec::new();
        for (input, q) in self.queues.iter_mut().enumerate() {
            for loss in q.take_losses() {
                let (output, cell) = loss.payload;
                out.push(BufferLoss {
                    input,
                    output,
                    reason: loss.reason,
                    cell,
                });
            }
        }
        out
    }

    fn stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for q in &self.queues {
            let s = q.stats();
            total.pushed += s.pushed;
            total.popped += s.popped;
            total.dropped += s.dropped;
            total.dropped_admission += s.dropped_admission;
            total.dropped_infeasible += s.dropped_infeasible;
            total.dropped_dead_line += s.dropped_dead_line;
            total.recirculations += s.recirculations;
            total.underflow_stalls += s.underflow_stalls;
        }
        total
    }

    fn reconfigure(&mut self, capacity: usize) {
        self.lines_per_queue = capacity;
        self.queues = (0..self.ports)
            .map(|_| FdlQueue::new(FdlLines::balanced(capacity)))
            .collect();
    }

    fn set_line_dead(&mut self, line: usize, dead: bool) {
        if self.lines_per_queue == 0 {
            return;
        }
        let input = line / self.lines_per_queue;
        let local = line % self.lines_per_queue;
        if let Some(q) = self.queues.get_mut(input) {
            q.set_line_dead(local, dead);
        }
    }

    fn lines_per_queue(&self) -> usize {
        self.lines_per_queue
    }

    fn queue_ledger(&self, input: usize) -> Option<(u64, u64, u64, u64)> {
        self.queues.get(input).map(|q| q.ledger())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive one full slot: tick, pushes, then up to one serve, then
    /// settle. Returns the served payload if any.
    fn slot_cycle<T: Clone>(
        q: &mut FdlQueue<T>,
        slot: u64,
        pushes: &[(u64, T)],
        serve: bool,
    ) -> Option<T> {
        q.tick(slot);
        for (prio, payload) in pushes {
            q.push(*prio, payload.clone());
        }
        let served = if serve { q.pop().map(|(_, p)| p) } else { None };
        q.settle(slot);
        served
    }

    #[test]
    fn balanced_profile_bound_and_fiber_cost() {
        for n in 1..=12usize {
            let lines = FdlLines::balanced(n);
            assert_eq!(lines.count(), n);
            assert_eq!(lines.guaranteed_capacity(), n, "B = n for balanced({n})");
            let expect_fiber = 1 + (n as u64) * (n as u64 - 1) / 2;
            if n >= 1 {
                assert_eq!(lines.fiber_capacity(), expect_fiber.max(n.min(1) as u64));
            }
        }
        assert_eq!(FdlLines::balanced(4).length(0), Some(1));
        assert_eq!(FdlLines::balanced(4).length(1), Some(1));
        assert_eq!(FdlLines::balanced(4).length(3), Some(3));
        assert!(FdlLines::from_lengths(vec![1, 0]).is_none());
    }

    #[test]
    fn fifo_emulation_is_lossless_within_bound() {
        let n = 6;
        let mut q: FdlQueue<u32> = FdlQueue::new(FdlLines::balanced(n));
        // Fill to the bound in slot 0; serve one per slot thereafter.
        let pushes: Vec<(u64, u32)> = (0..n as u32).map(|i| (0, i)).collect();
        assert!(
            slot_cycle(&mut q, 0, &pushes, true).is_none(),
            "arrivals not servable same slot"
        );
        let mut served = Vec::new();
        for slot in 1..=n as u64 {
            if let Some(c) = slot_cycle(&mut q, slot, &[], true) {
                served.push(c);
            }
        }
        assert_eq!(served, (0..n as u32).collect::<Vec<_>>(), "FIFO order");
        let s = q.stats();
        assert_eq!(s.dropped, 0, "no drops within the bound");
        assert_eq!(s.underflow_stalls, 0, "no stalls with all lines alive");
        assert!(s.recirculations > 0, "waiting cells recirculated");
        assert!(q.is_empty());
        let (pushed, popped, dropped, resident) = q.ledger();
        assert_eq!(pushed, popped + dropped + resident);
    }

    #[test]
    fn priority_mode_serves_min_key_first() {
        let mut q: FdlQueue<&'static str> = FdlQueue::new(FdlLines::balanced(5));
        slot_cycle(&mut q, 0, &[(3, "low"), (1, "high"), (2, "mid")], false);
        assert_eq!(slot_cycle(&mut q, 1, &[(0, "urgent")], true), Some("high"));
        // "urgent" entered in slot 1, so it overtakes only from slot 2 on.
        assert_eq!(slot_cycle(&mut q, 2, &[], true), Some("urgent"));
        assert_eq!(slot_cycle(&mut q, 3, &[], true), Some("mid"));
        assert_eq!(slot_cycle(&mut q, 4, &[], true), Some("low"));
        assert_eq!(q.stats().dropped, 0);
        assert_eq!(q.stats().underflow_stalls, 0);
    }

    #[test]
    fn admission_beyond_bound_is_a_typed_loss() {
        let n = 3;
        let mut q: FdlQueue<u32> = FdlQueue::new(FdlLines::balanced(n));
        q.tick(0);
        for i in 0..(n as u32 + 2) {
            q.push(0, i);
        }
        q.settle(0);
        let losses = q.take_losses();
        assert_eq!(losses.len(), 2);
        assert!(losses
            .iter()
            .all(|l| l.reason == BufferLossReason::AdmissionFull));
        assert_eq!(q.len(), n);
        assert_eq!(q.stats().dropped_admission, 2);
        let (pushed, popped, dropped, resident) = q.ledger();
        assert_eq!(pushed, popped + dropped + resident);
    }

    #[test]
    fn dead_line_shrinks_capacity_and_attributes_losses() {
        let n = 4;
        let mut q: FdlQueue<u32> = FdlQueue::new(FdlLines::balanced(n));
        // Kill both unit-length lines: no legal line for rank 0/1 remains,
        // so the guaranteed capacity collapses to zero.
        q.set_line_dead(0, true);
        q.set_line_dead(1, true);
        assert_eq!(q.capacity(), 0);
        // Kill only one unit line: capacity 1, and a second resident cell
        // would need the dead line — its settle loss is attributed DeadLine.
        let mut q2: FdlQueue<u32> = FdlQueue::new(FdlLines::balanced(n));
        q2.tick(0);
        q2.push(0, 1);
        q2.push(0, 2);
        q2.settle(0);
        q2.set_line_dead(1, true);
        assert_eq!(q2.capacity(), 1);
        // Slot 1: both emerge; serve one; the survivor (rank 0 after the
        // serve... rank frozen at settle) recirculates on line 0.
        q2.tick(1);
        let served = q2.pop();
        assert!(served.is_some());
        q2.settle(1);
        assert_eq!(
            q2.stats().dropped,
            0,
            "rank-0 survivor still legal on line 0"
        );
        // Heal and confirm capacity returns.
        q2.set_line_dead(1, false);
        assert_eq!(q2.capacity(), n);
    }

    #[test]
    fn admission_refusal_below_nominal_capacity_is_typed_dead_line() {
        let n = 4;
        let mut q: FdlQueue<u32> = FdlQueue::new(FdlLines::balanced(n));
        // One dead unit line: capacity 1 against a nominal bound of 4.
        q.set_line_dead(1, true);
        q.tick(0);
        assert!(q.push(0, 1));
        // The second arrival is refused purely because of the dead line —
        // a healthy bank would have held it — so the loss is DeadLine.
        assert!(!q.push(0, 2));
        let losses = q.take_losses();
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].reason, BufferLossReason::DeadLine);
        assert_eq!(q.stats().dropped_dead_line, 1);
        assert_eq!(q.stats().dropped_admission, 0);
        // Beyond the nominal bound the refusal is plain AdmissionFull,
        // dead lines or not.
        let mut full: FdlQueue<u32> = FdlQueue::new(FdlLines::balanced(2));
        full.tick(0);
        assert!(full.push(0, 1));
        assert!(full.push(0, 2));
        assert!(!full.push(0, 3));
        assert_eq!(
            full.take_losses()[0].reason,
            BufferLossReason::AdmissionFull
        );
    }

    #[test]
    fn dead_line_forces_typed_dead_line_drop() {
        // Two cells resident with both unit lines dead at settle time:
        // the rank-1 cell has no legal alive line (cap 1, shortest alive
        // is 2) while a dead unit line exists => DeadLine.
        let mut q: FdlQueue<u32> = FdlQueue::new(FdlLines::balanced(4));
        q.tick(0);
        q.push(0, 1);
        q.push(0, 2);
        q.settle(0);
        q.set_line_dead(0, true);
        q.set_line_dead(1, true);
        q.tick(1);
        q.settle(1); // both emerged, neither served, nowhere legal to go
        let losses = q.take_losses();
        assert_eq!(losses.len(), 2);
        assert!(losses
            .iter()
            .all(|l| l.reason == BufferLossReason::DeadLine));
        assert!(q.is_empty());
        let (pushed, popped, dropped, resident) = q.ledger();
        assert_eq!(pushed, popped + dropped + resident);
    }

    #[test]
    fn plane_gates_on_head_output_and_keeps_ledgers() {
        let mut plane: FdlBufferPlane<u32> = FdlBufferPlane::new(2, 4);
        plane.tick(0);
        plane.push(0, 0, 1, 1, 100); // input 0 -> output 1
        plane.push(0, 0, 0, 1, 101); // input 0 -> output 0, behind it
        plane.settle(0);
        plane.tick(1);
        assert!(plane.ready(1, 0, 1));
        assert!(
            !plane.ready(1, 0, 0),
            "head-of-line: output 0 blocked behind the output-1 head"
        );
        assert_eq!(plane.pop(1, 0, 0), None);
        assert_eq!(plane.pop(1, 0, 1), Some(100));
        plane.settle(1);
        plane.tick(2);
        assert!(plane.ready(2, 0, 0));
        assert_eq!(plane.pop(2, 0, 0), Some(101));
        plane.settle(2);
        assert_eq!(plane.total(), 0);
        assert_eq!(plane.queue_ledger(0), Some((2, 2, 0, 0)));
        assert_eq!(plane.lines_per_queue(), 4);
        assert!(plane.take_losses().is_empty());
    }

    #[test]
    fn plane_reconfigure_and_global_line_index() {
        let mut plane: FdlBufferPlane<u8> = FdlBufferPlane::new(2, 3);
        plane.reconfigure(5);
        assert_eq!(plane.lines_per_queue(), 5);
        // Global line 7 = input 1, local line 2.
        plane.set_line_dead(7, true);
        let q1 = plane.queue(1);
        assert!(q1.is_some_and(|q| q.lines().is_dead(2)));
        assert!(plane.queue(0).is_some_and(|q| q.capacity() == 5));
        assert!(plane.queue(1).is_some_and(|q| q.capacity() < 5));
    }

    #[test]
    fn rank_rule_limits_capacity_of_sparse_profiles() {
        // Ranks 0 and 1 both demand unit-length lines, so a profile with
        // a single unit line guarantees only one cell no matter how much
        // extra fiber it carries.
        let lines = FdlLines::from_lengths(vec![1, 2, 3]);
        let Some(lines) = lines else {
            unreachable!("lengths are nonzero")
        };
        assert_eq!(lines.guaranteed_capacity(), 1);
        let mut q: FdlQueue<u32> = FdlQueue::new(lines);
        slot_cycle(&mut q, 0, &[(0, 7), (0, 8)], false);
        let losses = q.take_losses();
        assert_eq!(losses.len(), 1, "second cell refused at admission");
        assert_eq!(losses[0].reason, BufferLossReason::AdmissionFull);
        // The admitted cell cycles on the unit line with no stalls: the
        // greedy rank rule never parks a cell longer than its service
        // horizon, so the stall counter stays a pure degradation guard.
        for slot in 1..5 {
            q.tick(slot);
            assert_eq!(q.peek().map(|(_, &p)| p), Some(7));
            q.settle(slot);
        }
        assert_eq!(q.stats().underflow_stalls, 0);
        q.tick(5);
        assert_eq!(q.pop().map(|(_, p)| p), Some(7));
    }
}
