//! Traffic-matrix estimation from the engine's observation stream.
//!
//! An OCS scheduler cannot see queue occupancies the way the paper's
//! electronic central scheduler does — circuits are provisioned ahead of
//! the traffic from a *demand estimate*. The estimator here consumes the
//! same per-cell observation stream every other plane sees (the
//! `Inject` events a `TraceSink` receives, fed to the circuit plane
//! through [`CircuitView::note_arrival`](osmosis_sim::CircuitView)):
//! it accumulates a per-epoch arrival window and folds closed windows
//! into an integer exponentially-weighted moving average.
//!
//! Everything is integer arithmetic on deterministic inputs, so the
//! estimate — and every schedule derived from it — is a pure function of
//! the experiment seed.

use osmosis_sim::engine::{TraceEvent, TraceSink};

/// Online estimator of the ingress→egress demand matrix.
///
/// `note` records one arrival into the current window; `roll` closes the
/// window into the EWMA estimate (`estimate = estimate/2 + window`) and
/// clears it. The halving keeps the estimate bounded (it converges to at
/// most twice the per-window arrival count) while still reacting to a
/// demand shift within a couple of windows.
#[derive(Debug, Clone)]
pub struct TmEstimator {
    n: usize,
    window: Vec<u64>,
    estimate: Vec<u64>,
    cells_seen: u64,
    windows_rolled: u64,
}

impl TmEstimator {
    /// A fresh estimator for an `n`-port edge; estimate starts empty.
    pub fn new(n: usize) -> Self {
        TmEstimator {
            n,
            window: vec![0; n * n],
            estimate: vec![0; n * n],
            cells_seen: 0,
            windows_rolled: 0,
        }
    }

    /// Edge port count.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Record one cell arrival `src → dst` into the open window.
    /// Out-of-range ports are ignored (benign under misconfiguration).
    pub fn note(&mut self, src: usize, dst: usize) {
        if src < self.n && dst < self.n {
            self.window[src * self.n + dst] += 1;
            self.cells_seen += 1;
        }
    }

    /// Close the current window: fold it into the EWMA estimate and
    /// clear it for the next epoch.
    pub fn roll(&mut self) {
        for (e, w) in self.estimate.iter_mut().zip(self.window.iter_mut()) {
            *e = *e / 2 + *w;
            *w = 0;
        }
        self.windows_rolled += 1;
    }

    /// The current demand estimate, row-major `[src * n + dst]`.
    pub fn estimate(&self) -> &[u64] {
        &self.estimate
    }

    /// Arrivals recorded in the currently open window.
    pub fn window(&self) -> &[u64] {
        &self.window
    }

    /// Total cells recorded over the estimator's lifetime.
    pub fn cells_seen(&self) -> u64 {
        self.cells_seen
    }

    /// Number of windows folded into the estimate so far.
    pub fn windows_rolled(&self) -> u64 {
        self.windows_rolled
    }

    /// Reset to the freshly-constructed state (new run, same ports).
    pub fn reset(&mut self) {
        self.window.iter_mut().for_each(|w| *w = 0);
        self.estimate.iter_mut().for_each(|e| *e = 0);
        self.cells_seen = 0;
        self.windows_rolled = 0;
    }
}

/// A [`TraceSink`] that feeds a [`TmEstimator`] from `Inject` events.
///
/// The circuit plane normally observes arrivals in-band (through
/// `CircuitView::note_arrival`); this recorder proves the equivalence —
/// attached as a trace sink it sees the *same* stream, so an estimator
/// fed either way ends in the same state. Useful for offline TM capture
/// from a traced run.
#[derive(Debug, Clone)]
pub struct TmRecorder {
    /// The estimator being fed.
    pub tm: TmEstimator,
}

impl TmRecorder {
    /// Record arrivals for an `n`-port edge.
    pub fn new(n: usize) -> Self {
        TmRecorder {
            tm: TmEstimator::new(n),
        }
    }
}

impl TraceSink for TmRecorder {
    fn event(&mut self, _slot: u64, event: TraceEvent) {
        if let TraceEvent::Inject { src, dst } = event {
            self.tm.note(src as usize, dst as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_accumulates_and_rolls_into_ewma() {
        let mut tm = TmEstimator::new(2);
        tm.note(0, 1);
        tm.note(0, 1);
        tm.note(1, 0);
        assert_eq!(tm.window(), &[0, 2, 1, 0]);
        tm.roll();
        assert_eq!(tm.estimate(), &[0, 2, 1, 0]);
        assert_eq!(tm.window(), &[0, 0, 0, 0]);
        // Second identical window: estimate = estimate/2 + window.
        tm.note(0, 1);
        tm.note(0, 1);
        tm.roll();
        assert_eq!(tm.estimate(), &[0, 3, 0, 0]);
        assert_eq!(tm.windows_rolled(), 2);
    }

    #[test]
    fn ewma_is_bounded_by_twice_the_window_rate() {
        let mut tm = TmEstimator::new(1);
        for _ in 0..60 {
            for _ in 0..10 {
                tm.note(0, 0);
            }
            tm.roll();
        }
        // Geometric series: 10 + 5 + 2 + 1 ... < 20.
        assert!(tm.estimate()[0] < 20, "estimate {}", tm.estimate()[0]);
    }

    #[test]
    fn out_of_range_ports_are_ignored() {
        let mut tm = TmEstimator::new(2);
        tm.note(5, 0);
        tm.note(0, 9);
        assert_eq!(tm.cells_seen(), 0);
        assert_eq!(tm.window(), &[0, 0, 0, 0]);
    }

    #[test]
    fn recorder_matches_directly_fed_estimator() {
        let mut direct = TmEstimator::new(4);
        let mut rec = TmRecorder::new(4);
        let stream = [(0usize, 1usize), (2, 3), (0, 1), (3, 0)];
        for (slot, &(s, d)) in stream.iter().enumerate() {
            direct.note(s, d);
            rec.event(
                slot as u64,
                TraceEvent::Inject {
                    src: s as u32,
                    dst: d as u32,
                },
            );
        }
        assert_eq!(direct.window(), rec.tm.window());
        assert_eq!(direct.cells_seen(), rec.tm.cells_seen());
    }
}
