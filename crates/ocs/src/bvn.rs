//! Solver-free Birkhoff–von Neumann decomposition of an integer demand
//! matrix into weighted permutations.
//!
//! The classic OCS scheduling result: any non-negative matrix whose rows
//! and columns all sum to the same value `M` is a sum of at most
//! `nnz − n + 1` permutation matrices with positive integer weights
//! (Birkhoff's theorem, applied to the integer polytope). The scheduler
//! provisions each permutation as one circuit configuration and holds it
//! for a number of epochs proportional to its weight.
//!
//! Arbitrary demand matrices are first *padded* up to doubly-balanced
//! form: `M` is the largest row or column sum, and a northwest-corner
//! sweep distributes each row's deficit over the columns that still have
//! deficit. Padded entries are dummy demand — circuits scheduled for
//! them simply idle.
//!
//! Extraction uses Kuhn's augmenting-path matching over the positive
//! entries, with *incremental repair*: after subtracting a term only the
//! inputs whose matched entry hit zero are re-augmented, so a full
//! decomposition costs `O(terms · n · nnz)` only in the worst case and
//! far less in practice. Everything is integer and iteration order is
//! fixed (ascending ports), so the decomposition is deterministic.

/// One term of the decomposition: `weight ×` a permutation matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BvnTerm {
    /// Positive integer coefficient (epochs-worth of demand).
    pub weight: u64,
    /// `perm[input] = output`; a true permutation of `0..n`.
    pub perm: Vec<usize>,
}

/// The full decomposition of a padded demand matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BvnDecomposition {
    /// Edge port count.
    pub n: usize,
    /// The common row/column sum after padding (`0` for an empty TM).
    pub target: u64,
    /// Extracted terms; weights sum to `target` when extraction
    /// completed (it always does for a correctly padded matrix).
    pub terms: Vec<BvnTerm>,
    /// The dummy demand added to balance the matrix, row-major.
    pub padding: Vec<u64>,
}

impl BvnDecomposition {
    /// Sum of the term weights. Equals `target` for a complete
    /// decomposition.
    pub fn total_weight(&self) -> u64 {
        self.terms.iter().map(|t| t.weight).sum()
    }

    /// Re-sum the terms into a matrix; equals `tm + padding` element by
    /// element (the property the proptest suite pins).
    pub fn reconstruct(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.n * self.n];
        for t in &self.terms {
            for (i, &j) in t.perm.iter().enumerate() {
                if j < self.n {
                    out[i * self.n + j] += t.weight;
                }
            }
        }
        out
    }
}

const UNMATCHED: usize = usize::MAX;

/// Kuhn augmenting path from `input` over positive entries of `work`.
fn augment(
    input: usize,
    n: usize,
    work: &[u64],
    match_in: &mut [usize],
    match_out: &mut [usize],
    visited: &mut [bool],
) -> bool {
    for j in 0..n {
        if work[input * n + j] > 0 && !visited[j] {
            visited[j] = true;
            let holder = match_out[j];
            if holder == UNMATCHED || augment(holder, n, work, match_in, match_out, visited) {
                match_in[input] = j;
                match_out[j] = input;
                return true;
            }
        }
    }
    false
}

/// Decompose the row-major `n × n` demand matrix `tm`.
///
/// An all-zero (or empty) matrix yields `target == 0` and no terms —
/// the caller falls back to a cold-start rotor schedule.
pub fn decompose(n: usize, tm: &[u64]) -> BvnDecomposition {
    let mut padding = vec![0u64; n * n];
    if n == 0 || tm.len() != n * n {
        return BvnDecomposition {
            n,
            target: 0,
            terms: Vec::new(),
            padding,
        };
    }
    let mut row = vec![0u64; n];
    let mut col = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            row[i] += tm[i * n + j];
            col[j] += tm[i * n + j];
        }
    }
    let target = row.iter().chain(col.iter()).copied().max().unwrap_or(0);
    if target == 0 {
        return BvnDecomposition {
            n,
            target,
            terms: Vec::new(),
            padding,
        };
    }

    // Northwest-corner padding: spread each row's deficit over columns
    // that still need mass. Row and column deficits have equal totals
    // (both are n·target − Σtm), so the sweep balances exactly.
    let mut cdef: Vec<u64> = col.iter().map(|&c| target - c).collect();
    for i in 0..n {
        let mut need = target - row[i];
        for (j, cd) in cdef.iter_mut().enumerate() {
            if need == 0 {
                break;
            }
            let take = need.min(*cd);
            if take > 0 {
                padding[i * n + j] += take;
                *cd -= take;
                need -= take;
            }
        }
    }

    let mut work: Vec<u64> = tm.iter().zip(padding.iter()).map(|(a, b)| a + b).collect();
    let mut match_in = vec![UNMATCHED; n];
    let mut match_out = vec![UNMATCHED; n];
    let mut visited = vec![false; n];

    // Initial perfect matching (exists: the padded matrix is doubly
    // balanced, so Hall's condition holds on its positive entries).
    let mut complete = true;
    for i in 0..n {
        visited.iter_mut().for_each(|v| *v = false);
        if !augment(i, n, &work, &mut match_in, &mut match_out, &mut visited) {
            complete = false;
            break;
        }
    }

    let mut terms = Vec::new();
    let mut extracted = 0u64;
    while complete && extracted < target {
        // Bottleneck weight along the current matching.
        let mut w = u64::MAX;
        for (i, &j) in match_in.iter().enumerate() {
            w = w.min(work[i * n + j]);
        }
        if w == 0 || w == u64::MAX {
            break; // defensive: a stale matching ends extraction cleanly
        }
        terms.push(BvnTerm {
            weight: w,
            perm: match_in.clone(),
        });
        extracted += w;
        // Subtract the term and remember which inputs lost their edge.
        let mut freed: Vec<usize> = Vec::new();
        for i in 0..n {
            let j = match_in[i];
            work[i * n + j] -= w;
            if work[i * n + j] == 0 {
                match_in[i] = UNMATCHED;
                match_out[j] = UNMATCHED;
                freed.push(i);
            }
        }
        if extracted == target {
            break;
        }
        // Incremental repair: re-augment only the freed inputs. The
        // residual matrix is still doubly balanced (every line lost
        // exactly w), so each augmentation succeeds.
        for i in freed {
            if match_in[i] == UNMATCHED {
                visited.iter_mut().for_each(|v| *v = false);
                if !augment(i, n, &work, &mut match_in, &mut match_out, &mut visited) {
                    complete = false;
                    break;
                }
            }
        }
    }

    BvnDecomposition {
        n,
        target,
        terms,
        padding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(perm: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        perm.len() == n
            && perm.iter().all(|&j| {
                if j < n && !seen[j] {
                    seen[j] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn empty_matrix_has_no_terms() {
        let d = decompose(4, &[0; 16]);
        assert_eq!(d.target, 0);
        assert!(d.terms.is_empty());
        assert_eq!(d.padding, vec![0; 16]);
    }

    #[test]
    fn permutation_matrix_is_a_single_term() {
        // 3-cycle with weight 7.
        let mut tm = vec![0u64; 9];
        tm[1] = 7; // 0→1
        tm[3 + 2] = 7; // 1→2
        tm[6] = 7; // 2→0
        let d = decompose(3, &tm);
        assert_eq!(d.target, 7);
        assert_eq!(d.terms.len(), 1);
        assert_eq!(d.terms[0].weight, 7);
        assert_eq!(d.terms[0].perm, vec![1, 2, 0]);
        assert_eq!(d.reconstruct(), tm);
    }

    #[test]
    fn doubly_balanced_matrix_decomposes_exactly() {
        // Rows and columns all sum to 5 already — no padding needed.
        let tm = vec![
            3, 2, 0, //
            0, 3, 2, //
            2, 0, 3,
        ];
        let d = decompose(3, &tm);
        assert_eq!(d.target, 5);
        assert_eq!(d.padding, vec![0; 9]);
        assert_eq!(d.total_weight(), 5);
        assert_eq!(d.reconstruct(), tm);
        for t in &d.terms {
            assert!(is_permutation(&t.perm, 3));
            assert!(t.weight > 0);
        }
    }

    #[test]
    fn skewed_matrix_is_padded_then_covered() {
        // Hotspot: everyone sends to output 0.
        let tm = vec![
            0, 0, 0, 0, //
            9, 0, 0, 0, //
            9, 0, 0, 0, //
            9, 0, 0, 0,
        ];
        let d = decompose(4, &tm);
        assert_eq!(d.target, 27); // column 0 dominates
        assert_eq!(d.total_weight(), 27);
        // reconstruct == tm + padding, elementwise.
        let rebuilt = d.reconstruct();
        for (k, &v) in rebuilt.iter().enumerate() {
            assert_eq!(v, tm[k] + d.padding[k], "entry {k}");
        }
    }

    #[test]
    fn term_count_stays_small() {
        // Dense 8×8 with distinct entries: terms ≤ nnz − n + 1.
        let n = 8;
        let tm: Vec<u64> = (0..n * n).map(|k| (k as u64 * 13 + 5) % 17).collect();
        let d = decompose(n, &tm);
        assert_eq!(d.total_weight(), d.target);
        let nnz = tm
            .iter()
            .zip(d.padding.iter())
            .filter(|(a, b)| **a + **b > 0)
            .count();
        assert!(
            d.terms.len() <= nnz - n + 1,
            "{} terms for nnz {nnz}",
            d.terms.len()
        );
    }

    #[test]
    fn decomposition_is_deterministic() {
        let tm = vec![4, 1, 0, 2, 0, 3, 1, 5, 0];
        let a = decompose(3, &tm);
        let b = decompose(3, &tm);
        assert_eq!(a, b);
    }
}
