//! # osmosis-ocs
//!
//! The optical **circuit-switched** operating mode — the road the paper
//! did *not* take, built on the same physical layer it did. OSMOSIS
//! switches packets: a central electronic scheduler computes a fresh
//! crossbar matching every 51.2 ns cell cycle. The recurring
//! counter-proposal for optical HPC fabrics (rostam-style OCS planes,
//! PULSE/RotorNet nanosecond-epoch switching) is to hold *circuits* for
//! many cycles and amortize the optical guard time over an epoch instead
//! of paying scheduling latency per cell. This crate makes that mode a
//! first-class citizen of the workspace so the two can be compared
//! head-to-head on identical traffic, topologies and fault plans:
//!
//! * [`TmEstimator`] — integer-EWMA demand estimation from the engine's
//!   per-cell observation stream;
//! * [`bvn::decompose`] — solver-free Birkhoff–von Neumann decomposition
//!   of the estimate into weighted permutations;
//! * [`EpochConfig`] — epoch/frame cadence with guard-time accounting
//!   derived from the `osmosis-phy` power-penalty budget;
//! * [`OcsScheduler`] — the [`CircuitView`](osmosis_sim::CircuitView)
//!   implementation that plans a frame of permutations per TM roll and
//!   charges guard slots only on actual reconfigurations;
//! * [`OcsSwitch`] — the circuit-switched edge datapath (VOQ ingress,
//!   one cell per lit circuit per slot, deterministic collision
//!   resolution under stuck-circuit faults).
//!
//! The mode rides the engine's fourth observation plane: attaching a
//! scheduler costs nothing when absent, and an absent plan leaves every
//! packet-mode fingerprint bit-identical (pinned in
//! `tests/fingerprint_pins.rs`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bvn;
pub mod epoch;
pub mod sched;
pub mod switch;
pub mod tm;

pub use bvn::{BvnDecomposition, BvnTerm};
pub use epoch::{guard_slots_for, EpochConfig};
pub use sched::{EpochRecord, OcsScheduler};
pub use switch::OcsSwitch;
pub use tm::{TmEstimator, TmRecorder};

use osmosis_sim::engine::{EngineConfig, EngineReport};
use osmosis_sim::{Auditor, FaultView};
use osmosis_switch::run_switch_circuit;
use osmosis_traffic::TrafficGen;

/// Run `traffic` through a fresh circuit switch under a fresh scheduler
/// at the given cadence. The switch's port count is taken from the
/// generator.
pub fn run_ocs(
    traffic: &mut dyn TrafficGen,
    epoch: EpochConfig,
    cfg: &EngineConfig,
) -> EngineReport {
    run_ocs_instrumented(traffic, epoch, cfg, None, None)
}

/// [`run_ocs`] with optional fault and audit planes — the entry point
/// the acceptance suites drive faulted/audited OCS runs through.
pub fn run_ocs_instrumented<'a>(
    traffic: &mut dyn TrafficGen,
    epoch: EpochConfig,
    cfg: &EngineConfig,
    faults: Option<&'a mut dyn FaultView>,
    audit: Option<&'a mut dyn Auditor>,
) -> EngineReport {
    let mut sw = OcsSwitch::new(traffic.ports());
    let mut sched = OcsScheduler::new(epoch);
    run_switch_circuit(&mut sw, traffic, cfg, &mut sched, faults, audit)
}

/// Like [`run_ocs`], returning the scheduler's per-epoch log alongside
/// the report (for telemetry export and the bench tables).
pub fn run_ocs_logged(
    traffic: &mut dyn TrafficGen,
    epoch: EpochConfig,
    cfg: &EngineConfig,
) -> (EngineReport, Vec<EpochRecord>) {
    let mut sw = OcsSwitch::new(traffic.ports());
    let mut sched = OcsScheduler::new(epoch);
    let report = run_switch_circuit(&mut sw, traffic, cfg, &mut sched, None, None);
    let log = sched.epoch_log().to_vec();
    (report, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    #[test]
    fn run_ocs_produces_epoch_extras() {
        let mut tr = BernoulliUniform::new(8, 0.4, &SeedSequence::new(2));
        let r = run_ocs(
            &mut tr,
            EpochConfig::osmosis_default(),
            &EngineConfig::new(500, 5_000).with_seed(2),
        );
        let epochs = r.extra("ocs_epochs").unwrap_or(0.0);
        // 5500 slots / 64-slot epochs ⇒ 86 epochs.
        assert!(epochs > 80.0, "epochs {epochs}");
        assert!(r.extra("ocs_reconfigurations").is_some());
        assert!(r.extra("ocs_mean_utilization").is_some());
    }

    #[test]
    fn logged_run_matches_plain_run() {
        let mk = || BernoulliUniform::new(8, 0.4, &SeedSequence::new(7));
        let cfg = EngineConfig::new(500, 5_000).with_seed(7);
        let plain = run_ocs(&mut mk(), EpochConfig::osmosis_default(), &cfg);
        let (logged, log) = run_ocs_logged(&mut mk(), EpochConfig::osmosis_default(), &cfg);
        assert_eq!(plain.fingerprint(), logged.fingerprint());
        assert_eq!(log.len() as f64, logged.extra("ocs_epochs").unwrap_or(-1.0));
    }
}
