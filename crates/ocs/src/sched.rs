//! The epoch scheduler: a [`CircuitView`] implementation that plans
//! circuit configurations frame by frame from the estimated traffic
//! matrix.
//!
//! Per slot the engine advances the scheduler (`begin_slot`) *before*
//! the model's phases, so the circuit state a model queries through
//! `Observer::circuit_for` is already this slot's. On an epoch boundary
//! the scheduler:
//!
//! 1. if the frame queue is empty, rolls the TM estimator, decomposes
//!    the (diagonal-free) estimate with
//!    [`bvn::decompose`](crate::bvn::decompose), and apportions the
//!    frame's epochs over the terms by largest-remainder — a term
//!    carrying half the demand holds its circuits for half the frame;
//! 2. pops the next epoch's permutation; if it differs from the one
//!    currently lit, the epoch opens with `guard_slots` dark slots
//!    (the reconfiguration tax) — an unchanged permutation pays nothing;
//! 3. appends an [`EpochRecord`] to the in-memory log, later exported
//!    as telemetry `epoch`/`reconfig` JSONL records.
//!
//! With an empty estimate (cold start, or genuinely idle traffic) the
//! frame falls back to a *rotor* schedule: round-robin permutations
//! `i → (i + offset) mod n`, offset cycling `1..n`, which never
//! schedules a self-loop and gives every pair periodic connectivity —
//! the demand-oblivious baseline of rotor/RotorNet-style fabrics.
//!
//! The scheduler holds no RNG: every decision is a pure function of the
//! arrival stream it was fed, so same seed ⇒ bit-identical schedule.

use crate::bvn;
use crate::epoch::EpochConfig;
use crate::tm::TmEstimator;
use osmosis_sim::engine::{EngineConfig, EngineReport};
use osmosis_sim::CircuitView;
use std::collections::VecDeque;

/// An input whose circuit is dark (not connected this epoch).
const DARK: usize = usize::MAX;

/// One epoch as the scheduler saw it — the telemetry export unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch ordinal within the run (0-based).
    pub epoch: u64,
    /// Slot at which the epoch opened.
    pub start_slot: u64,
    /// Whether the configuration changed at this boundary.
    pub reconfigured: bool,
    /// Inputs whose circuit changed (0 when not reconfigured).
    pub changed_circuits: u64,
    /// Guard slots charged at this boundary.
    pub guard_slots: u64,
    /// Cells transferred over the epoch's circuits.
    pub transfers: u64,
    /// `transfers / (n × payload slots)` — circuit utilization.
    pub utilization: f64,
}

/// The frame-planning circuit scheduler.
pub struct OcsScheduler {
    cfg: EpochConfig,
    n: usize,
    tm: TmEstimator,
    frame: VecDeque<Vec<usize>>,
    current: Vec<usize>,
    guard_left: u64,
    in_guard_now: bool,
    slot_in_epoch: u64,
    epoch_index: u64,
    rotor_offset: usize,
    log: Vec<EpochRecord>,
    epoch_transfers: u64,
    total_transfers: u64,
    reconfigurations: u64,
    changed_total: u64,
    guard_paid: u64,
    bvn_terms_total: u64,
    decompositions: u64,
    rotor_frames: u64,
}

impl OcsScheduler {
    /// A scheduler with the given cadence; port count is learned from
    /// the engine at `configure`.
    pub fn new(cfg: EpochConfig) -> Self {
        OcsScheduler {
            cfg,
            n: 0,
            tm: TmEstimator::new(0),
            frame: VecDeque::new(),
            current: Vec::new(),
            guard_left: 0,
            in_guard_now: false,
            slot_in_epoch: 0,
            epoch_index: 0,
            rotor_offset: 1,
            log: Vec::new(),
            epoch_transfers: 0,
            total_transfers: 0,
            reconfigurations: 0,
            changed_total: 0,
            guard_paid: 0,
            bvn_terms_total: 0,
            decompositions: 0,
            rotor_frames: 0,
        }
    }

    /// The cadence this scheduler runs.
    pub fn config(&self) -> &EpochConfig {
        &self.cfg
    }

    /// The per-epoch log (closed epochs have final transfer counts; the
    /// last entry is finalized by `finish`).
    pub fn epoch_log(&self) -> &[EpochRecord] {
        &self.log
    }

    /// Epochs opened so far.
    pub fn epochs(&self) -> u64 {
        self.epoch_index
    }

    /// Reconfigurations performed so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// The TM estimator state (for inspection/tests).
    pub fn estimator(&self) -> &TmEstimator {
        &self.tm
    }

    /// Close the open epoch record with its transfer count.
    fn close_epoch_record(&mut self) {
        let n = self.n;
        let epoch_slots = self.cfg.epoch_slots;
        if let Some(rec) = self.log.last_mut() {
            rec.transfers = self.epoch_transfers;
            let payload = epoch_slots.saturating_sub(rec.guard_slots);
            let capacity = (n as u64) * payload;
            rec.utilization = if capacity > 0 {
                rec.transfers as f64 / capacity as f64
            } else {
                0.0
            };
        }
        self.epoch_transfers = 0;
    }

    /// One rotor permutation `i → (i + offset) mod n`, then advance the
    /// offset through `1..n` (skipping 0: never a self-loop).
    fn rotor_perm(&mut self) -> Vec<usize> {
        let n = self.n;
        if n < 2 {
            return vec![DARK; n];
        }
        let off = self.rotor_offset;
        let perm = (0..n).map(|i| (i + off) % n).collect();
        self.rotor_offset = if off + 1 >= n { 1 } else { off + 1 };
        perm
    }

    /// Plan the next frame of epoch permutations from the demand
    /// estimate (rotor fallback when the estimate is empty).
    fn plan_frame(&mut self) {
        let n = self.n;
        self.tm.roll();
        // Self-traffic never crosses the fabric: zero the diagonal so
        // the decomposition spends no weight on it.
        let mut demand = self.tm.estimate().to_vec();
        for i in 0..n {
            demand[i * n + i] = 0;
        }
        let dec = bvn::decompose(n, &demand);
        self.decompositions += 1;
        self.bvn_terms_total += dec.terms.len() as u64;
        if dec.terms.is_empty() || dec.target == 0 {
            self.rotor_frames += 1;
            for _ in 0..self.cfg.frame_epochs {
                let p = self.rotor_perm();
                self.frame.push_back(p);
            }
            return;
        }
        // Largest-remainder apportionment of the frame's epochs over the
        // terms, proportional to weight. Floors first, then the leftover
        // epochs go to the largest remainders (ties to the lower index —
        // deterministic).
        let f = self.cfg.frame_epochs as u64;
        let total = dec.total_weight();
        let mut quota: Vec<u64> = dec.terms.iter().map(|t| f * t.weight / total).collect();
        let mut rem: Vec<(u64, usize)> = dec
            .terms
            .iter()
            .enumerate()
            .map(|(k, t)| ((f * t.weight) % total, k))
            .collect();
        let assigned: u64 = quota.iter().sum();
        let mut leftover = f.saturating_sub(assigned);
        rem.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, k) in rem.iter() {
            if leftover == 0 {
                break;
            }
            quota[k] += 1;
            leftover -= 1;
        }
        for (k, t) in dec.terms.iter().enumerate() {
            for _ in 0..quota[k] {
                self.frame.push_back(t.perm.clone());
            }
        }
        if self.frame.is_empty() {
            // Defensive: an empty apportionment degrades to rotor.
            let p = self.rotor_perm();
            self.frame.push_back(p);
        }
    }

    /// Open a new epoch at `slot`.
    fn start_epoch(&mut self, slot: u64) {
        if self.epoch_index > 0 {
            self.close_epoch_record();
        }
        if self.frame.is_empty() {
            self.plan_frame();
        }
        let next = match self.frame.pop_front() {
            Some(p) => p,
            None => vec![DARK; self.n],
        };
        let changed = next
            .iter()
            .zip(self.current.iter())
            .filter(|(a, b)| a != b)
            .count() as u64;
        let reconfigured = changed > 0;
        let guard = if reconfigured {
            self.cfg.guard_slots
        } else {
            0
        };
        if reconfigured {
            self.guard_left = guard;
            self.reconfigurations += 1;
            self.changed_total += changed;
        }
        self.current = next;
        self.log.push(EpochRecord {
            epoch: self.epoch_index,
            start_slot: slot,
            reconfigured,
            changed_circuits: changed,
            guard_slots: guard,
            transfers: 0,
            utilization: 0.0,
        });
        self.epoch_index += 1;
    }
}

impl CircuitView for OcsScheduler {
    fn configure(&mut self, _cfg: &EngineConfig, ports: usize) {
        self.n = ports;
        self.tm = TmEstimator::new(ports);
        self.frame.clear();
        self.current = vec![DARK; ports];
        self.guard_left = 0;
        self.in_guard_now = false;
        self.slot_in_epoch = 0;
        self.epoch_index = 0;
        self.rotor_offset = 1;
        self.log.clear();
        self.epoch_transfers = 0;
        self.total_transfers = 0;
        self.reconfigurations = 0;
        self.changed_total = 0;
        self.guard_paid = 0;
        self.bvn_terms_total = 0;
        self.decompositions = 0;
        self.rotor_frames = 0;
    }

    fn begin_slot(&mut self, slot: u64) {
        if self.n == 0 {
            return;
        }
        if self.slot_in_epoch == 0 {
            self.start_epoch(slot);
        }
        self.in_guard_now = self.guard_left > 0;
        if self.guard_left > 0 {
            self.guard_left -= 1;
            self.guard_paid += 1;
        }
        self.slot_in_epoch += 1;
        if self.slot_in_epoch == self.cfg.epoch_slots {
            self.slot_in_epoch = 0;
        }
    }

    fn is_vacuous(&self) -> bool {
        // A scheduler is always a real plan: it reconfigures circuits
        // from the very first epoch (rotor if nothing is known yet).
        false
    }

    fn note_arrival(&mut self, src: usize, dst: usize) {
        self.tm.note(src, dst);
    }

    fn note_transfer(&mut self, _input: usize, _output: usize) {
        self.epoch_transfers += 1;
        self.total_transfers += 1;
    }

    fn circuit(&self, input: usize) -> Option<usize> {
        match self.current.get(input) {
            Some(&j) if j != DARK && j < self.n => Some(j),
            _ => None,
        }
    }

    fn in_guard(&self) -> bool {
        self.in_guard_now
    }

    fn finish(&mut self, report: &mut EngineReport) {
        self.close_epoch_record();
        report.set_extra("ocs_epochs", self.epoch_index as f64);
        report.set_extra("ocs_reconfigurations", self.reconfigurations as f64);
        report.set_extra("ocs_changed_circuits", self.changed_total as f64);
        report.set_extra("ocs_guard_slots_paid", self.guard_paid as f64);
        report.set_extra("ocs_bvn_terms", self.bvn_terms_total as f64);
        report.set_extra("ocs_decompositions", self.decompositions as f64);
        report.set_extra("ocs_rotor_frames", self.rotor_frames as f64);
        report.set_extra("ocs_transfers", self.total_transfers as f64);
        let mean_util = if self.log.is_empty() {
            0.0
        } else {
            self.log.iter().map(|r| r.utilization).sum::<f64>() / self.log.len() as f64
        };
        report.set_extra("ocs_mean_utilization", mean_util);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured(n: usize, cfg: EpochConfig) -> OcsScheduler {
        let mut s = OcsScheduler::new(cfg);
        s.configure(&EngineConfig::new(0, 0), n);
        s
    }

    #[test]
    fn cold_start_uses_rotor_without_self_loops() {
        let mut s = configured(4, EpochConfig::new(8, 1, 4));
        s.begin_slot(0);
        for i in 0..4 {
            let c = s.circuit(i);
            assert!(c.is_some());
            assert_ne!(c, Some(i), "self-loop scheduled at input {i}");
        }
        assert!(s.in_guard(), "first epoch pays the guard");
        s.begin_slot(1);
        assert!(!s.in_guard(), "one guard slot at osmosis cadence");
    }

    #[test]
    fn epoch_boundaries_follow_the_cadence() {
        let mut s = configured(4, EpochConfig::new(8, 1, 2));
        for slot in 0..33 {
            s.begin_slot(slot);
        }
        // Slots 0..33 with 8-slot epochs ⇒ boundaries at 0,8,16,24,32.
        assert_eq!(s.epochs(), 5);
    }

    #[test]
    fn demand_drives_the_schedule() {
        // Feed a pure permutation demand; after the first (rotor) frame
        // the schedule must lock onto it.
        let cfg = EpochConfig::new(4, 1, 2);
        let mut s = configured(4, cfg);
        let want = [1usize, 0, 3, 2]; // 0↔1, 2↔3
        let mut slot = 0u64;
        // Two frames of slots, feeding demand throughout.
        for _ in 0..(4 * 2 * 2) {
            s.begin_slot(slot);
            for (src, &dst) in want.iter().enumerate() {
                s.note_arrival(src, dst);
            }
            slot += 1;
        }
        // By now the frame was planned from a rolled estimate.
        s.begin_slot(slot);
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(s.circuit(i), Some(w), "input {i}");
        }
    }

    #[test]
    fn unchanged_permutation_pays_no_guard() {
        // Single dominant permutation ⇒ consecutive epochs identical ⇒
        // only the first reconfiguration in each streak charges guard.
        let cfg = EpochConfig::new(4, 2, 4);
        let mut s = configured(4, cfg);
        let want = [1usize, 0, 3, 2];
        for slot in 0..(4 * 4 * 3) {
            s.begin_slot(slot);
            for (src, &dst) in want.iter().enumerate() {
                s.note_arrival(src, dst);
            }
        }
        // Some epochs reconfigured (rotor warmup + lock-on), but far
        // fewer than the number of epochs: steady frames are guard-free.
        assert!(s.reconfigurations() < s.epochs());
        let mut r = EngineReport::default();
        s.finish(&mut r);
        assert_eq!(r.extra("ocs_epochs"), Some(s.epochs() as f64));
        assert!(r.extra("ocs_guard_slots_paid").is_some());
    }

    #[test]
    fn log_records_transfers_and_utilization() {
        let mut s = configured(2, EpochConfig::new(4, 0, 1));
        for slot in 0..8 {
            s.begin_slot(slot);
            s.note_transfer(0, 1);
            s.note_transfer(1, 0);
        }
        let mut r = EngineReport::default();
        s.finish(&mut r);
        let log = s.epoch_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].transfers, 8); // 2 transfers × 4 slots
        assert!((log[0].utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_input_stream_gives_identical_schedules() {
        let run = || {
            let mut s = configured(8, EpochConfig::new(8, 1, 4));
            let mut circuits = Vec::new();
            for slot in 0..200u64 {
                s.begin_slot(slot);
                s.note_arrival((slot % 8) as usize, ((slot + 3) % 8) as usize);
                circuits.push((0..8).map(|i| s.circuit(i)).collect::<Vec<_>>());
            }
            (circuits, s.epochs(), s.reconfigurations())
        };
        assert_eq!(run(), run());
    }
}
