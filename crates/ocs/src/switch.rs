//! The circuit-switched datapath: VOQ ingress adapters feeding epoch
//! circuits instead of a per-slot crossbar matching.
//!
//! Structurally the switch is the OSMOSIS edge with the central packet
//! scheduler removed: cells wait in per-destination VOQs, and in each
//! slot input `i` may transfer **only** along its currently lit circuit
//! (`Observer::circuit_for(i)`), one cell per slot, none during a guard
//! slot. Egress queues transmit one cell per slot toward hosts with the
//! same hop-by-hop retransmission path the packet switch uses under
//! link-corruption faults.
//!
//! Fault semantics: a [`CircuitStuck`] element
//! (`Observer::fault_circuit_stuck`) keeps an input's *previously
//! applied* circuit lit instead of the newly scheduled one. Two stale
//! circuits can then light the same output; the collision is resolved
//! deterministically (lowest input wins the receiver, the loser's cell
//! stays queued and the conflict is reported through
//! `Observer::receiver_conflict`).
//!
//! [`CircuitStuck`]: osmosis_sim::FaultView::circuit_stuck

use osmosis_sim::audit::DropReason;
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_switch::{Cell, CellSwitch};
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper};
use std::collections::VecDeque;

/// An input with no circuit applied.
const DARK: usize = usize::MAX;

/// The circuit-switched edge datapath.
pub struct OcsSwitch {
    n: usize,
    voq: Vec<VecDeque<Cell>>, // [input * n + output]
    egress: Vec<VecDeque<Cell>>,
    /// Circuit physically lit per input this slot (stale under a stuck
    /// fault; `DARK` when unconnected).
    applied: Vec<usize>,
    /// Scratch: which outputs already received a cell this slot.
    claimed: Vec<bool>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    buffer_cells: Option<usize>,
}

impl OcsSwitch {
    /// An `n`-port circuit switch with empty queues and all circuits
    /// dark.
    pub fn new(n: usize) -> Self {
        OcsSwitch {
            n,
            voq: (0..n * n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            applied: vec![DARK; n],
            claimed: vec![false; n],
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            buffer_cells: None,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.n
    }
}

impl CellSwitch for OcsSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
        self.applied.iter_mut().for_each(|a| *a = DARK);
        self.buffer_cells = cfg.buffer_cells;
        for q in self.voq.iter_mut().chain(self.egress.iter_mut()) {
            q.clear();
        }
    }

    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        if obs.audit_attached() {
            // One receiver per egress: the capacity-legality auditor can
            // police that circuits never double-book an output.
            for o in 0..self.n {
                obs.audit_output_capacity(o, 1);
            }
        }
        if obs.circuit_guard() {
            // Guard slot: the fabric is reconfiguring, nothing transfers.
            return;
        }
        // Refresh the physically applied circuits. A stuck element keeps
        // its stale circuit; everything else follows the schedule.
        for i in 0..self.n {
            if obs.faults_attached() && obs.fault_circuit_stuck(i) {
                continue;
            }
            self.applied[i] = match obs.circuit_for(i) {
                Some(o) if o < self.n => o,
                _ => DARK,
            };
        }
        self.claimed.iter_mut().for_each(|c| *c = false);
        // Report physical collisions (possible only with stale circuits)
        // before resolving them: count loaded contenders per output.
        if obs.faults_attached() {
            for o in 0..self.n {
                let contenders = (0..self.n)
                    .filter(|&i| self.applied[i] == o && !self.voq[i * self.n + o].is_empty())
                    .count();
                if contenders > 1 {
                    obs.receiver_conflict(o, contenders);
                }
            }
        }
        // Transfer: lowest input wins a contended receiver.
        for i in 0..self.n {
            let o = self.applied[i];
            if o == DARK || self.claimed[o] {
                continue;
            }
            if let Some(mut cell) = self.voq[i * self.n + o].pop_front() {
                self.claimed[o] = true;
                cell.grant_slot = slot;
                obs.cell_granted(i, o, cell.inject_slot);
                self.egress[o].push_back(cell);
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, _slot: u64, obs: &mut Observer<'_, T>) {
        for (o, q) in self.egress.iter_mut().enumerate() {
            obs.note_egress_depth(q.len());
            if !q.is_empty() && obs.faults_attached() && obs.fault_cell_corrupted(o) {
                // Corrupted on the egress link: keep the cell at the head
                // and re-send next slot (hop-by-hop retransmission).
                obs.cell_retransmitted(o);
                continue;
            }
            if let Some(cell) = q.pop_front() {
                debug_assert_eq!(cell.dst, o);
                self.checker.record(cell.src, cell.dst, cell.seq);
                obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            obs.cell_injected(a.src, a.dst);
            let q = &mut self.voq[a.src * self.n + a.dst];
            if let Some(cap) = self.buffer_cells {
                if q.len() >= cap {
                    // Finite ingress buffer: the cell is admitted to the
                    // ledger, then discarded (counted as a buffer drop).
                    obs.cell_dropped_for(a.src, DropReason::BufferFull);
                    continue;
                }
            }
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            q.push_back(cell);
            obs.note_queue_depth(q.len());
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }

    fn resident_cells(&self) -> Option<u64> {
        let queued: usize = self.voq.iter().map(VecDeque::len).sum::<usize>()
            + self.egress.iter().map(VecDeque::len).sum::<usize>();
        Some(queued as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochConfig;
    use crate::sched::OcsScheduler;
    use osmosis_sim::SeedSequence;
    use osmosis_switch::run_switch_circuit;
    use osmosis_traffic::{BernoulliUniform, Permutation};

    fn cfg() -> EngineConfig {
        EngineConfig::new(500, 5_000)
    }

    #[test]
    fn permutation_traffic_locks_on_and_flows() {
        let mut sw = OcsSwitch::new(8);
        let mut tr = Permutation::random(8, 0.8, &SeedSequence::new(3));
        let mut sched = OcsScheduler::new(EpochConfig::new(16, 1, 4));
        let r = run_switch_circuit(&mut sw, &mut tr, &cfg(), &mut sched, None, None);
        // Once the estimator locks onto the (static) permutation the
        // circuits stop changing; throughput approaches offered load.
        assert!(
            r.throughput > 0.9 * r.offered_load,
            "thr {} vs offered {}",
            r.throughput,
            r.offered_load
        );
        assert_eq!(r.reordered, 0);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn uniform_traffic_is_carried_at_moderate_load() {
        let mut sw = OcsSwitch::new(8);
        let mut tr = BernoulliUniform::new(8, 0.3, &SeedSequence::new(5));
        let mut sched = OcsScheduler::new(EpochConfig::osmosis_default());
        let r = run_switch_circuit(&mut sw, &mut tr, &cfg(), &mut sched, None, None);
        assert!(r.throughput > 0.25, "throughput {}", r.throughput);
        assert_eq!(r.reordered, 0);
        assert!(r.extra("ocs_epochs").is_some());
    }

    #[test]
    fn finite_buffer_drops_are_attributed() {
        let mut sw = OcsSwitch::new(4);
        let mut tr = BernoulliUniform::new(4, 0.95, &SeedSequence::new(9));
        let mut sched = OcsScheduler::new(EpochConfig::new(32, 1, 4));
        let r = run_switch_circuit(
            &mut sw,
            &mut tr,
            &cfg().with_buffer_cells(8),
            &mut sched,
            None,
            None,
        );
        assert!(r.dropped > 0, "overload must overflow an 8-cell buffer");
        assert_eq!(r.extra("drops_buffer_full"), Some(r.dropped as f64));
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let run = || {
            let mut sw = OcsSwitch::new(8);
            let mut tr = BernoulliUniform::new(8, 0.5, &SeedSequence::new(21));
            let mut sched = OcsScheduler::new(EpochConfig::osmosis_default());
            run_switch_circuit(
                &mut sw,
                &mut tr,
                &cfg().with_seed(21),
                &mut sched,
                None,
                None,
            )
            .fingerprint()
        };
        assert_eq!(run(), run());
    }
}
