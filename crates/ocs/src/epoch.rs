//! Epoch cadence and guard-time accounting.
//!
//! A circuit switch reconfigures on *epoch* boundaries: circuits are
//! held for `epoch_slots` cell cycles, and each reconfiguration pays the
//! physical-layer guard time — SOA settling plus burst-mode receiver
//! lock, the same [`GuardBudget`] the packet-mode datapath charges per
//! cell — during which no optical transfer is possible. At the OSMOSIS
//! operating point (10.4 ns guard, 51.2 ns cell cycle) that is a single
//! guard slot per reconfiguration, which is exactly why nanosecond-epoch
//! OCS proposals are viable: the reconfiguration tax is one cell cycle,
//! amortized over the whole epoch.
//!
//! Schedules are planned a *frame* at a time: every `frame_epochs`
//! epochs the scheduler rolls the traffic-matrix estimate, decomposes
//! it, and apportions the frame's epochs over the decomposition terms.

use osmosis_phy::{CellEfficiency, GuardBudget};

/// Epoch/frame cadence for an OCS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Cell cycles per epoch (≥ 1); circuits are held for this long.
    pub epoch_slots: u64,
    /// Cell cycles lost to each reconfiguration (0 ⇒ free switching).
    pub guard_slots: u64,
    /// Epochs per planning frame (≥ 1): the TM is re-estimated and
    /// re-decomposed once per frame.
    pub frame_epochs: usize,
}

impl EpochConfig {
    /// An explicit cadence; `epoch_slots` and `frame_epochs` are clamped
    /// to at least 1 so every configuration is runnable.
    pub fn new(epoch_slots: u64, guard_slots: u64, frame_epochs: usize) -> Self {
        EpochConfig {
            epoch_slots: epoch_slots.max(1),
            guard_slots,
            frame_epochs: frame_epochs.max(1),
        }
    }

    /// The demonstrator operating point: 64-slot epochs (~3.3 µs),
    /// 8-epoch frames, guard time from the OSMOSIS power-penalty budget
    /// quantized to cell cycles (= 1 slot).
    pub fn osmosis_default() -> Self {
        EpochConfig::new(
            64,
            guard_slots_for(
                &GuardBudget::osmosis_default(),
                &CellEfficiency::osmosis_default(),
            ),
            8,
        )
    }

    /// Override the epoch length.
    pub fn with_epoch_slots(mut self, epoch_slots: u64) -> Self {
        self.epoch_slots = epoch_slots.max(1);
        self
    }

    /// Override the per-reconfiguration guard charge.
    pub fn with_guard_slots(mut self, guard_slots: u64) -> Self {
        self.guard_slots = guard_slots;
        self
    }

    /// Override the frame length.
    pub fn with_frame_epochs(mut self, frame_epochs: usize) -> Self {
        self.frame_epochs = frame_epochs.max(1);
        self
    }

    /// Fraction of an epoch that can carry payload when the epoch paid a
    /// reconfiguration (the OCS duty cycle).
    pub fn duty_cycle(&self) -> f64 {
        let payload = self.epoch_slots.saturating_sub(self.guard_slots);
        payload as f64 / self.epoch_slots as f64
    }
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig::osmosis_default()
    }
}

/// Quantize a physical guard budget to whole cell cycles (ceiling): the
/// slots a reconfiguring circuit is dark.
pub fn guard_slots_for(budget: &GuardBudget, cell: &CellEfficiency) -> u64 {
    let guard_ps = budget.total().as_ps();
    let cycle_ps = cell.cycle().as_ps();
    if cycle_ps == 0 {
        return 0;
    }
    guard_ps.div_ceil(cycle_ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osmosis_guard_is_one_slot() {
        // 10.4 ns of SOA settling + receiver lock inside a 51.2 ns cell
        // cycle rounds up to exactly one guard slot.
        let g = guard_slots_for(
            &GuardBudget::osmosis_default(),
            &CellEfficiency::osmosis_default(),
        );
        assert_eq!(g, 1);
        assert_eq!(EpochConfig::osmosis_default().guard_slots, 1);
    }

    #[test]
    fn degenerate_cadence_is_clamped() {
        let c = EpochConfig::new(0, 5, 0);
        assert_eq!(c.epoch_slots, 1);
        assert_eq!(c.frame_epochs, 1);
    }

    #[test]
    fn duty_cycle_reflects_guard_share() {
        let c = EpochConfig::new(64, 1, 8);
        assert!((c.duty_cycle() - 63.0 / 64.0).abs() < 1e-12);
        let tight = EpochConfig::new(4, 1, 8);
        assert!((tight.duty_cycle() - 0.75).abs() < 1e-12);
    }
}
