//! iSLIP — the classic iterative round-robin matcher (McKeown, ref. [17]).
//!
//! Used here both as the building block inside FLPPR's sub-schedulers and,
//! standalone, as the *non-pipelined* reference scheduler: it computes a
//! complete i-iteration matching within a single cell slot, which is
//! exactly what the paper argues is infeasible in hardware at 51.2 ns —
//! the motivation for FLPPR.
//!
//! The dual-receiver extension treats each output as `out_capacity`
//! sub-ports, each with its own grant arbiter, so the same algorithm
//! serves both Fig. 7 curves.

use crate::arbiter::{BitSet, RoundRobinArbiter};
use crate::requests::{Matching, Requests};
use crate::traits::CellScheduler;

/// iSLIP scheduler with a configurable iteration count and output capacity.
#[derive(Debug, Clone)]
pub struct Islip {
    occ: Requests,
    iterations: usize,
    out_capacity: usize,
    /// Grant arbiter per output sub-port (`outputs × out_capacity`).
    grant_arb: Vec<RoundRobinArbiter>,
    /// Accept arbiter per input, over output sub-ports.
    accept_arb: Vec<RoundRobinArbiter>,
    // Scratch (reused every tick).
    in_matched_bits: BitSet,
    subport_used: Vec<bool>,
    grants_to_input: Vec<BitSet>,
    /// Per output: bit i set ⇔ occ(i,o) > 0, maintained incrementally.
    occ_bits: Vec<BitSet>,
    requesters: BitSet,
}

impl Islip {
    /// `n × n` iSLIP with `iterations` iterations and `out_capacity`
    /// receivers per output.
    pub fn new(n: usize, iterations: usize, out_capacity: usize) -> Self {
        assert!(n > 0 && iterations > 0 && out_capacity > 0);
        Islip {
            occ: Requests::square(n),
            iterations,
            out_capacity,
            // Stagger sub-port pointers so a dual-receiver output's two
            // grant arbiters do not grant the same input on slot 0.
            grant_arb: (0..n * out_capacity)
                .map(|sp| RoundRobinArbiter::with_pointer(n, sp % out_capacity))
                .collect(),
            accept_arb: (0..n)
                .map(|_| RoundRobinArbiter::new(n * out_capacity))
                .collect(),
            in_matched_bits: BitSet::new(n),
            subport_used: vec![false; n * out_capacity],
            grants_to_input: (0..n).map(|_| BitSet::new(n * out_capacity)).collect(),
            occ_bits: (0..n).map(|_| BitSet::new(n)).collect(),
            requesters: BitSet::new(n),
        }
    }

    /// The canonical configuration from ref. [17]: log₂N iterations.
    pub fn log2n(n: usize, out_capacity: usize) -> Self {
        let iters = (n.max(2) as f64).log2().ceil() as usize;
        Self::new(n, iters, out_capacity)
    }

    /// Internal VOQ occupancy view (for tests and diagnostics).
    pub fn occupancy(&self) -> &Requests {
        &self.occ
    }
}

impl CellScheduler for Islip {
    fn inputs(&self) -> usize {
        self.occ.inputs()
    }

    fn outputs(&self) -> usize {
        self.occ.outputs()
    }

    fn out_capacity(&self) -> usize {
        self.out_capacity
    }

    fn note_arrival(&mut self, input: usize, output: usize) {
        self.occ.inc(input, output);
        self.occ_bits[output].set(input);
    }

    fn tick(&mut self, _slot: u64) -> Matching {
        let n = self.occ.inputs();
        let r = self.out_capacity;
        let mut matching = Matching::with_capacity(n);
        self.in_matched_bits.clear_all();
        self.subport_used.fill(false);

        for iter in 0..self.iterations {
            // --- Grant phase: each free output sub-port picks one
            // requesting unmatched input via its round-robin arbiter.
            for g in &mut self.grants_to_input {
                g.clear_all();
            }
            let mut any_grant = false;
            for o in 0..n {
                for sub in 0..r {
                    let sp = o * r + sub;
                    if self.subport_used[sp] {
                        continue;
                    }
                    self.requesters
                        .assign_and_not(&self.occ_bits[o], &self.in_matched_bits);
                    if self.requesters.is_empty() {
                        continue;
                    }
                    if let Some(i) = self.grant_arb[sp].arbitrate(&self.requesters) {
                        self.grants_to_input[i].set(sp);
                        any_grant = true;
                    }
                }
            }
            if !any_grant {
                break;
            }
            // --- Accept phase: each input picks one granting sub-port.
            for i in 0..n {
                if self.in_matched_bits.get(i) || self.grants_to_input[i].is_empty() {
                    continue;
                }
                if let Some(sp) = self.accept_arb[i].arbitrate(&self.grants_to_input[i]) {
                    let o = sp / r;
                    self.in_matched_bits.set(i);
                    self.subport_used[sp] = true;
                    matching.push(i, o);
                    // iSLIP pointer rule: update only on first-iteration
                    // accepts (prevents starvation, desynchronizes
                    // pointers).
                    if iter == 0 {
                        self.grant_arb[sp].advance_past(i);
                        self.accept_arb[i].advance_past(sp);
                    }
                }
            }
        }
        for &(i, o) in matching.pairs() {
            self.occ.dec(i, o);
            if self.occ.get(i, o) == 0 {
                self.occ_bits[o].clear(i);
            }
        }
        matching
    }

    fn name(&self) -> &'static str {
        "iSLIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut Islip, slots: u64) -> Vec<Matching> {
        (0..slots).map(|t| s.tick(t)).collect()
    }

    #[test]
    fn empty_switch_grants_nothing() {
        let mut s = Islip::new(4, 2, 1);
        assert!(s.tick(0).is_empty());
    }

    #[test]
    fn single_cell_granted_immediately() {
        let mut s = Islip::new(8, 1, 1);
        s.note_arrival(3, 5);
        let m = s.tick(0);
        assert_eq!(m.pairs(), &[(3, 5)]);
        assert!(s.tick(1).is_empty(), "cell consumed");
    }

    #[test]
    fn grants_respect_constraints() {
        let mut s = Islip::new(8, 3, 1);
        let mut shadow = Requests::square(8);
        // Load a conflicted pattern.
        for i in 0..8 {
            for o in [0usize, 1] {
                s.note_arrival(i, o);
                shadow.inc(i, o);
            }
        }
        let m = s.tick(0);
        m.validate(&shadow, 1).unwrap();
        // Single-receiver: at most 2 grants (outputs 0 and 1).
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn dual_receiver_doubles_hot_output_drain() {
        let mut s1 = Islip::new(8, 3, 1);
        let mut s2 = Islip::new(8, 3, 2);
        for i in 0..8 {
            s1.note_arrival(i, 0);
            s2.note_arrival(i, 0);
        }
        let m1 = s1.tick(0);
        let m2 = s2.tick(0);
        assert_eq!(m1.len(), 1);
        assert_eq!(m2.len(), 2, "two receivers accept two cells");
    }

    #[test]
    fn permutation_load_fully_matched_in_one_iteration() {
        let mut s = Islip::new(16, 1, 1);
        for i in 0..16 {
            s.note_arrival(i, (i + 3) % 16);
        }
        let m = s.tick(0);
        assert_eq!(m.len(), 16, "contention-free load matches completely");
    }

    #[test]
    fn more_iterations_grow_the_matching() {
        // A dense conflicted pattern: 1 iteration leaves holes that 4
        // iterations fill.
        let build = |iters| {
            let mut s = Islip::new(16, iters, 1);
            for i in 0..16 {
                for o in 0..16 {
                    if (i + o) % 3 == 0 {
                        s.note_arrival(i, o);
                    }
                }
            }
            s.tick(0).len()
        };
        let one = build(1);
        let four = build(4);
        assert!(four >= one);
        assert!(four >= 12, "iterated matching near-maximal: {four}");
    }

    #[test]
    fn round_robin_is_fair_across_hot_inputs() {
        // 4 inputs all fighting for output 0: over 8 slots each gets 2.
        let mut s = Islip::new(4, 1, 1);
        for _ in 0..8 {
            for i in 0..4 {
                s.note_arrival(i, 0);
            }
        }
        let mut served = [0u32; 4];
        for m in drain(&mut s, 8) {
            assert_eq!(m.len(), 1);
            served[m.pairs()[0].0] += 1;
        }
        assert_eq!(served, [2, 2, 2, 2], "round-robin fairness");
    }

    #[test]
    fn saturated_uniform_throughput_is_high() {
        // All VOQs deep: every slot must fill nearly all outputs —
        // iSLIP with log2(N) iterations converges to ~100% throughput.
        let n = 16;
        let mut s = Islip::log2n(n, 1);
        for i in 0..n {
            for o in 0..n {
                for _ in 0..50 {
                    s.note_arrival(i, o);
                }
            }
        }
        let slots = 200u64;
        let granted: usize = drain(&mut s, slots).iter().map(|m| m.len()).sum();
        let thr = granted as f64 / (slots as f64 * n as f64);
        assert!(thr > 0.95, "throughput {thr}");
    }

    #[test]
    fn occupancy_never_negative() {
        let mut s = Islip::new(4, 2, 2);
        s.note_arrival(0, 0);
        s.tick(0);
        // Would panic internally on a double grant for the same cell.
        for t in 1..10 {
            assert!(s.tick(t).is_empty());
        }
    }
}
