//! The one-iteration-per-slot accumulating matcher used as the
//! sub-scheduler building block of both FLPPR and the prior-art pipelined
//! arbiter.
//!
//! Hardware schedulers cannot run log₂N grant/accept iterations inside one
//! 51.2 ns cell cycle, so pipelined designs spread a matching's iterations
//! over several cycles. A [`SubScheduler`] owns its request view and a
//! partial matching; [`SubScheduler::iterate`] performs one round-robin
//! grant/accept round (one "iteration"), and [`SubScheduler::take`]
//! harvests the accumulated matching and starts a fresh one.

use crate::arbiter::{BitSet, RoundRobinArbiter};
use crate::requests::{Matching, Requests};

/// A pipelined matching engine for an n×n crossbar with `out_capacity`
/// receivers per output.
#[derive(Debug, Clone)]
pub struct SubScheduler {
    /// This sub-scheduler's view of the VOQ occupancy.
    pub req: Requests,
    /// Cells already claimed by the in-progress matching.
    reserved: Requests,
    out_capacity: usize,
    /// Per-output *effective* capacity (≤ `out_capacity`), lowered by the
    /// owner when fault masking degrades an egress.
    out_cap: Vec<usize>,
    in_matched: Vec<bool>,
    /// Bit i set ⇔ input i is matched (word-parallel mirror of
    /// `in_matched` for the grant stage).
    in_matched_bits: BitSet,
    subport_used: Vec<bool>,
    /// Accumulated partial matching: (input, output, sub-port).
    pairs: Vec<(usize, usize, usize)>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    grants_to_input: Vec<BitSet>,
    /// Per output: bit i set ⇔ req(i,o) > reserved(i,o) — maintained
    /// incrementally so the grant stage is O(N/64) per output instead of
    /// an O(N) scan.
    req_bits: Vec<BitSet>,
    requesters: BitSet,
}

impl SubScheduler {
    /// Fresh engine for an `n`-port crossbar.
    pub fn new(n: usize, out_capacity: usize) -> Self {
        assert!(n > 0 && out_capacity > 0);
        SubScheduler {
            req: Requests::square(n),
            reserved: Requests::square(n),
            out_capacity,
            out_cap: vec![out_capacity; n],
            in_matched: vec![false; n],
            in_matched_bits: BitSet::new(n),
            subport_used: vec![false; n * out_capacity],
            pairs: Vec::with_capacity(n),
            // Stagger sub-port pointers so a dual-receiver output's two
            // grant arbiters do not grant the same input on slot 0.
            grant_arb: (0..n * out_capacity)
                .map(|sp| RoundRobinArbiter::with_pointer(n, sp % out_capacity))
                .collect(),
            accept_arb: (0..n)
                .map(|_| RoundRobinArbiter::new(n * out_capacity))
                .collect(),
            grants_to_input: (0..n).map(|_| BitSet::new(n * out_capacity)).collect(),
            req_bits: (0..n).map(|_| BitSet::new(n)).collect(),
            requesters: BitSet::new(n),
        }
    }

    /// Keep `req_bits[o]` consistent with `req`/`reserved` at (i, o).
    #[inline]
    fn refresh_bit(&mut self, i: usize, o: usize) {
        if self.req.get(i, o) > self.reserved.get(i, o) {
            self.req_bits[o].set(i);
        } else {
            self.req_bits[o].clear(i);
        }
    }

    /// Ports.
    pub fn ports(&self) -> usize {
        self.req.inputs()
    }

    /// Record a request (cell arrival) in this sub-scheduler's view.
    pub fn note_arrival(&mut self, input: usize, output: usize) {
        self.req.inc(input, output);
        self.refresh_bit(input, output);
    }

    /// Remove one cell for (input, output) from this view, saturating —
    /// used when another sub-scheduler's grant consumed the cell. If the
    /// in-progress matching had claimed the now-gone cell, the stale pair
    /// is un-matched immediately so the input and output become available
    /// again (FLPPR's duplicate-removal step; without it a served cell
    /// would block its input and output in every other sub-scheduler for
    /// up to K cycles).
    pub fn note_departure(&mut self, input: usize, output: usize) {
        self.req.try_dec(input, output);
        while self.reserved.get(input, output) > self.req.get(input, output) {
            let pos = self
                .pairs
                .iter()
                .position(|&(i, o, _)| i == input && o == output)
                // lint:allow(panic-free): `reserved` is only incremented
                // when a pair is pushed, so a surplus implies a match
                .expect("reserved count implies a matched pair");
            let (_, _, sp) = self.pairs.swap_remove(pos);
            self.in_matched[input] = false;
            self.in_matched_bits.clear(input);
            self.subport_used[sp] = false;
            self.reserved.dec(input, output);
        }
        self.refresh_bit(input, output);
    }

    /// Size of the partial matching accumulated so far.
    pub fn partial_len(&self) -> usize {
        self.pairs.len()
    }

    /// Degrade (or restore) one output's effective capacity. Lowering the
    /// cap un-matches any in-progress pairs on the now-dead sub-ports so
    /// their inputs become grantable elsewhere this very iteration.
    pub fn set_output_capacity(&mut self, output: usize, cap: usize) {
        let cap = cap.min(self.out_capacity);
        if self.out_cap[output] == cap {
            return;
        }
        self.out_cap[output] = cap;
        let r = self.out_capacity;
        let mut k = 0;
        while k < self.pairs.len() {
            let (i, o, sp) = self.pairs[k];
            if o == output && sp - o * r >= cap {
                self.pairs.swap_remove(k);
                self.in_matched[i] = false;
                self.in_matched_bits.clear(i);
                self.subport_used[sp] = false;
                self.reserved.dec(i, o);
                self.refresh_bit(i, o);
            } else {
                k += 1;
            }
        }
    }

    /// Perform one grant/accept iteration, extending the partial matching.
    pub fn iterate(&mut self) {
        let n = self.ports();
        let r = self.out_capacity;
        for g in &mut self.grants_to_input {
            g.clear_all();
        }
        let mut any = false;
        for o in 0..n {
            for sub in 0..self.out_cap[o] {
                let sp = o * r + sub;
                if self.subport_used[sp] {
                    continue;
                }
                self.requesters
                    .assign_and_not(&self.req_bits[o], &self.in_matched_bits);
                if self.requesters.is_empty() {
                    continue;
                }
                if let Some(i) = self.grant_arb[sp].arbitrate(&self.requesters) {
                    self.grants_to_input[i].set(sp);
                    any = true;
                }
            }
        }
        if !any {
            return;
        }
        for i in 0..n {
            if self.in_matched[i] || self.grants_to_input[i].is_empty() {
                continue;
            }
            if let Some(sp) = self.accept_arb[i].arbitrate(&self.grants_to_input[i]) {
                let o = sp / r;
                self.in_matched[i] = true;
                self.in_matched_bits.set(i);
                self.subport_used[sp] = true;
                self.reserved.inc(i, o);
                self.refresh_bit(i, o);
                self.pairs.push((i, o, sp));
                self.grant_arb[sp].advance_past(i);
                self.accept_arb[i].advance_past(sp);
            }
        }
    }

    /// Harvest the accumulated matching and reset for the next one.
    /// The request view is *not* touched: granted cells are removed by the
    /// owner once the grants are validated and issued.
    pub fn take(&mut self, out: &mut Matching) {
        out.clear();
        for &(i, o, _) in &self.pairs {
            out.push(i, o);
        }
        // Releasing the reservations can only *add* requester bits, and
        // only at the matched pairs.
        let pairs = std::mem::take(&mut self.pairs);
        self.in_matched.fill(false);
        self.in_matched_bits.clear_all();
        self.subport_used.fill(false);
        self.reserved.clear_all();
        for &(i, o, _) in &pairs {
            self.refresh_bit(i, o);
        }
        self.pairs = pairs;
        self.pairs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_iteration_matches_uncontended_requests() {
        let mut s = SubScheduler::new(8, 1);
        s.note_arrival(1, 2);
        s.note_arrival(3, 4);
        s.iterate();
        assert_eq!(s.partial_len(), 2);
        let mut m = Matching::new();
        s.take(&mut m);
        let mut pairs = m.pairs().to_vec();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 2), (3, 4)]);
        assert_eq!(s.partial_len(), 0, "reset after take");
    }

    #[test]
    fn iterations_accumulate_without_double_booking() {
        let mut s = SubScheduler::new(4, 1);
        // Everyone wants output 0 plus a private output.
        for i in 0..4 {
            s.note_arrival(i, 0);
            s.note_arrival(i, (i + 1) % 4);
        }
        s.iterate();
        let after1 = s.partial_len();
        s.iterate();
        s.iterate();
        let after3 = s.partial_len();
        assert!(after3 >= after1);
        let mut m = Matching::new();
        s.take(&mut m);
        m.validate(&s.req, 1).unwrap();
    }

    #[test]
    fn reserved_cells_not_rematched() {
        let mut s = SubScheduler::new(4, 1);
        s.note_arrival(0, 0); // exactly one cell
        s.iterate();
        s.iterate();
        assert_eq!(s.partial_len(), 1, "single cell matched once");
    }

    #[test]
    fn departure_is_saturating() {
        let mut s = SubScheduler::new(4, 1);
        s.note_departure(0, 0); // no cell: must not underflow
        s.note_arrival(0, 0);
        s.note_departure(0, 0);
        s.iterate();
        assert_eq!(s.partial_len(), 0, "view empty after departure");
    }

    #[test]
    fn dual_capacity_matches_two_per_output() {
        let mut s = SubScheduler::new(4, 2);
        for i in 0..4 {
            s.note_arrival(i, 0);
        }
        s.iterate();
        assert_eq!(s.partial_len(), 2, "two receivers on output 0");
    }

    #[test]
    fn degraded_output_matches_fewer_and_recovers() {
        let mut s = SubScheduler::new(4, 2);
        s.set_output_capacity(0, 1);
        for i in 0..4 {
            s.note_arrival(i, 0);
        }
        s.iterate();
        assert_eq!(s.partial_len(), 1, "one surviving receiver on output 0");
        let mut m = Matching::new();
        s.take(&mut m);
        s.set_output_capacity(0, 2);
        s.iterate();
        s.iterate();
        assert_eq!(s.partial_len(), 2, "full capacity after repair");
    }

    #[test]
    fn lowering_capacity_unmatches_in_progress_pairs() {
        let mut s = SubScheduler::new(4, 2);
        for i in 0..4 {
            s.note_arrival(i, 0);
            s.note_arrival(i, 1);
        }
        s.iterate();
        s.iterate();
        let before = s.partial_len();
        assert!(before >= 3, "warm matching uses both receivers");
        // Kill output 0 entirely: its pairs must be released so the
        // freed inputs can be re-matched toward output 1.
        s.set_output_capacity(0, 0);
        let mut m = Matching::new();
        s.take(&mut m);
        assert!(
            m.pairs().iter().all(|&(_, o)| o != 0),
            "no grant to dead output"
        );
        s.iterate();
        s.iterate();
        let mut m2 = Matching::new();
        s.take(&mut m2);
        assert!(m2.pairs().iter().all(|&(_, o)| o != 0));
        assert!(!m2.is_empty(), "surviving output still matched");
    }
}
