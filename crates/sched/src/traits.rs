//! The scheduler interface shared by the single-stage switch and fabric
//! simulations.

use crate::requests::Matching;

/// A central crossbar scheduler operating on cell slots.
///
/// The switch notifies the scheduler of every VOQ arrival and calls
/// [`CellScheduler::tick`] once per slot; the returned [`Matching`] is the
/// crossbar configuration for that slot. The contract:
///
/// * every granted pair is backed by a cell the scheduler was told about
///   and has not yet granted;
/// * each input appears at most once per matching;
/// * each output appears at most [`CellScheduler::out_capacity`] times
///   (2 with the dual-receiver datapath).
pub trait CellScheduler {
    /// Number of switch inputs.
    fn inputs(&self) -> usize;

    /// Number of switch outputs.
    fn outputs(&self) -> usize;

    /// Grants each output can absorb per slot (receivers per egress).
    fn out_capacity(&self) -> usize;

    /// Record one cell arrival into VOQ (input, output).
    fn note_arrival(&mut self, input: usize, output: usize);

    /// Produce the crossbar grants for this slot.
    fn tick(&mut self, slot: u64) -> Matching;

    /// Degrade (or restore) one output's effective grant capacity, in
    /// receivers per slot. The switch calls this when the fault plane
    /// kills an egress component: `0` for a stuck-off SOA gate, `1` when
    /// one of two burst-mode receivers dies, back to
    /// [`out_capacity`](CellScheduler::out_capacity) on repair. Grants to
    /// a degraded output must not exceed the effective capacity; cells
    /// already queued stay queued until capacity returns. The default
    /// ignores the request (schedulers without fault support simply keep
    /// granting at full capacity).
    fn set_output_capacity(&mut self, _output: usize, _cap: usize) {}

    /// The effective grant capacity currently in force for `output` —
    /// [`out_capacity`](CellScheduler::out_capacity) unless degraded by
    /// [`set_output_capacity`](CellScheduler::set_output_capacity). The
    /// invariant-audit plane reads this to check capacity legality;
    /// schedulers that ignore degradation report full capacity, which is
    /// exactly the bound they enforce.
    fn output_capacity(&self, _output: usize) -> usize {
        self.out_capacity()
    }

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}
