//! Maximum-size bipartite matching (Hopcroft–Karp) — the oracle reference
//! for matching-quality ablations.
//!
//! Iterative schedulers approximate the maximum matching; this module
//! computes it exactly so benches can report how close iSLIP/FLPPR get.
//! Also exposes a (hardware-infeasible) `MaxSizeScheduler` that issues a
//! maximum matching every slot.

use crate::requests::{Matching, Requests};
use crate::traits::CellScheduler;

/// Maximum matching size on the bipartite graph with an edge (i, o)
/// wherever `occ.get(i, o) > 0`, with unit input capacity and
/// `out_capacity` per output (outputs are expanded into sub-ports).
pub fn max_matching(occ: &Requests, out_capacity: usize) -> Matching {
    let n_in = occ.inputs();
    let n_out = occ.outputs();
    let n_right = n_out * out_capacity;
    // Hopcroft–Karp.
    const NIL: usize = usize::MAX;
    let mut match_l = vec![NIL; n_in];
    let mut match_r = vec![NIL; n_right];
    let adj: Vec<Vec<usize>> = (0..n_in)
        .map(|i| {
            (0..n_out)
                .filter(|&o| occ.get(i, o) > 0)
                .flat_map(|o| (0..out_capacity).map(move |r| o * out_capacity + r))
                .collect()
        })
        .collect();

    let mut dist = vec![0u32; n_in];
    let mut queue = std::collections::VecDeque::new();

    loop {
        // BFS layering from free left vertices.
        queue.clear();
        const INF: u32 = u32::MAX;
        for i in 0..n_in {
            if match_l[i] == NIL {
                dist[i] = 0;
                queue.push_back(i);
            } else {
                dist[i] = INF;
            }
        }
        let mut found_free = false;
        while let Some(i) = queue.pop_front() {
            for &r in &adj[i] {
                let m = match_r[r];
                if m == NIL {
                    found_free = true;
                } else if dist[m] == INF {
                    dist[m] = dist[i] + 1;
                    queue.push_back(m);
                }
            }
        }
        if !found_free {
            break;
        }
        // DFS augmenting along layered paths.
        fn try_augment(
            i: usize,
            adj: &[Vec<usize>],
            match_l: &mut [usize],
            match_r: &mut [usize],
            dist: &mut [u32],
        ) -> bool {
            const NIL: usize = usize::MAX;
            const INF: u32 = u32::MAX;
            for idx in 0..adj[i].len() {
                let r = adj[i][idx];
                let m = match_r[r];
                if m == NIL
                    || (dist[m] == dist[i] + 1 && try_augment(m, adj, match_l, match_r, dist))
                {
                    match_l[i] = r;
                    match_r[r] = i;
                    return true;
                }
            }
            dist[i] = INF;
            false
        }
        for i in 0..n_in {
            if match_l[i] == NIL {
                try_augment(i, &adj, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }

    let mut m = Matching::new();
    for (i, &r) in match_l.iter().enumerate() {
        if r != NIL {
            m.push(i, r / out_capacity);
        }
    }
    m
}

/// Oracle scheduler issuing a maximum-size matching every slot. Not
/// implementable at 51.2 ns; used only as an upper bound in ablations.
#[derive(Debug, Clone)]
pub struct MaxSizeScheduler {
    occ: Requests,
    out_capacity: usize,
}

impl MaxSizeScheduler {
    /// Oracle for an n-port switch.
    pub fn new(n: usize, out_capacity: usize) -> Self {
        MaxSizeScheduler {
            occ: Requests::square(n),
            out_capacity,
        }
    }
}

impl CellScheduler for MaxSizeScheduler {
    fn inputs(&self) -> usize {
        self.occ.inputs()
    }

    fn outputs(&self) -> usize {
        self.occ.outputs()
    }

    fn out_capacity(&self) -> usize {
        self.out_capacity
    }

    fn note_arrival(&mut self, input: usize, output: usize) {
        self.occ.inc(input, output);
    }

    fn tick(&mut self, _slot: u64) -> Matching {
        let m = max_matching(&self.occ, self.out_capacity);
        for &(i, o) in m.pairs() {
            self.occ.dec(i, o);
        }
        m
    }

    fn name(&self) -> &'static str {
        "max-size-oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let occ = Requests::square(4);
        assert!(max_matching(&occ, 1).is_empty());
    }

    #[test]
    fn perfect_matching_found() {
        let mut occ = Requests::square(4);
        for i in 0..4 {
            occ.inc(i, (i + 1) % 4);
        }
        let m = max_matching(&occ, 1);
        assert_eq!(m.len(), 4);
        m.validate(&occ, 1).unwrap();
    }

    #[test]
    fn finds_augmenting_paths() {
        // i0→{o0}, i1→{o0,o1}: greedy could match i1→o0 and strand i0;
        // max matching is 2.
        let mut occ = Requests::square(2);
        occ.inc(0, 0);
        occ.inc(1, 0);
        occ.inc(1, 1);
        let m = max_matching(&occ, 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn respects_output_capacity() {
        let mut occ = Requests::square(4);
        for i in 0..4 {
            occ.inc(i, 0);
        }
        assert_eq!(max_matching(&occ, 1).len(), 1);
        assert_eq!(max_matching(&occ, 2).len(), 2);
        assert_eq!(max_matching(&occ, 4).len(), 4);
    }

    #[test]
    fn hard_instance_vs_known_size() {
        // Bipartite graph with a known maximum: inputs 0..5 connect to
        // outputs {i, i+1 mod 5}; maximum matching = 5.
        let mut occ = Requests::square(5);
        for i in 0..5 {
            occ.inc(i, i);
            occ.inc(i, (i + 1) % 5);
        }
        assert_eq!(max_matching(&occ, 1).len(), 5);
    }

    #[test]
    fn oracle_scheduler_is_work_conserving() {
        let mut s = MaxSizeScheduler::new(8, 1);
        let mut injected = 0;
        for i in 0..8 {
            for o in 0..8 {
                s.note_arrival(i, o);
                injected += 1;
            }
        }
        let mut served = 0;
        for t in 0..20 {
            served += s.tick(t).len();
        }
        assert_eq!(served, injected);
    }

    #[test]
    fn oracle_beats_or_ties_single_iteration_islip() {
        use crate::islip::Islip;
        let mut occ = Requests::square(8);
        let mut islip = Islip::new(8, 1, 1);
        for i in 0..8 {
            for o in 0..8 {
                if (i * o) % 3 == 1 {
                    occ.inc(i, o);
                    islip.note_arrival(i, o);
                }
            }
        }
        let oracle = max_matching(&occ, 1).len();
        let heur = islip.tick(0).len();
        assert!(oracle >= heur, "{oracle} vs {heur}");
    }
}
