//! # osmosis-sched
//!
//! Crossbar schedulers for the OSMOSIS reproduction: round-robin arbiters,
//! the classic iSLIP and PIM iterative matchers, the prior-art pipelined
//! arbiter, and FLPPR — the paper's novel Fast Low-latency Parallel
//! Pipelined aRbitration (ref. [22]) — plus a maximum-size-matching oracle
//! for ablations.
//!
//! All schedulers implement [`CellScheduler`] and can drive both the
//! single-stage switch and the multistage fabric simulations, with single
//! or dual receivers per output.
//!
//! The Fig. 6 contrast in four lines:
//!
//! ```
//! use osmosis_sched::{CellScheduler, Flppr, PipelinedArbiter};
//!
//! let mut flppr = Flppr::osmosis(64, 1);          // 6 parallel sub-schedulers
//! flppr.tick(0);
//! flppr.note_arrival(17, 42);                     // request in cycle 0
//! assert_eq!(flppr.tick(1).pairs(), &[(17, 42)]); // grant in cycle 1
//!
//! let mut prior = PipelinedArbiter::log2n(64, 1); // the prior art
//! prior.tick(0);
//! prior.note_arrival(17, 42);
//! let waited = (1..=10).find(|&t| !prior.tick(t).is_empty()).unwrap();
//! assert_eq!(waited, 6);                          // log2(64) cycles
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arbiter;
pub mod flppr;
pub mod islip;
pub mod maxmatch;
pub mod pim;
pub mod pipelined;
pub mod requests;
pub mod subsched;
pub mod traits;

pub use arbiter::{BitSet, RoundRobinArbiter};
pub use flppr::Flppr;
pub use islip::Islip;
pub use maxmatch::{max_matching, MaxSizeScheduler};
pub use pim::Pim;
pub use pipelined::PipelinedArbiter;
pub use requests::{Matching, Requests};
pub use traits::CellScheduler;
