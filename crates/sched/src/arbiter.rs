//! Round-robin arbiters (programmable priority encoders).
//!
//! The grant and accept stages of PIM/iSLIP/FLPPR are built from these.
//! The bitset implementation scales to the fabric-level port counts
//! (2048) without per-slot allocation.

/// A fixed-size bitset over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// All-zero set of `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Clear all bits.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Set `self = a AND NOT b`, word-parallel. All three sets must have
    /// the same length. This is the hot path of the grant stage:
    /// "requesting inputs that are not yet matched".
    pub fn assign_and_not(&mut self, a: &BitSet, b: &BitSet) {
        debug_assert_eq!(self.len, a.len);
        debug_assert_eq!(self.len, b.len);
        for ((w, &wa), &wb) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            *w = wa & !wb;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The first set bit at or after `from`, wrapping around; `None` when
    /// empty. This is the programmable-priority-encoder primitive.
    pub fn next_set_wrapping(&self, from: usize) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let from = from % self.len;
        let sw = from / 64;
        // Search [from, len): padding bits above len are never set.
        let first = self.words[sw] & (!0u64 << (from % 64));
        if first != 0 {
            return Some(sw * 64 + first.trailing_zeros() as usize);
        }
        for wi in sw + 1..self.words.len() {
            if self.words[wi] != 0 {
                return Some(wi * 64 + self.words[wi].trailing_zeros() as usize);
            }
        }
        // Wrap: search [0, from).
        for wi in 0..=sw {
            let mut w = self.words[wi];
            if wi == sw {
                w &= !(!0u64 << (from % 64));
            }
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// A round-robin arbiter with a persistent pointer.
///
/// `arbitrate` grants the first requester at or after the pointer;
/// `advance_past` implements the iSLIP pointer-update rule (move to one
/// beyond the granted position).
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    pointer: usize,
    size: usize,
}

impl RoundRobinArbiter {
    /// Arbiter over `size` requesters, pointer at 0.
    pub fn new(size: usize) -> Self {
        Self::with_pointer(size, 0)
    }

    /// Arbiter with an explicit initial pointer — used to desynchronize
    /// the sub-port arbiters of a dual-receiver output from slot 0.
    pub fn with_pointer(size: usize, pointer: usize) -> Self {
        assert!(size > 0);
        RoundRobinArbiter {
            pointer: pointer % size,
            size,
        }
    }

    /// Current pointer position.
    pub fn pointer(&self) -> usize {
        self.pointer
    }

    /// Pick the first requester at or after the pointer (wrapping);
    /// does not move the pointer.
    pub fn arbitrate(&self, requests: &BitSet) -> Option<usize> {
        debug_assert_eq!(requests.len(), self.size);
        requests.next_set_wrapping(self.pointer)
    }

    /// iSLIP pointer update: one position beyond the granted requester.
    pub fn advance_past(&mut self, granted: usize) {
        debug_assert!(granted < self.size);
        self.pointer = (granted + 1) % self.size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        b.clear_all();
        assert!(b.is_empty());
    }

    #[test]
    fn next_set_wrapping_forward() {
        let mut b = BitSet::new(100);
        b.set(10);
        b.set(50);
        b.set(90);
        assert_eq!(b.next_set_wrapping(0), Some(10));
        assert_eq!(b.next_set_wrapping(10), Some(10));
        assert_eq!(b.next_set_wrapping(11), Some(50));
        assert_eq!(b.next_set_wrapping(51), Some(90));
    }

    #[test]
    fn next_set_wrapping_wraps() {
        let mut b = BitSet::new(100);
        b.set(5);
        assert_eq!(b.next_set_wrapping(50), Some(5));
        assert_eq!(b.next_set_wrapping(6), Some(5));
        assert_eq!(b.next_set_wrapping(5), Some(5));
    }

    #[test]
    fn next_set_wrapping_empty() {
        let b = BitSet::new(64);
        assert_eq!(b.next_set_wrapping(0), None);
    }

    #[test]
    fn next_set_exhaustive_small() {
        // Cross-check against a naive scan for every (pattern, from) on a
        // 2-word set.
        let n = 70;
        for pat in [0usize, 1, 3, 5, 13, 69, 68] {
            let mut b = BitSet::new(n);
            // A deterministic pseudo-pattern.
            for i in 0..n {
                if (i * 7 + pat) % 11 == 0 {
                    b.set(i);
                }
            }
            for from in 0..n {
                let naive = (0..n).map(|k| (from + k) % n).find(|&i| b.get(i));
                assert_eq!(b.next_set_wrapping(from), naive, "pat {pat} from {from}");
            }
        }
    }

    #[test]
    fn arbiter_round_robin_fairness() {
        // All requesting: repeated arbitrate+advance must cycle all ports.
        let mut arb = RoundRobinArbiter::new(8);
        let mut req = BitSet::new(8);
        for i in 0..8 {
            req.set(i);
        }
        let mut order = vec![];
        for _ in 0..8 {
            let g = arb.arbitrate(&req).unwrap();
            order.push(g);
            arb.advance_past(g);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn arbiter_skips_idle_requesters() {
        let mut arb = RoundRobinArbiter::new(8);
        let mut req = BitSet::new(8);
        req.set(3);
        req.set(6);
        assert_eq!(arb.arbitrate(&req), Some(3));
        arb.advance_past(3);
        assert_eq!(arb.arbitrate(&req), Some(6));
        arb.advance_past(6);
        assert_eq!(arb.arbitrate(&req), Some(3), "wraps");
    }

    #[test]
    fn arbiter_none_when_no_requests() {
        let arb = RoundRobinArbiter::new(4);
        let req = BitSet::new(4);
        assert_eq!(arb.arbitrate(&req), None);
    }
}
