//! PIM — Parallel Iterative Matching (Anderson et al.), the randomized
//! ancestor of iSLIP. Included as a baseline: random arbitration needs
//! about log₂N iterations for a maximal match but lacks iSLIP's
//! desynchronization, so it saturates near 63% with a single iteration.

use crate::requests::{Matching, Requests};
use crate::traits::CellScheduler;
use osmosis_sim::SimRng;

/// PIM scheduler with `iterations` iterations.
#[derive(Debug, Clone)]
pub struct Pim {
    occ: Requests,
    iterations: usize,
    out_capacity: usize,
    rng: SimRng,
    in_matched: Vec<bool>,
    out_used: Vec<usize>,
    grants: Vec<Vec<usize>>, // per input: granting outputs this iteration
    scratch: Vec<usize>,
}

impl Pim {
    /// `n × n` PIM with the given iteration count and output capacity.
    pub fn new(n: usize, iterations: usize, out_capacity: usize, seed: u64) -> Self {
        assert!(n > 0 && iterations > 0 && out_capacity > 0);
        Pim {
            occ: Requests::square(n),
            iterations,
            out_capacity,
            rng: SimRng::seed_from_u64(seed),
            in_matched: vec![false; n],
            out_used: vec![0; n],
            grants: vec![Vec::new(); n],
            scratch: Vec::with_capacity(n),
        }
    }
}

impl CellScheduler for Pim {
    fn inputs(&self) -> usize {
        self.occ.inputs()
    }

    fn outputs(&self) -> usize {
        self.occ.outputs()
    }

    fn out_capacity(&self) -> usize {
        self.out_capacity
    }

    fn note_arrival(&mut self, input: usize, output: usize) {
        self.occ.inc(input, output);
    }

    fn tick(&mut self, _slot: u64) -> Matching {
        let n = self.occ.inputs();
        let mut matching = Matching::with_capacity(n);
        self.in_matched.fill(false);
        self.out_used.fill(0);

        for _ in 0..self.iterations {
            for g in &mut self.grants {
                g.clear();
            }
            let mut any = false;
            // Grant: each output with spare capacity picks uniformly among
            // requesting unmatched inputs.
            for o in 0..n {
                let spare = self.out_capacity - self.out_used[o];
                if spare == 0 {
                    continue;
                }
                self.scratch.clear();
                for i in 0..n {
                    if !self.in_matched[i] && self.occ.get(i, o) > 0 {
                        self.scratch.push(i);
                    }
                }
                if self.scratch.is_empty() {
                    continue;
                }
                // Grant up to `spare` distinct inputs at random.
                for _ in 0..spare.min(self.scratch.len()) {
                    let k = self.rng.index(self.scratch.len());
                    let i = self.scratch.swap_remove(k);
                    self.grants[i].push(o);
                    any = true;
                }
            }
            if !any {
                break;
            }
            // Accept: each granted input picks uniformly among its grants.
            for i in 0..n {
                if self.in_matched[i] || self.grants[i].is_empty() {
                    continue;
                }
                let k = self.rng.index(self.grants[i].len());
                let o = self.grants[i][k];
                if self.out_used[o] < self.out_capacity {
                    self.in_matched[i] = true;
                    self.out_used[o] += 1;
                    matching.push(i, o);
                }
            }
        }
        for &(i, o) in matching.pairs() {
            self.occ.dec(i, o);
        }
        matching
    }

    fn name(&self) -> &'static str {
        "PIM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_served() {
        let mut s = Pim::new(8, 1, 1, 1);
        s.note_arrival(2, 6);
        let m = s.tick(0);
        assert_eq!(m.pairs(), &[(2, 6)]);
    }

    #[test]
    fn constraints_hold_under_conflict() {
        let mut s = Pim::new(8, 4, 1, 2);
        let mut shadow = Requests::square(8);
        for i in 0..8 {
            for o in 0..8 {
                s.note_arrival(i, o);
                shadow.inc(i, o);
            }
        }
        let m = s.tick(0);
        m.validate(&shadow, 1).unwrap();
        assert!(
            m.len() >= 6,
            "log2(8)=3 < 4 iterations nearly perfect: {}",
            m.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = Pim::new(8, 2, 1, seed);
            for i in 0..8 {
                s.note_arrival(i, (i * 3) % 8);
                s.note_arrival(i, (i * 5) % 8);
            }
            (0..4).map(|t| s.tick(t)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn single_iteration_pim_saturates_below_iterated() {
        // Saturated uniform traffic: PIM(1) visibly below PIM(4).
        let run = |iters| {
            let n = 16;
            let mut s = Pim::new(n, iters, 1, 3);
            for i in 0..n {
                for o in 0..n {
                    for _ in 0..100 {
                        s.note_arrival(i, o);
                    }
                }
            }
            let slots = 300u64;
            let g: usize = (0..slots).map(|t| s.tick(t).len()).sum();
            g as f64 / (slots as f64 * n as f64)
        };
        let one = run(1);
        let four = run(4);
        assert!(one < four, "{one} vs {four}");
        assert!(one < 0.85, "single-iteration PIM limited: {one}");
        assert!(four > 0.95, "iterated PIM near-perfect: {four}");
    }

    #[test]
    fn dual_capacity_respected() {
        let mut s = Pim::new(4, 3, 2, 9);
        let mut shadow = Requests::square(4);
        for i in 0..4 {
            s.note_arrival(i, 0);
            shadow.inc(i, 0);
        }
        let m = s.tick(0);
        m.validate(&shadow, 2).unwrap();
        assert_eq!(m.len(), 2);
    }
}
