//! VOQ occupancy bookkeeping shared by all schedulers.

/// Per-(input, output) cell counts — the scheduler's view of the Virtual
/// Output Queues at the ingress adapters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requests {
    n_in: usize,
    n_out: usize,
    counts: Vec<u32>,
}

impl Requests {
    /// Empty occupancy for an `n_in` × `n_out` switch.
    pub fn new(n_in: usize, n_out: usize) -> Self {
        assert!(n_in > 0 && n_out > 0);
        Requests {
            n_in,
            n_out,
            counts: vec![0; n_in * n_out],
        }
    }

    /// Square N×N occupancy.
    pub fn square(n: usize) -> Self {
        Self::new(n, n)
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.n_in
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.n_out
    }

    #[inline]
    fn idx(&self, i: usize, o: usize) -> usize {
        debug_assert!(i < self.n_in && o < self.n_out);
        i * self.n_out + o
    }

    /// Cells queued from input `i` to output `o`.
    #[inline]
    pub fn get(&self, i: usize, o: usize) -> u32 {
        self.counts[self.idx(i, o)]
    }

    /// Record one arrival.
    #[inline]
    pub fn inc(&mut self, i: usize, o: usize) {
        let idx = self.idx(i, o);
        self.counts[idx] += 1;
    }

    /// Record one departure. Panics if the queue is empty (a grant for a
    /// non-existent cell indicates a scheduler bug).
    #[inline]
    pub fn dec(&mut self, i: usize, o: usize) {
        let idx = self.idx(i, o);
        assert!(self.counts[idx] > 0, "VOQ({i},{o}) underflow");
        self.counts[idx] -= 1;
    }

    /// Decrement if non-empty; returns whether a cell was present.
    #[inline]
    pub fn try_dec(&mut self, i: usize, o: usize) -> bool {
        let idx = self.idx(i, o);
        if self.counts[idx] > 0 {
            self.counts[idx] -= 1;
            true
        } else {
            false
        }
    }

    /// Reset all counts to zero.
    pub fn clear_all(&mut self) {
        self.counts.fill(0);
    }

    /// Total queued cells.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// True when no cell is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Cells queued at input `i` across all outputs.
    pub fn input_total(&self, i: usize) -> u64 {
        self.counts[i * self.n_out..(i + 1) * self.n_out]
            .iter()
            .map(|&c| c as u64)
            .sum()
    }

    /// Cells queued for output `o` across all inputs.
    pub fn output_total(&self, o: usize) -> u64 {
        (0..self.n_in).map(|i| self.get(i, o) as u64).sum()
    }
}

/// A crossbar configuration for one cell slot: a set of (input, output)
/// grants. An input appears at most once; an output appears at most
/// `out_capacity` times (twice with the dual-receiver datapath).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    pairs: Vec<(usize, usize)>,
}

impl Matching {
    /// Empty matching.
    pub fn new() -> Self {
        Matching { pairs: Vec::new() }
    }

    /// With pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Matching {
            pairs: Vec::with_capacity(cap),
        }
    }

    /// Add a grant.
    pub fn push(&mut self, input: usize, output: usize) {
        self.pairs.push((input, output));
    }

    /// Granted pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of grants.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// No grants at all.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Clear for reuse.
    pub fn clear(&mut self) {
        self.pairs.clear();
    }

    /// Validate the crossbar constraints against an occupancy snapshot:
    /// each input ≤ 1 grant, each output ≤ `out_capacity` grants, and
    /// every granted pair must have a queued cell.
    pub fn validate(&self, occ: &Requests, out_capacity: usize) -> Result<(), String> {
        let mut in_used = vec![false; occ.inputs()];
        let mut out_used = vec![0usize; occ.outputs()];
        let mut granted = std::collections::BTreeMap::new();
        for &(i, o) in &self.pairs {
            if i >= occ.inputs() || o >= occ.outputs() {
                return Err(format!("grant ({i},{o}) out of range"));
            }
            if in_used[i] {
                return Err(format!("input {i} granted twice"));
            }
            in_used[i] = true;
            out_used[o] += 1;
            if out_used[o] > out_capacity {
                return Err(format!("output {o} over capacity {out_capacity}"));
            }
            let g = granted.entry((i, o)).or_insert(0u32);
            *g += 1;
            if *g > occ.get(i, o) {
                return Err(format!("grant ({i},{o}) without a queued cell"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_dec_roundtrip() {
        let mut r = Requests::square(4);
        r.inc(1, 2);
        r.inc(1, 2);
        assert_eq!(r.get(1, 2), 2);
        r.dec(1, 2);
        assert_eq!(r.get(1, 2), 1);
        assert_eq!(r.total(), 1);
        assert!(!r.is_empty());
        assert!(r.try_dec(1, 2));
        assert!(!r.try_dec(1, 2));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn dec_empty_panics() {
        let mut r = Requests::square(2);
        r.dec(0, 0);
    }

    #[test]
    fn row_and_column_totals() {
        let mut r = Requests::new(3, 4);
        r.inc(0, 1);
        r.inc(0, 3);
        r.inc(2, 1);
        assert_eq!(r.input_total(0), 2);
        assert_eq!(r.input_total(1), 0);
        assert_eq!(r.output_total(1), 2);
        assert_eq!(r.output_total(0), 0);
    }

    #[test]
    fn matching_validation_accepts_legal() {
        let mut occ = Requests::square(4);
        occ.inc(0, 1);
        occ.inc(2, 1);
        occ.inc(3, 0);
        let mut m = Matching::new();
        m.push(0, 1);
        m.push(2, 1);
        m.push(3, 0);
        assert!(
            m.validate(&occ, 2).is_ok(),
            "dual receiver allows 2 per output"
        );
        assert!(m.validate(&occ, 1).is_err(), "single receiver rejects it");
    }

    #[test]
    fn matching_validation_rejects_double_input() {
        let mut occ = Requests::square(4);
        occ.inc(0, 1);
        occ.inc(0, 2);
        let mut m = Matching::new();
        m.push(0, 1);
        m.push(0, 2);
        assert!(m.validate(&occ, 2).is_err());
    }

    #[test]
    fn matching_validation_rejects_phantom_cells() {
        let occ = Requests::square(4);
        let mut m = Matching::new();
        m.push(0, 1);
        assert!(m.validate(&occ, 1).is_err());
    }

    #[test]
    fn matching_validation_counts_multiplicity() {
        // Two grants for the same (i,o) need two queued cells — and also
        // violate the one-grant-per-input rule, so check via different
        // inputs first.
        let mut occ = Requests::square(4);
        occ.inc(1, 3);
        let mut m = Matching::new();
        m.push(1, 3);
        assert!(m.validate(&occ, 2).is_ok());
    }
}
