//! The prior-art pipelined arbiter ("previous state of the art" in
//! Fig. 6).
//!
//! Like FLPPR it runs K sub-schedulers, each completing one grant/accept
//! iteration per cell cycle. Unlike FLPPR, every request is assigned to
//! exactly *one* sub-scheduler — the one that just started filling — so a
//! request always waits the full K cycles for its sub-scheduler to issue,
//! giving a fixed log₂N request-to-grant latency even in an idle switch.
//! Throughput at saturation is comparable to FLPPR (each matching still
//! accumulates K iterations); only the low-load latency differs. That
//! contrast *is* Fig. 6.

use crate::requests::{Matching, Requests};
use crate::subsched::SubScheduler;
use crate::traits::CellScheduler;

/// Prior-art pipelined arbiter with exclusive request assignment.
#[derive(Debug, Clone)]
pub struct PipelinedArbiter {
    master: Requests,
    subs: Vec<SubScheduler>,
    out_capacity: usize,
    /// Sub-scheduler currently receiving new requests.
    fill: usize,
    scratch: Matching,
    /// Grants dropped at validation (defensive; exclusive assignment makes
    /// this zero in practice).
    pub stale_grants: u64,
}

impl PipelinedArbiter {
    /// K-deep pipelined arbiter for an `n`-port switch.
    pub fn new(n: usize, depth: usize, out_capacity: usize) -> Self {
        assert!(n > 0 && depth > 0 && out_capacity > 0);
        PipelinedArbiter {
            master: Requests::square(n),
            subs: (0..depth)
                .map(|_| SubScheduler::new(n, out_capacity))
                .collect(),
            out_capacity,
            // Before the first tick, arrivals go to the sub-scheduler that
            // issues at slot depth−1, giving it a full fill window.
            fill: depth - 1,
            scratch: Matching::new(),
            stale_grants: 0,
        }
    }

    /// The canonical configuration: depth log₂N.
    pub fn log2n(n: usize, out_capacity: usize) -> Self {
        let depth = (n.max(2) as f64).log2().ceil() as usize;
        Self::new(n, depth, out_capacity)
    }

    /// Number of pipeline stages.
    pub fn depth(&self) -> usize {
        self.subs.len()
    }

    /// Master occupancy (for tests).
    pub fn occupancy(&self) -> &Requests {
        &self.master
    }
}

impl CellScheduler for PipelinedArbiter {
    fn inputs(&self) -> usize {
        self.master.inputs()
    }

    fn outputs(&self) -> usize {
        self.master.outputs()
    }

    fn out_capacity(&self) -> usize {
        self.out_capacity
    }

    fn note_arrival(&mut self, input: usize, output: usize) {
        self.master.inc(input, output);
        // Exclusive assignment: only the filling sub-scheduler sees it.
        self.subs[self.fill].note_arrival(input, output);
    }

    fn tick(&mut self, slot: u64) -> Matching {
        for s in &mut self.subs {
            s.iterate();
        }
        let k = (slot % self.subs.len() as u64) as usize;
        self.subs[k].take(&mut self.scratch);
        let mut issued = Matching::with_capacity(self.scratch.len());
        for &(i, o) in self.scratch.pairs() {
            if self.master.try_dec(i, o) {
                issued.push(i, o);
                self.subs[k].note_departure(i, o);
            } else {
                self.stale_grants += 1;
            }
        }
        // Residual (unmatched) requests stay in this sub-scheduler's view;
        // it keeps iterating on them and retries at its next issue slot,
        // K cycles later. New arrivals now fill the just-drained stage.
        self.fill = k;
        issued
    }

    fn name(&self) -> &'static str {
        "pipelined-prior-art"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 6's contrast: the lone-cell request-to-grant latency equals
    /// the pipeline depth (log₂N = 6 for 64 ports).
    #[test]
    fn lone_cell_waits_full_pipeline_depth() {
        let mut s = PipelinedArbiter::log2n(64, 1);
        assert_eq!(s.depth(), 6);
        s.tick(0);
        s.note_arrival(17, 42);
        // The cell was assigned to the sub-scheduler that issues at slot
        // 0 mod 6 — i.e. next at slot 6.
        let mut grant_slot = None;
        for t in 1..=12 {
            let m = s.tick(t);
            if !m.is_empty() {
                assert_eq!(m.pairs(), &[(17, 42)]);
                grant_slot = Some(t);
                break;
            }
        }
        assert_eq!(grant_slot, Some(6), "grant after log2(64) = 6 cycles");
    }

    #[test]
    fn grant_latency_is_depth_for_every_phase() {
        for phase in 0..6u64 {
            let mut s = PipelinedArbiter::log2n(64, 1);
            for t in 0..=phase {
                s.tick(t);
            }
            s.note_arrival(1, 2);
            let mut waited = 0;
            for t in (phase + 1)..(phase + 20) {
                waited += 1;
                if !s.tick(t).is_empty() {
                    break;
                }
            }
            assert_eq!(waited, 6, "phase {phase}");
        }
    }

    #[test]
    fn conservation_under_backlog() {
        let mut s = PipelinedArbiter::new(8, 3, 1);
        let mut injected = 0u64;
        for i in 0..8 {
            for o in 0..8 {
                for _ in 0..4 {
                    s.note_arrival(i, o);
                    injected += 1;
                }
            }
        }
        let mut served = 0u64;
        for t in 0..400 {
            served += s.tick(t).len() as u64;
        }
        assert_eq!(served, injected);
        assert!(s.occupancy().is_empty());
    }

    #[test]
    fn high_load_throughput_comparable_to_flppr() {
        // Live arrivals at 85% load (arrivals interleave with ticks, so
        // requests spread across the pipeline's fill phases).
        use osmosis_sim::SimRng;
        let n = 16;
        let mut s = PipelinedArbiter::log2n(n, 1);
        let mut rng = SimRng::seed_from_u64(42);
        let slots = 4000u64;
        let mut offered = 0u64;
        let mut granted = 0u64;
        for t in 0..slots {
            granted += s.tick(t).len() as u64;
            for i in 0..n {
                if rng.coin(0.85) {
                    s.note_arrival(i, rng.index(n));
                    offered += 1;
                }
            }
        }
        let thr = granted as f64 / (slots as f64 * n as f64);
        let load = offered as f64 / (slots as f64 * n as f64);
        assert!(thr > load - 0.05, "throughput {thr} vs offered {load}");
    }

    #[test]
    fn no_phantom_grants() {
        let mut s = PipelinedArbiter::new(8, 4, 1);
        let mut shadow = Requests::square(8);
        for i in 0..8 {
            s.note_arrival(i, (i * 3) % 8);
            shadow.inc(i, (i * 3) % 8);
        }
        for t in 0..30 {
            let m = s.tick(t);
            m.validate(&shadow, 1).unwrap();
            for &(i, o) in m.pairs() {
                shadow.dec(i, o);
            }
        }
        assert!(shadow.is_empty());
    }
}
