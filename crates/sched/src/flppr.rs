//! FLPPR — Fast Low-latency Parallel Pipelined aRbitration (ref. [22],
//! the paper's key scheduler novelty).
//!
//! The problem: good matchings need ≈log₂N grant/accept iterations, but at
//! 51.2 ns per cell a hardware arbiter completes only *one* iteration per
//! cell cycle. Classic pipelined arbiters therefore spread each matching
//! over K = log₂N cycles — which makes *every* cell wait K cycles between
//! request and grant, even in an empty switch (see
//! [`crate::pipelined::PipelinedArbiter`]).
//!
//! FLPPR runs K sub-schedulers *in parallel*: every incoming request is
//! forwarded to all of them, each accumulates its own matching one
//! iteration per cycle, and sub-scheduler k issues the crossbar
//! configuration for cycles with `t mod K == k`. A newly arrived cell is
//! therefore picked up by the sub-scheduler issuing *next* — a
//! request-to-grant latency of a single cell cycle at low load (Fig. 6) —
//! while under saturation each issued matching still benefited from K
//! accumulated iterations, preserving high throughput. When one
//! sub-scheduler's grant consumes a cell, the duplicate request is removed
//! from the other K−1 views; grants are re-validated against the master
//! VOQ state at issue time so no phantom cell is ever launched.

use crate::requests::{Matching, Requests};
use crate::subsched::SubScheduler;
use crate::traits::CellScheduler;

/// The FLPPR scheduler.
#[derive(Debug, Clone)]
pub struct Flppr {
    /// Ground truth of the ingress VOQ occupancy.
    master: Requests,
    subs: Vec<SubScheduler>,
    out_capacity: usize,
    /// Per-output effective capacity under fault masking.
    out_cap: Vec<usize>,
    /// Per-slot issue counts, used only while masked.
    out_issued: Vec<usize>,
    /// Whether any output is currently degraded (fast-path gate: the
    /// unmasked tick does zero extra work).
    masked: bool,
    scratch: Matching,
    /// Grants dropped at validation because another sub-scheduler already
    /// served the cell (diagnostic).
    pub stale_grants: u64,
    /// Grants withheld at issue time because fault masking had removed
    /// the egress capacity; the cell stays queued and is re-granted once
    /// the output heals (diagnostic).
    pub masked_grants: u64,
}

impl Flppr {
    /// FLPPR for an `n`-port switch with `depth` parallel sub-schedulers
    /// and `out_capacity` receivers per output.
    pub fn new(n: usize, depth: usize, out_capacity: usize) -> Self {
        assert!(n > 0 && depth > 0 && out_capacity > 0);
        Flppr {
            master: Requests::square(n),
            subs: (0..depth)
                .map(|_| SubScheduler::new(n, out_capacity))
                .collect(),
            out_capacity,
            out_cap: vec![out_capacity; n],
            out_issued: vec![0; n],
            masked: false,
            scratch: Matching::new(),
            stale_grants: 0,
            masked_grants: 0,
        }
    }

    /// The demonstrator configuration: depth log₂N (6 for 64 ports), so
    /// each issued matching accumulated log₂N iterations — the iteration
    /// count ref. [17] calls for.
    pub fn osmosis(n: usize, out_capacity: usize) -> Self {
        let depth = (n.max(2) as f64).log2().ceil() as usize;
        Self::new(n, depth, out_capacity)
    }

    /// Number of parallel sub-schedulers.
    pub fn depth(&self) -> usize {
        self.subs.len()
    }

    /// The master occupancy view (for tests).
    pub fn occupancy(&self) -> &Requests {
        &self.master
    }
}

impl CellScheduler for Flppr {
    fn inputs(&self) -> usize {
        self.master.inputs()
    }

    fn outputs(&self) -> usize {
        self.master.outputs()
    }

    fn out_capacity(&self) -> usize {
        self.out_capacity
    }

    fn note_arrival(&mut self, input: usize, output: usize) {
        self.master.inc(input, output);
        // The novelty: the request goes to *all* sub-schedulers.
        for s in &mut self.subs {
            s.note_arrival(input, output);
        }
    }

    fn tick(&mut self, slot: u64) -> Matching {
        // Every sub-scheduler advances its matching by one iteration —
        // this is the per-cycle hardware work.
        for s in &mut self.subs {
            s.iterate();
        }
        // The sub-scheduler owning this slot issues its matching.
        let k = (slot % self.subs.len() as u64) as usize;
        self.subs[k].take(&mut self.scratch);
        let mut issued = Matching::with_capacity(self.scratch.len());
        if self.masked {
            self.out_issued.iter_mut().for_each(|c| *c = 0);
        }
        for &(i, o) in self.scratch.pairs() {
            // Under fault masking, re-check the effective capacity at
            // issue time: the sub-scheduler may have accumulated this
            // pair before the output degraded. The request survives in
            // every view, so the cell is re-granted after repair.
            if self.masked && self.out_issued[o] >= self.out_cap[o] {
                self.masked_grants += 1;
                continue;
            }
            // Validate against the master: the cell may have been served
            // by another sub-scheduler in the meantime.
            if self.master.try_dec(i, o) {
                if self.masked {
                    self.out_issued[o] += 1;
                }
                issued.push(i, o);
                // Remove the duplicate request everywhere.
                for s in &mut self.subs {
                    s.note_departure(i, o);
                }
            } else {
                self.stale_grants += 1;
            }
        }
        issued
    }

    fn set_output_capacity(&mut self, output: usize, cap: usize) {
        let cap = cap.min(self.out_capacity);
        if self.out_cap[output] == cap {
            return;
        }
        self.out_cap[output] = cap;
        self.masked = self.out_cap.iter().any(|&c| c < self.out_capacity);
        for s in &mut self.subs {
            s.set_output_capacity(output, cap);
        }
    }

    fn output_capacity(&self, output: usize) -> usize {
        self.out_cap[output]
    }

    fn name(&self) -> &'static str {
        "FLPPR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single cell into an idle switch: granted at the very next tick —
    /// the Fig. 6 headline behaviour.
    #[test]
    fn lone_cell_granted_in_one_cycle() {
        let mut s = Flppr::osmosis(64, 1);
        assert_eq!(s.depth(), 6);
        // Arrival lands between tick(i) and tick(i+1).
        s.tick(0);
        s.note_arrival(17, 42);
        let m = s.tick(1);
        assert_eq!(m.pairs(), &[(17, 42)], "granted one cycle after request");
    }

    #[test]
    fn lone_cell_granted_next_cycle_from_any_phase() {
        // The property must hold regardless of which sub-scheduler issues
        // next (the pipeline phase at arrival time).
        for phase in 0..6u64 {
            let mut s = Flppr::osmosis(64, 1);
            for t in 0..=phase {
                assert!(s.tick(t).is_empty());
            }
            s.note_arrival(3, 9);
            let m = s.tick(phase + 1);
            assert_eq!(m.pairs(), &[(3, 9)], "phase {phase}");
        }
    }

    #[test]
    fn no_phantom_grants_under_duplication() {
        // One cell, many sub-schedulers all match it; only one grant may
        // fire and the rest must be dropped as stale.
        let mut s = Flppr::new(8, 4, 1);
        s.note_arrival(2, 5);
        let mut granted = 0;
        for t in 0..8 {
            granted += s.tick(t).len();
        }
        assert_eq!(granted, 1, "exactly one grant for one cell");
        assert_eq!(
            s.stale_grants, 0,
            "duplicate removal must strip the copies before they issue"
        );
        assert!(s.occupancy().is_empty());
    }

    #[test]
    fn grants_respect_crossbar_constraints() {
        let mut s = Flppr::new(8, 3, 1);
        let mut shadow = Requests::square(8);
        for i in 0..8 {
            for o in 0..8 {
                if (i + o) % 2 == 0 {
                    s.note_arrival(i, o);
                    shadow.inc(i, o);
                }
            }
        }
        for t in 0..20 {
            let m = s.tick(t);
            m.validate(&shadow, 1).unwrap();
            for &(i, o) in m.pairs() {
                shadow.dec(i, o);
            }
        }
    }

    #[test]
    fn conservation_all_cells_eventually_served() {
        let mut s = Flppr::new(8, 3, 1);
        let mut injected = 0u64;
        for i in 0..8 {
            for o in 0..8 {
                for _ in 0..5 {
                    s.note_arrival(i, o);
                    injected += 1;
                }
            }
        }
        let mut served = 0u64;
        for t in 0..200 {
            served += s.tick(t).len() as u64;
        }
        assert_eq!(served, injected, "work conservation");
        assert!(s.occupancy().is_empty());
    }

    #[test]
    fn saturated_uniform_throughput_is_high() {
        // Table 1: sustained throughput > 95%. Saturate all VOQs and
        // measure grant rate.
        let n = 16;
        let mut s = Flppr::osmosis(n, 1);
        for i in 0..n {
            for o in 0..n {
                for _ in 0..80 {
                    s.note_arrival(i, o);
                }
            }
        }
        let slots = 400u64;
        let granted: usize = (0..slots).map(|t| s.tick(t).len()).sum();
        let thr = granted as f64 / (slots as f64 * n as f64);
        assert!(thr > 0.95, "throughput {thr}");
    }

    #[test]
    fn dual_receiver_serves_hot_output_twice_per_slot() {
        let mut s = Flppr::new(8, 3, 2);
        for i in 0..8 {
            for _ in 0..6 {
                s.note_arrival(i, 0);
            }
        }
        // 48 cells for output 0; with 2 receivers the drain rate is 2/slot
        // once the pipeline is warm.
        let mut drained = 0;
        for t in 0..30 {
            let m = s.tick(t);
            assert!(m.len() <= 2);
            drained += m.len();
        }
        assert_eq!(drained, 48);
    }

    #[test]
    fn depth_one_is_immediate_islip_like() {
        let mut s = Flppr::new(4, 1, 1);
        s.note_arrival(0, 1);
        let m = s.tick(0);
        assert_eq!(m.pairs(), &[(0, 1)]);
    }

    #[test]
    fn masked_output_receives_no_grants_until_repair() {
        let mut s = Flppr::new(8, 3, 1);
        for i in 0..8 {
            s.note_arrival(i, 0);
            s.note_arrival(i, 1);
        }
        s.set_output_capacity(0, 0);
        let mut to_dead = 0usize;
        let mut to_live = 0usize;
        for t in 0..40 {
            for &(_, o) in s.tick(t).pairs() {
                if o == 0 {
                    to_dead += 1;
                } else {
                    to_live += 1;
                }
            }
        }
        assert_eq!(to_dead, 0, "dead output must receive nothing");
        assert_eq!(to_live, 8, "surviving output drains normally");
        assert_eq!(s.occupancy().total(), 8, "masked cells stay queued");
        // Repair: the withheld cells drain with no loss.
        s.set_output_capacity(0, 1);
        let mut drained = 0usize;
        for t in 40..120 {
            drained += s.tick(t).len();
        }
        assert_eq!(drained, 8, "every masked cell served after repair");
        assert!(s.occupancy().is_empty());
    }

    #[test]
    fn receiver_failover_halves_hot_output_drain_rate() {
        let mut s = Flppr::new(8, 3, 2);
        for i in 0..8 {
            for _ in 0..6 {
                s.note_arrival(i, 0);
            }
        }
        // One of the two burst-mode receivers dies: drain rate must drop
        // to at most one cell per slot, but service continues.
        s.set_output_capacity(0, 1);
        let mut drained = 0;
        for t in 0..60 {
            let m = s.tick(t);
            assert!(m.len() <= 1, "failover caps grants at one per slot");
            drained += m.len();
        }
        assert_eq!(drained, 48, "all cells served through the survivor");
    }

    #[test]
    fn unmasked_behaviour_is_unchanged_by_the_masking_machinery() {
        // Degrade then fully repair before any traffic: the subsequent
        // grant sequence must equal a scheduler that was never touched.
        let run = |touch: bool| {
            let mut s = Flppr::new(8, 3, 1);
            if touch {
                s.set_output_capacity(2, 0);
                s.set_output_capacity(2, 1);
            }
            let mut grants = Vec::new();
            for i in 0..8 {
                for o in 0..8 {
                    if (i * 3 + o) % 2 == 0 {
                        s.note_arrival(i, o);
                    }
                }
            }
            for t in 0..50 {
                grants.extend(s.tick(t).pairs().to_vec());
            }
            grants
        };
        assert_eq!(run(false), run(true));
    }
}
