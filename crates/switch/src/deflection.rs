//! Deflection routing — the Data Vortex approach (§II, ref. [10]).
//!
//! "The Data Vortex project specifically targets HPC interconnect and
//! uses SOA technology. Switch contention is resolved by deflection
//! routing, keeping the packets in the optical domain. The architecture
//! can scale to very high port counts but has **limited throughput per
//! port**."
//!
//! The model: a bufferless single-stage switch with recirculating delay
//! lines. Each slot, every live cell contends for its destination output;
//! one winner per output is delivered, the losers are *deflected* into a
//! fiber delay loop and retry next slot. Because the loop re-injection
//! ports share capacity with fresh traffic, injection is **blocked** when
//! the recirculation ring is full at that input — which is exactly how
//! the per-port throughput gets capped, and why deflection architectures
//! deliver out of order (a deflected cell falls behind its successors).

use crate::cell::Cell;
use crate::voq_switch::{RunConfig, SwitchReport};
use osmosis_sim::rng::SimRng;
use osmosis_sim::stats::Histogram;
use osmosis_traffic::{SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Deflection-routing switch with recirculation loops.
pub struct DeflectionSwitch {
    n: usize,
    /// Cells a recirculation loop can hold per input.
    loop_capacity: usize,
    /// Recirculating cells per input.
    loops: Vec<VecDeque<Cell>>,
    rng: SimRng,
    stamper: SequenceStamper,
    next_id: u64,
}

impl DeflectionSwitch {
    /// An `n`-port deflection switch with the given per-input loop depth.
    pub fn new(n: usize, loop_capacity: usize, seed: u64) -> Self {
        assert!(n > 0 && loop_capacity >= 1);
        DeflectionSwitch {
            n,
            loop_capacity,
            loops: (0..n).map(|_| VecDeque::new()).collect(),
            rng: SimRng::seed_from_u64(seed),
            stamper: SequenceStamper::new(),
            next_id: 0,
        }
    }

    /// Run traffic and report. Arrivals that find their input's loop full
    /// are counted as blocked injections (reported via `dropped` — the
    /// host must retry, which is the throughput limitation in action; no
    /// accepted cell is ever lost).
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: RunConfig) -> SwitchReport {
        assert_eq!(traffic.ports(), self.n);
        let n = self.n;
        let total = cfg.warmup_slots + cfg.measure_slots;
        let mut delay_hist = Histogram::new(1.0, 65_536);
        let mut checker = SequenceChecker::new();
        let (mut injected, mut delivered, mut blocked) = (0u64, 0u64, 0u64);
        let mut max_loop = 0usize;
        let mut arrivals = Vec::with_capacity(n);
        let mut contenders: Vec<Vec<usize>> = vec![Vec::new(); n];

        for t in 0..total {
            let measuring = t >= cfg.warmup_slots;

            // Contention: the head cell of every loop fights for its
            // destination; one random winner per output is delivered,
            // losers recirculate (deflection).
            for c in contenders.iter_mut() {
                c.clear();
            }
            for (i, l) in self.loops.iter().enumerate() {
                if let Some(head) = l.front() {
                    contenders[head.dst].push(i);
                }
            }
            for o in 0..n {
                if contenders[o].is_empty() {
                    continue;
                }
                let k = self.rng.index(contenders[o].len());
                let winner = contenders[o][k];
                let cell = self.loops[winner].pop_front().unwrap();
                checker.record(cell.src, cell.dst, cell.seq);
                if measuring {
                    delivered += 1;
                    if cell.inject_slot >= cfg.warmup_slots {
                        delay_hist.record((t - cell.inject_slot) as f64);
                    }
                }
                // Losers: rotate to the back of their loop — they lost a
                // slot in the ring (the deflection penalty).
                for &loser in contenders[o].iter().filter(|&&i| i != winner) {
                    let c = self.loops[loser].pop_front().unwrap();
                    self.loops[loser].push_back(c);
                }
            }

            // Fresh arrivals: blocked when the loop has no room — the
            // "limited throughput per port" mechanism.
            arrivals.clear();
            traffic.arrivals(t, &mut arrivals);
            for a in &arrivals {
                if self.loops[a.src].len() >= self.loop_capacity {
                    if measuring {
                        blocked += 1;
                    }
                    continue;
                }
                let seq = self.stamper.stamp(a.src, a.dst);
                let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, t);
                self.next_id += 1;
                if measuring {
                    injected += 1;
                }
                self.loops[a.src].push_back(cell);
                max_loop = max_loop.max(self.loops[a.src].len());
            }
        }

        let denom = cfg.measure_slots as f64 * n as f64;
        SwitchReport {
            offered_load: (injected + blocked) as f64 / denom,
            throughput: delivered as f64 / denom,
            mean_delay: delay_hist.mean(),
            p99_delay: delay_hist.quantile(0.99),
            mean_request_grant: 0.0,
            injected,
            delivered,
            dropped: blocked,
            reordered: checker.reordered(),
            max_voq_depth: max_loop,
            max_egress_depth: 0,
            delay_hist,
            grant_hist: Histogram::new(1.0, 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> RunConfig {
        RunConfig {
            warmup_slots: 2_000,
            measure_slots: 10_000,
        }
    }

    #[test]
    fn light_load_flows_with_low_latency() {
        let mut sw = DeflectionSwitch::new(16, 4, 7);
        let mut tr = BernoulliUniform::new(16, 0.1, &SeedSequence::new(1));
        let r = sw.run(&mut tr, cfg());
        assert!((r.throughput - 0.1).abs() < 0.02);
        assert!(r.mean_delay < 2.0, "{}", r.mean_delay);
        assert_eq!(r.dropped, 0, "no blocking at light load");
    }

    #[test]
    fn throughput_per_port_is_limited_at_high_load() {
        // §II's critique: offered 95%, carried substantially less — the
        // deflection ring saturates and blocks injections.
        let mut sw = DeflectionSwitch::new(16, 4, 7);
        let mut tr = BernoulliUniform::new(16, 0.95, &SeedSequence::new(2));
        let r = sw.run(&mut tr, cfg());
        assert!(
            r.throughput < 0.85,
            "deflection must cap throughput: {}",
            r.throughput
        );
        assert!(r.dropped > 0, "injection blocking is the mechanism");
    }

    #[test]
    fn deflection_reorders_flows() {
        // A deflected cell falls behind its younger siblings → the
        // architecture cannot keep Table 1's ordering requirement
        // without an (expensive) resequencer.
        let mut sw = DeflectionSwitch::new(16, 8, 7);
        let mut tr = BernoulliUniform::new(16, 0.7, &SeedSequence::new(3));
        let r = sw.run(&mut tr, cfg());
        assert!(r.reordered > 0, "deflection must reorder under load");
    }

    #[test]
    fn osmosis_beats_deflection_at_high_load() {
        use crate::voq_switch::run_uniform;
        use osmosis_sched::Flppr;
        let mut sw = DeflectionSwitch::new(16, 4, 7);
        let mut tr = BernoulliUniform::new(16, 0.9, &SeedSequence::new(4));
        let defl = sw.run(&mut tr, cfg());
        let osmo = run_uniform(|| Box::new(Flppr::osmosis(16, 2)), 0.9, 4, cfg());
        assert!(osmo.throughput > defl.throughput + 0.05);
        assert_eq!(osmo.reordered, 0);
    }
}
