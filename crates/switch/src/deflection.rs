//! Deflection routing — the Data Vortex approach (§II, ref. [10]).
//!
//! "The Data Vortex project specifically targets HPC interconnect and
//! uses SOA technology. Switch contention is resolved by deflection
//! routing, keeping the packets in the optical domain. The architecture
//! can scale to very high port counts but has **limited throughput per
//! port**."
//!
//! The model: a bufferless single-stage switch with recirculating delay
//! lines. Each slot, every live cell contends for its destination output;
//! one winner per output is delivered, the losers are *deflected* into a
//! fiber delay loop and retry next slot. Because the loop re-injection
//! ports share capacity with fresh traffic, injection is **blocked** when
//! the recirculation ring is full at that input — which is exactly how
//! the per-port throughput gets capped, and why deflection architectures
//! deliver out of order (a deflected cell falls behind its successors).

use crate::cell::Cell;
use crate::driven::{run_switch, CellSwitch};
use osmosis_sim::audit::DropReason;
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_sim::rng::SimRng;
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Deflection-routing switch with recirculation loops.
pub struct DeflectionSwitch {
    n: usize,
    /// Cells a recirculation loop can hold per input.
    loop_capacity: usize,
    /// Recirculating cells per input.
    loops: Vec<VecDeque<Cell>>,
    rng: SimRng,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    contenders: Vec<Vec<usize>>,
}

impl DeflectionSwitch {
    /// An `n`-port deflection switch with the given per-input loop depth.
    pub fn new(n: usize, loop_capacity: usize, seed: u64) -> Self {
        assert!(n > 0 && loop_capacity >= 1);
        DeflectionSwitch {
            n,
            loop_capacity,
            loops: (0..n).map(|_| VecDeque::new()).collect(),
            rng: SimRng::seed_from_u64(seed),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            contenders: vec![Vec::new(); n],
        }
    }

    /// Run traffic and report. Arrivals that find their input's loop full
    /// are counted as blocked injections (reported via `dropped` — the
    /// host must retry, which is the throughput limitation in action; no
    /// accepted cell is ever lost).
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for DeflectionSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, _cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
    }

    fn arbitrate<T: TraceSink>(&mut self, _slot: u64, obs: &mut Observer<'_, T>) {
        // Contention: the head cell of every loop fights for its
        // destination; one random winner per output is delivered, losers
        // recirculate (deflection). Delivery is immediate — the winner
        // leaves in the same slot — so the whole contest lives here and
        // the deliver phase is empty.
        for c in self.contenders.iter_mut() {
            c.clear();
        }
        for (i, l) in self.loops.iter().enumerate() {
            if let Some(head) = l.front() {
                self.contenders[head.dst].push(i);
            }
        }
        for o in 0..self.n {
            if self.contenders[o].is_empty() {
                continue;
            }
            if self.contenders[o].len() > 1 {
                obs.receiver_conflict(o, self.contenders[o].len());
            }
            let k = self.rng.index(self.contenders[o].len());
            let winner = self.contenders[o][k];
            let cell = self.loops[winner]
                .pop_front()
                // lint:allow(panic-free): contenders are collected from
                // non-empty ring slots this same arbitration pass
                .expect("contender with an empty loop queue");
            self.checker.record(cell.src, cell.dst, cell.seq);
            obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
            // Losers: rotate to the back of their loop — they lost a slot
            // in the ring (the deflection penalty).
            for idx in 0..self.contenders[o].len() {
                let loser = self.contenders[o][idx];
                if loser != winner {
                    if let Some(c) = self.loops[loser].pop_front() {
                        self.loops[loser].push_back(c);
                    }
                }
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, _slot: u64, _obs: &mut Observer<'_, T>) {}

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        // Fresh arrivals: blocked when the loop has no room — the
        // "limited throughput per port" mechanism.
        for a in arrivals {
            if self.loops[a.src].len() >= self.loop_capacity {
                // The arrival never entered the ring: a rejection, not a
                // loss of an admitted cell (the host retries).
                obs.cell_dropped_for(a.src, DropReason::Rejected);
                continue;
            }
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            self.loops[a.src].push_back(cell);
            obs.note_queue_depth(self.loops[a.src].len());
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }

    fn resident_cells(&self) -> Option<u64> {
        Some(self.loops.iter().map(VecDeque::len).sum::<usize>() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> EngineConfig {
        EngineConfig::new(2_000, 10_000)
    }

    #[test]
    fn light_load_flows_with_low_latency() {
        let mut sw = DeflectionSwitch::new(16, 4, 7);
        let mut tr = BernoulliUniform::new(16, 0.1, &SeedSequence::new(1));
        let r = sw.run(&mut tr, &cfg());
        assert!((r.throughput - 0.1).abs() < 0.02);
        assert!(r.mean_delay < 2.0, "{}", r.mean_delay);
        assert_eq!(r.dropped, 0, "no blocking at light load");
    }

    #[test]
    fn throughput_per_port_is_limited_at_high_load() {
        // §II's critique: offered 95%, carried substantially less — the
        // deflection ring saturates and blocks injections.
        let mut sw = DeflectionSwitch::new(16, 4, 7);
        let mut tr = BernoulliUniform::new(16, 0.95, &SeedSequence::new(2));
        let r = sw.run(&mut tr, &cfg());
        assert!(
            r.throughput < 0.85,
            "deflection must cap throughput: {}",
            r.throughput
        );
        assert!(r.dropped > 0, "injection blocking is the mechanism");
    }

    #[test]
    fn deflection_reorders_flows() {
        // A deflected cell falls behind its younger siblings → the
        // architecture cannot keep Table 1's ordering requirement
        // without an (expensive) resequencer.
        let mut sw = DeflectionSwitch::new(16, 8, 7);
        let mut tr = BernoulliUniform::new(16, 0.7, &SeedSequence::new(3));
        let r = sw.run(&mut tr, &cfg());
        assert!(r.reordered > 0, "deflection must reorder under load");
    }

    #[test]
    fn osmosis_beats_deflection_at_high_load() {
        use crate::voq_switch::run_uniform;
        use osmosis_sched::Flppr;
        let mut sw = DeflectionSwitch::new(16, 4, 7);
        let mut tr = BernoulliUniform::new(16, 0.9, &SeedSequence::new(4));
        let defl = sw.run(&mut tr, &cfg());
        let osmo = run_uniform(|| Box::new(Flppr::osmosis(16, 2)), 0.9, &cfg().with_seed(4));
        assert!(osmo.throughput > defl.throughput + 0.05);
        assert_eq!(osmo.reordered, 0);
    }
}
