//! The fixed-size cell — OSMOSIS's unit of switching (§V: 256-byte cells,
//! 51.2 ns cycle at 40 Gb/s).

pub use osmosis_traffic::Class;

/// One cell in flight through a switch or fabric simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Globally unique id (diagnostics).
    pub id: u64,
    /// Source port at the fabric edge.
    pub src: usize,
    /// Destination port at the fabric edge.
    pub dst: usize,
    /// Control or data.
    pub class: Class,
    /// Per-(src,dst) flow sequence number for ordering verification.
    pub seq: u64,
    /// Slot in which the cell entered the ingress VOQ.
    pub inject_slot: u64,
    /// Slot in which the central scheduler granted the cell (filled when
    /// it crosses the crossbar; u64::MAX until then).
    pub grant_slot: u64,
}

impl Cell {
    /// A new cell, not yet granted.
    pub fn new(id: u64, src: usize, dst: usize, class: Class, seq: u64, inject_slot: u64) -> Self {
        Cell {
            id,
            src,
            dst,
            class,
            seq,
            inject_slot,
            grant_slot: u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_cell_is_ungranted() {
        let c = Cell::new(1, 2, 3, Class::Data, 0, 10);
        assert_eq!(c.grant_slot, u64::MAX);
        assert_eq!(c.inject_slot, 10);
    }
}
