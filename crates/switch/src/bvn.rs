//! The load-balanced Birkhoff–von Neumann switch (§VI.D, ref. [24]) —
//! the scalable-but-unsuitable baseline.
//!
//! A space-time-space architecture with *distributed* scheduling: the
//! first stage walks a deterministic round-robin pattern that shapes any
//! admissible traffic into uniform traffic; the middle holds the buffers;
//! the second stage walks the same deterministic pattern toward the
//! outputs. No central scheduler at all — which is why it scales — but,
//! as the paper notes, it is unattractive for HPC: an unloaded N-port
//! switch still averages ≈N/2 packet cycles of latency (a cell must wait
//! for the rotation to reach its output) and packets of one flow take
//! different middle ports, arriving out of order.

use crate::cell::Cell;
use crate::voq_switch::{RunConfig, SwitchReport};
use osmosis_sim::stats::Histogram;
use osmosis_traffic::{SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// The two-stage load-balanced BvN switch.
pub struct BvnSwitch {
    n: usize,
    /// Middle-stage VOQs: `mid[m * n + o]`.
    mid: Vec<VecDeque<Cell>>,
    stamper: SequenceStamper,
    next_id: u64,
}

impl BvnSwitch {
    /// An `n`-port BvN switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        BvnSwitch {
            n,
            mid: (0..n * n).map(|_| VecDeque::new()).collect(),
            stamper: SequenceStamper::new(),
            next_id: 0,
        }
    }

    /// Run traffic and report.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: RunConfig) -> SwitchReport {
        assert_eq!(traffic.ports(), self.n);
        let n = self.n as u64;
        let total = cfg.warmup_slots + cfg.measure_slots;
        let mut delay_hist = Histogram::new(1.0, 16_384);
        let mut checker = SequenceChecker::new();
        let (mut injected, mut delivered) = (0u64, 0u64);
        let mut max_mid = 0usize;
        let mut arrivals = Vec::with_capacity(self.n);

        for t in 0..total {
            let measuring = t >= cfg.warmup_slots;

            // Stage 2: middle m → output (m + t) mod N; deliver the head
            // cell of the matching middle VOQ straight to the host.
            for m in 0..self.n {
                let o = ((m as u64 + t) % n) as usize;
                let q = &mut self.mid[m * self.n + o];
                max_mid = max_mid.max(q.len());
                if let Some(cell) = q.pop_front() {
                    checker.record(cell.src, cell.dst, cell.seq);
                    if measuring {
                        delivered += 1;
                        if cell.inject_slot >= cfg.warmup_slots {
                            delay_hist.record((t - cell.inject_slot) as f64);
                        }
                    }
                }
            }

            // Stage 1: input i → middle (i + t) mod N; arriving cells are
            // spread over the middles by the rotation itself.
            arrivals.clear();
            traffic.arrivals(t, &mut arrivals);
            for a in &arrivals {
                let seq = self.stamper.stamp(a.src, a.dst);
                let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, t);
                self.next_id += 1;
                if measuring {
                    injected += 1;
                }
                let m = ((a.src as u64 + t) % n) as usize;
                self.mid[m * self.n + a.dst].push_back(cell);
            }
        }

        let denom = cfg.measure_slots as f64 * self.n as f64;
        SwitchReport {
            offered_load: injected as f64 / denom,
            throughput: delivered as f64 / denom,
            mean_delay: delay_hist.mean(),
            p99_delay: delay_hist.quantile(0.99),
            mean_request_grant: 0.0,
            injected,
            delivered,
            dropped: 0,
            reordered: checker.reordered(),
            max_voq_depth: max_mid,
            max_egress_depth: 0,
            delay_hist,
            grant_hist: Histogram::new(1.0, 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> RunConfig {
        RunConfig {
            warmup_slots: 1_000,
            measure_slots: 10_000,
        }
    }

    #[test]
    fn unloaded_latency_is_about_n_over_2() {
        // §VI.D: "high average switching latency of N/2 packets for an
        // unloaded N-port switch".
        for n in [16usize, 32] {
            let mut sw = BvnSwitch::new(n);
            let mut tr = BernoulliUniform::new(n, 0.02, &SeedSequence::new(1));
            let r = sw.run(&mut tr, cfg());
            let expect = n as f64 / 2.0;
            assert!(
                (r.mean_delay - expect).abs() < expect * 0.15,
                "n={n}: delay {} vs ≈{expect}",
                r.mean_delay
            );
        }
    }

    #[test]
    fn delivers_out_of_order() {
        // §VI.D: "out-of-order packet delivery" — the other disqualifier.
        let mut sw = BvnSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 0.7, &SeedSequence::new(2));
        let r = sw.run(&mut tr, cfg());
        assert!(
            r.reordered > 0,
            "BvN must reorder under load (got {})",
            r.reordered
        );
    }

    #[test]
    fn scalable_throughput_without_a_scheduler() {
        // Its merit: full throughput under uniform traffic, no scheduler.
        let mut sw = BvnSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 0.95, &SeedSequence::new(3));
        let r = sw.run(&mut tr, cfg());
        assert!((r.throughput - 0.95).abs() < 0.02, "{}", r.throughput);
        assert_eq!(r.dropped, 0);
    }
}
