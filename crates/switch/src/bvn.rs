//! The load-balanced Birkhoff–von Neumann switch (§VI.D, ref. [24]) —
//! the scalable-but-unsuitable baseline.
//!
//! A space-time-space architecture with *distributed* scheduling: the
//! first stage walks a deterministic round-robin pattern that shapes any
//! admissible traffic into uniform traffic; the middle holds the buffers;
//! the second stage walks the same deterministic pattern toward the
//! outputs. No central scheduler at all — which is why it scales — but,
//! as the paper notes, it is unattractive for HPC: an unloaded N-port
//! switch still averages ≈N/2 packet cycles of latency (a cell must wait
//! for the rotation to reach its output) and packets of one flow take
//! different middle ports, arriving out of order.

use crate::cell::Cell;
use crate::driven::{run_switch, CellSwitch};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// The two-stage load-balanced BvN switch.
pub struct BvnSwitch {
    n: usize,
    /// Middle-stage VOQs: `mid[m * n + o]`.
    mid: Vec<VecDeque<Cell>>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
}

impl BvnSwitch {
    /// An `n`-port BvN switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        BvnSwitch {
            n,
            mid: (0..n * n).map(|_| VecDeque::new()).collect(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
        }
    }

    /// Run traffic and report.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for BvnSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, _cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
    }

    // Stage 2 delivers straight from the middle buffers to the hosts, so
    // the whole transfer lives in the delivery phase; there is no
    // arbitration (that is the architecture's point) and
    // `mean_request_grant` stays 0.
    fn arbitrate<T: TraceSink>(&mut self, _slot: u64, _obs: &mut Observer<'_, T>) {}

    fn deliver<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        // Stage 2: middle m → output (m + t) mod N; deliver the head cell
        // of the matching middle VOQ straight to the host.
        let n = self.n as u64;
        for m in 0..self.n {
            let o = ((m as u64 + slot) % n) as usize;
            let q = &mut self.mid[m * self.n + o];
            obs.note_queue_depth(q.len());
            if let Some(cell) = q.pop_front() {
                self.checker.record(cell.src, cell.dst, cell.seq);
                obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        // Stage 1: input i → middle (i + t) mod N; arriving cells are
        // spread over the middles by the rotation itself.
        let n = self.n as u64;
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            let m = ((a.src as u64 + slot) % n) as usize;
            self.mid[m * self.n + a.dst].push_back(cell);
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }

    fn resident_cells(&self) -> Option<u64> {
        Some(self.mid.iter().map(VecDeque::len).sum::<usize>() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> EngineConfig {
        EngineConfig::new(1_000, 10_000)
    }

    #[test]
    fn unloaded_latency_is_about_n_over_2() {
        // §VI.D: "high average switching latency of N/2 packets for an
        // unloaded N-port switch".
        for n in [16usize, 32] {
            let mut sw = BvnSwitch::new(n);
            let mut tr = BernoulliUniform::new(n, 0.02, &SeedSequence::new(1));
            let r = sw.run(&mut tr, &cfg());
            let expect = n as f64 / 2.0;
            assert!(
                (r.mean_delay - expect).abs() < expect * 0.15,
                "n={n}: delay {} vs ≈{expect}",
                r.mean_delay
            );
        }
    }

    #[test]
    fn delivers_out_of_order() {
        // §VI.D: "out-of-order packet delivery" — the other disqualifier.
        let mut sw = BvnSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 0.7, &SeedSequence::new(2));
        let r = sw.run(&mut tr, &cfg());
        assert!(
            r.reordered > 0,
            "BvN must reorder under load (got {})",
            r.reordered
        );
    }

    #[test]
    fn scalable_throughput_without_a_scheduler() {
        // Its merit: full throughput under uniform traffic, no scheduler.
        let mut sw = BvnSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 0.95, &SeedSequence::new(3));
        let r = sw.run(&mut tr, &cfg());
        assert!((r.throughput - 0.95).abs() < 0.02, "{}", r.throughput);
        assert_eq!(r.dropped, 0);
    }
}
