//! Single-stage fabric with a *distant* central scheduler — the Fig. 1
//! latency argument.
//!
//! In a hypothetical single-stage 2048-port optical fabric, the crossbar
//! and its scheduler sit in the middle of the machine room, half an RTT of
//! fiber away from every host adapter. A cell then pays:
//!
//! 1. ½ RTT for the request to reach the scheduler,
//! 2. the scheduling delay,
//! 3. ½ RTT for the grant to return,
//! 4. ½ RTT for the data to reach the crossbar,
//! 5. ½ RTT from the crossbar to the egress adapter,
//!
//! i.e. **2 RTT plus scheduling** of unloaded latency — which is what
//! rules the single-stage topology out (§III): with 250 ns of one-way
//! cable flight the budget of 500 ns is blown by the control loop alone.
//! This module simulates that timing around any [`CellScheduler`].

use crate::cell::Cell;
use crate::driven::{run_switch, CellSwitch};
use osmosis_sched::CellScheduler;
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// A VOQ switch whose hosts are `half_rtt_slots` of flight time away from
/// the central scheduler/crossbar.
pub struct RemoteSchedulerSwitch {
    n: usize,
    sched: Box<dyn CellScheduler>,
    half_rtt_slots: u64,
    voq: Vec<VecDeque<Cell>>,
    egress: Vec<VecDeque<Cell>>,
    /// (due slot, input, output) — requests in flight to the scheduler.
    requests_in_flight: VecDeque<(u64, usize, usize)>,
    /// (due slot at input, input, output) — grants in flight back.
    grants_in_flight: VecDeque<(u64, usize, usize)>,
    /// (arrival slot at egress adapter, cell).
    data_in_flight: VecDeque<(u64, Cell)>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
}

impl RemoteSchedulerSwitch {
    /// Build around a scheduler with the given one-way host↔crossbar
    /// flight time in slots (½ RTT).
    pub fn new(sched: Box<dyn CellScheduler>, half_rtt_slots: u64) -> Self {
        let n = sched.inputs();
        RemoteSchedulerSwitch {
            n,
            sched,
            half_rtt_slots,
            voq: (0..n * n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            requests_in_flight: VecDeque::new(),
            grants_in_flight: VecDeque::new(),
            data_in_flight: VecDeque::new(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
        }
    }

    /// Run traffic and report.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for RemoteSchedulerSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, _cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
    }

    fn arbitrate<T: TraceSink>(&mut self, t: u64, obs: &mut Observer<'_, T>) {
        let n = self.n;
        let d = self.half_rtt_slots;

        // Requests arriving at the scheduler this slot. The `<=` matters
        // for d = 0: a colocated adapter's request is filed during slot
        // t's injection phase (due = t) and must be picked up at slot
        // t + 1, after its due slot has passed.
        while self
            .requests_in_flight
            .front()
            .is_some_and(|&(due, _, _)| due <= t)
        {
            let Some((_, i, o)) = self.requests_in_flight.pop_front() else {
                break;
            };
            self.sched.note_arrival(i, o);
        }

        // Scheduler computes this slot's matching; grants fly back.
        let matching = self.sched.tick(t);
        for &(i, o) in matching.pairs() {
            self.grants_in_flight.push_back((t + d, i, o));
        }

        // Grants arriving at the inputs: launch the cell. It reaches the
        // crossbar ½ RTT later and the egress adapter a further ½ RTT
        // after that.
        while self
            .grants_in_flight
            .front()
            .is_some_and(|&(due, _, _)| due <= t)
        {
            let Some((_, i, o)) = self.grants_in_flight.pop_front() else {
                break;
            };
            if obs.faults_attached() && obs.fault_grant_lost(i, o) {
                // The grant was corrupted on the way back: the adapter
                // times out and re-requests; the cell stays queued. The
                // max(1) keeps a colocated (d = 0) re-request from landing
                // in this already-processed slot and leaking the cell.
                self.requests_in_flight.push_back((t + d.max(1), i, o));
                continue;
            }
            let mut cell = self.voq[i * n + o]
                .pop_front()
                // lint:allow(panic-free): a grant is only issued for a
                // request filed by a queued cell, and grant-loss re-queues
                // the request rather than dropping the cell
                .expect("grant for missing cell");
            cell.grant_slot = t;
            obs.cell_granted(i, o, cell.inject_slot);
            self.data_in_flight.push_back((t + 2 * d, cell));
        }

        // Data arriving at the egress adapters.
        while self
            .data_in_flight
            .front()
            .is_some_and(|&(due, _)| due <= t)
        {
            let Some((_, cell)) = self.data_in_flight.pop_front() else {
                break;
            };
            self.egress[cell.dst].push_back(cell);
        }
    }

    fn deliver<T: TraceSink>(&mut self, _slot: u64, obs: &mut Observer<'_, T>) {
        // Egress transmits one cell per slot to the host.
        for (o, q) in self.egress.iter_mut().enumerate() {
            if let Some(cell) = q.pop_front() {
                self.checker.record(cell.src, cell.dst, cell.seq);
                obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        // New arrivals: enqueue locally, request flies to scheduler.
        let d = self.half_rtt_slots;
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            self.voq[a.src * self.n + a.dst].push_back(cell);
            self.requests_in_flight.push_back((slot + d, a.src, a.dst));
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }

    fn resident_cells(&self) -> Option<u64> {
        let queued: usize = self.voq.iter().map(VecDeque::len).sum::<usize>()
            + self.egress.iter().map(VecDeque::len).sum::<usize>()
            + self.data_in_flight.len();
        Some(queued as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sched::Flppr;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> EngineConfig {
        EngineConfig::new(1_000, 8_000)
    }

    #[test]
    fn colocated_scheduler_matches_plain_switch() {
        // d = 0 degenerates to the ordinary VOQ switch timing.
        let mut sw = RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 0);
        let mut tr = BernoulliUniform::new(8, 0.1, &SeedSequence::new(1));
        let r = sw.run(&mut tr, &cfg());
        assert!(r.delivered > 0, "colocated switch must actually deliver");
        assert!((r.throughput - 0.1).abs() < 0.02, "{}", r.throughput);
        assert!(r.mean_delay < 3.5, "{}", r.mean_delay);
    }

    #[test]
    fn unloaded_latency_is_two_rtt_plus_scheduling() {
        // Fig. 1: 2 RTT (= 4 half-RTTs) + scheduling.
        let d = 10u64;
        let mut sw = RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), d);
        let mut tr = BernoulliUniform::new(8, 0.05, &SeedSequence::new(2));
        let r = sw.run(&mut tr, &cfg());
        let two_rtt = 4.0 * d as f64;
        assert!(
            r.mean_delay >= two_rtt,
            "delay {} below 2 RTT {two_rtt}",
            r.mean_delay
        );
        assert!(
            r.mean_delay < two_rtt + 4.0,
            "delay {} ≫ 2 RTT + sched",
            r.mean_delay
        );
    }

    #[test]
    fn latency_scales_linearly_with_distance() {
        let measure = |d| {
            let mut sw = RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), d);
            let mut tr = BernoulliUniform::new(8, 0.05, &SeedSequence::new(3));
            sw.run(&mut tr, &cfg()).mean_delay
        };
        let d5 = measure(5);
        let d20 = measure(20);
        assert!((d20 - d5 - 60.0).abs() < 3.0, "Δ {}", d20 - d5);
    }

    #[test]
    fn lost_grants_are_retimed_through_the_control_loop() {
        use crate::driven::run_switch_faulted;
        use osmosis_faults::{FaultInjector, FaultKind, FaultPlan};
        let c = EngineConfig::new(0, 8_000).with_seed(9);
        let mut sw = RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 4);
        let mut tr = BernoulliUniform::new(8, 0.4, &SeedSequence::new(c.seed));
        let plan = FaultPlan::new().permanent(FaultKind::GrantLoss { prob: 0.15 }, 0);
        let mut inj = FaultInjector::new(plan);
        let r = run_switch_faulted(&mut sw, &mut tr, &c, &mut inj);
        assert!(r.extra("fault_grants_lost").unwrap() > 50.0);
        assert_eq!(r.dropped, 0, "lost grants re-request, cells stay queued");
        assert_eq!(r.reordered, 0);
        assert!(
            (r.throughput - r.offered_load).abs() < 0.03,
            "{} vs {}",
            r.throughput,
            r.offered_load
        );
    }

    #[test]
    fn throughput_survives_the_control_loop() {
        // The RTT adds latency but not a throughput penalty when the VOQ
        // request pipeline keeps the scheduler busy.
        let mut sw = RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 6);
        let mut tr = BernoulliUniform::new(8, 0.9, &SeedSequence::new(4));
        let r = sw.run(&mut tr, &cfg());
        assert!((r.throughput - 0.9).abs() < 0.03, "{}", r.throughput);
        assert_eq!(r.reordered, 0);
    }
}
