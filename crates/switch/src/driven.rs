//! The bridge between traffic-driven simulators and the shared engine.
//!
//! `osmosis-sim`'s [`SlottedModel`] cannot mention
//! [`TrafficGen`](osmosis_traffic::TrafficGen) — the traffic crate sits
//! *above* the simulation kernel. Simulators that are fed by an external
//! traffic generator therefore implement the [`CellSwitch`] trait from
//! this module instead; the [`Driven`] adapter pairs a `CellSwitch` with
//! a generator and implements `SlottedModel` for the pair, pulling the
//! slot's arrivals inside the engine's injection phase and handing them
//! to [`CellSwitch::admit`].
//!
//! Fabrics (which depend on this crate) implement `CellSwitch` too, so
//! every traffic-driven simulator in the workspace — single-stage switch
//! or multistage fabric — runs through the same [`run_switch`] /
//! [`run_switch_traced`] entry points. Self-driven models (the multicast
//! switch, whose workload is internal) implement `SlottedModel` directly.

use osmosis_sim::engine::{
    run, run_circuit_switched, run_faulted, run_instrumented, run_model, EngineConfig,
    EngineReport, Observer, SlottedModel, TraceSink,
};
use osmosis_sim::{Auditor, CircuitView, FaultView, NullTrace};
use osmosis_traffic::{Arrival, TrafficGen};

/// A slotted simulator driven by an external traffic generator.
///
/// The hooks mirror [`SlottedModel`]'s phases; `admit` replaces `inject`
/// and receives the slot's arrivals already drawn from the generator.
pub trait CellSwitch {
    /// Edge port count; must equal the generator's `ports()`.
    fn ports(&self) -> usize;

    /// Apply run-level configuration and reset per-run bookkeeping
    /// (sequence checkers, violation counters) before the first slot.
    fn configure(&mut self, _cfg: &EngineConfig) {}

    /// Phase 1: arbitration and crossbar/internal transfers.
    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>);

    /// Phase 2: egress transmission toward hosts.
    fn deliver<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>);

    /// Phase 3: this slot's arrivals enter the ingress queues.
    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>);

    /// Post-run hook: set `reordered` and model-specific `extra` metrics.
    fn finish(&mut self, _report: &mut EngineReport) {}

    /// Cells still queued or in flight inside the switch, when it can
    /// count them. `Some` lets an attached invariant auditor close the
    /// global conservation ledger exactly:
    /// `injected == delivered + dropped + resident`.
    fn resident_cells(&self) -> Option<u64> {
        None
    }
}

/// Pairs a [`CellSwitch`] with its traffic generator to form a
/// [`SlottedModel`] the engine can run.
pub struct Driven<'a, S: CellSwitch + ?Sized> {
    switch: &'a mut S,
    traffic: &'a mut dyn TrafficGen,
    arrivals: Vec<Arrival>,
}

impl<'a, S: CellSwitch + ?Sized> Driven<'a, S> {
    /// Pair `switch` with `traffic`. Panics on a port-count mismatch.
    pub fn new(switch: &'a mut S, traffic: &'a mut dyn TrafficGen) -> Self {
        assert_eq!(
            traffic.ports(),
            switch.ports(),
            "traffic generator and switch disagree on port count"
        );
        let ports = switch.ports();
        Driven {
            switch,
            traffic,
            arrivals: Vec::with_capacity(ports),
        }
    }
}

impl<S: CellSwitch + ?Sized> SlottedModel for Driven<'_, S> {
    fn ports(&self) -> usize {
        self.switch.ports()
    }

    fn configure(&mut self, cfg: &EngineConfig) {
        self.switch.configure(cfg);
    }

    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        self.switch.arbitrate(slot, obs);
    }

    fn deliver<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        self.switch.deliver(slot, obs);
    }

    fn inject<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        self.arrivals.clear();
        self.traffic.arrivals(slot, &mut self.arrivals);
        self.switch.admit(&self.arrivals, slot, obs);
    }

    fn finish(&mut self, report: &mut EngineReport) {
        self.switch.finish(report);
    }

    fn resident_cells(&self) -> Option<u64> {
        self.switch.resident_cells()
    }
}

/// Run a traffic-driven simulator on the engine with tracing disabled.
pub fn run_switch<S: CellSwitch + ?Sized>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
) -> EngineReport {
    run_model(&mut Driven::new(switch, traffic), cfg)
}

/// Run a traffic-driven simulator, streaming trace events into `sink`.
pub fn run_switch_traced<S: CellSwitch + ?Sized, T: TraceSink>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
    sink: &mut T,
) -> EngineReport {
    run(&mut Driven::new(switch, traffic), cfg, sink)
}

/// Run a traffic-driven simulator under a fault plane. A vacuous view
/// (empty plan) leaves the run bit-identical to [`run_switch`].
pub fn run_switch_faulted<S: CellSwitch + ?Sized>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
    faults: &mut dyn FaultView,
) -> EngineReport {
    run_faulted(
        &mut Driven::new(switch, traffic),
        cfg,
        &mut NullTrace,
        faults,
    )
}

/// Run a traffic-driven simulator under a fault plane, streaming trace
/// events into `sink`.
pub fn run_switch_faulted_traced<S: CellSwitch + ?Sized, T: TraceSink>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
    sink: &mut T,
    faults: &mut dyn FaultView,
) -> EngineReport {
    run_faulted(&mut Driven::new(switch, traffic), cfg, sink, faults)
}

/// Run a traffic-driven simulator with an invariant-audit plane
/// attached. A clean audit leaves the report — and its fingerprint —
/// bit-identical to [`run_switch`].
pub fn run_switch_audited<S: CellSwitch + ?Sized>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
    audit: &mut dyn Auditor,
) -> EngineReport {
    let mut sink = NullTrace;
    run_instrumented(
        &mut Driven::new(switch, traffic),
        cfg,
        &mut sink,
        None,
        Some(audit),
    )
}

/// The fully general entry point: optional fault plane, optional audit
/// plane. This is how the acceptance suites audit faulted runs.
pub fn run_switch_instrumented<'a, S: CellSwitch + ?Sized>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
    faults: Option<&'a mut dyn FaultView>,
    audit: Option<&'a mut dyn Auditor>,
) -> EngineReport {
    let mut sink = NullTrace;
    run_instrumented(
        &mut Driven::new(switch, traffic),
        cfg,
        &mut sink,
        faults,
        audit,
    )
}

/// Run a traffic-driven simulator in circuit-switched mode: `circuits`
/// (an OCS plan) is configured for the run, advanced every slot, fed the
/// arrival/transfer stream, and consulted by the model through the
/// observer's `circuit_*` methods. Optional fault and audit planes
/// compose as in [`run_switch_instrumented`].
///
/// A vacuous circuit view (empty plan) is *not* attached, so the run —
/// and its report fingerprint — is bit-identical to [`run_switch`].
pub fn run_switch_circuit<'a, S: CellSwitch + ?Sized>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
    circuits: &mut dyn CircuitView,
    faults: Option<&'a mut dyn FaultView>,
    audit: Option<&'a mut dyn Auditor>,
) -> EngineReport {
    let mut sink = NullTrace;
    run_circuit_switched(
        &mut Driven::new(switch, traffic),
        cfg,
        &mut sink,
        circuits,
        faults,
        audit,
    )
}

/// [`run_switch_circuit`] with a caller-supplied trace sink (telemetry,
/// ring-buffer capture, ...). Identical report for any sink.
pub fn run_switch_circuit_traced<'a, S: CellSwitch + ?Sized, T: TraceSink>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
    sink: &mut T,
    circuits: &mut dyn CircuitView,
    faults: Option<&'a mut dyn FaultView>,
    audit: Option<&'a mut dyn Auditor>,
) -> EngineReport {
    run_circuit_switched(
        &mut Driven::new(switch, traffic),
        cfg,
        sink,
        circuits,
        faults,
        audit,
    )
}

/// [`run_switch_instrumented`] with a caller-supplied trace sink — the
/// entry point the telemetry plane attaches through. Because sinks only
/// observe, the report stays bit-identical to [`run_switch`] for any
/// sink when the fault view is vacuous and the audit is clean.
pub fn run_switch_instrumented_traced<'a, S: CellSwitch + ?Sized, T: TraceSink>(
    switch: &mut S,
    traffic: &mut dyn TrafficGen,
    cfg: &EngineConfig,
    sink: &mut T,
    faults: Option<&'a mut dyn FaultView>,
    audit: Option<&'a mut dyn Auditor>,
) -> EngineReport {
    run_instrumented(&mut Driven::new(switch, traffic), cfg, sink, faults, audit)
}
