//! The single-stage OSMOSIS switch simulation: VOQ ingress adapters, a
//! bufferless crossbar driven by a central scheduler, and egress queues
//! with one or two receivers per port (Fig. 5).
//!
//! The simulation is slotted at the cell cycle. Per slot:
//!
//! 1. the scheduler issues the slot's matching (grants),
//! 2. granted cells cross the (bufferless) crossbar into their egress
//!    queue — with dual receivers an egress can absorb two cells per slot,
//! 3. each egress transmits one cell per slot to its host,
//! 4. the slot's new arrivals enter the VOQs and are reported to the
//!    scheduler (so the minimum request-to-grant latency is one cycle, as
//!    in Fig. 6).
//!
//! The run reports throughput, delay distributions, the request-to-grant
//! distribution, losslessness and per-flow ordering — every switch-level
//! row of Table 1.

use crate::cell::Cell;
use osmosis_sched::CellScheduler;
use osmosis_sim::stats::Histogram;
use osmosis_traffic::{SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Simulation window configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Slots simulated before measurement starts (queue warm-up).
    pub warmup_slots: u64,
    /// Slots measured.
    pub measure_slots: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_slots: 2_000,
            measure_slots: 20_000,
        }
    }
}

/// Results of a switch run.
#[derive(Debug, Clone)]
pub struct SwitchReport {
    /// Offered load (measured arrivals / port / slot).
    pub offered_load: f64,
    /// Carried throughput (deliveries / port / slot).
    pub throughput: f64,
    /// Mean cell delay in slots (injection → delivery to host).
    pub mean_delay: f64,
    /// 99th-percentile delay in slots, when resolvable.
    pub p99_delay: Option<f64>,
    /// Mean request-to-grant latency in slots (the Fig. 6 quantity).
    pub mean_request_grant: f64,
    /// Cells injected in the measurement window.
    pub injected: u64,
    /// Cells delivered in the measurement window.
    pub delivered: u64,
    /// Cells dropped (always 0: the model is lossless by construction and
    /// the field asserts it).
    pub dropped: u64,
    /// Out-of-order deliveries.
    pub reordered: u64,
    /// Deepest VOQ observed (per (input,output) queue).
    pub max_voq_depth: usize,
    /// Deepest egress queue observed.
    pub max_egress_depth: usize,
    /// Full delay histogram (slots).
    pub delay_hist: Histogram,
    /// Full request-to-grant histogram (slots).
    pub grant_hist: Histogram,
}

/// The switch simulator.
pub struct VoqSwitch {
    n: usize,
    sched: Box<dyn CellScheduler>,
    voq: Vec<VecDeque<Cell>>, // [input * n + output]
    egress: Vec<VecDeque<Cell>>,
    stamper: SequenceStamper,
    next_id: u64,
}

impl VoqSwitch {
    /// A switch around the given scheduler (ports are taken from it).
    pub fn new(sched: Box<dyn CellScheduler>) -> Self {
        let n = sched.inputs();
        assert_eq!(n, sched.outputs(), "square switch expected");
        VoqSwitch {
            n,
            sched,
            voq: (0..n * n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            stamper: SequenceStamper::new(),
            next_id: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Run the traffic through the switch and report.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: RunConfig) -> SwitchReport {
        assert_eq!(traffic.ports(), self.n, "traffic/switch port mismatch");
        let n = self.n;
        let total_slots = cfg.warmup_slots + cfg.measure_slots;

        let mut delay_hist = Histogram::new(1.0, 4_096);
        let mut grant_hist = Histogram::new(1.0, 1_024);
        let mut checker = SequenceChecker::new();
        let mut injected = 0u64;
        let mut delivered = 0u64;
        let mut max_voq_depth = 0usize;
        let mut max_egress_depth = 0usize;
        let mut arrivals = Vec::with_capacity(n);

        for t in 0..total_slots {
            let measuring = t >= cfg.warmup_slots;

            // 1. Scheduler issues this slot's matching.
            let matching = self.sched.tick(t);

            // 2. Granted cells cross the crossbar into egress queues.
            for &(i, o) in matching.pairs() {
                let q = &mut self.voq[i * n + o];
                let mut cell = q
                    .pop_front()
                    .expect("scheduler granted a cell the VOQ does not hold");
                cell.grant_slot = t;
                if measuring && cell.inject_slot >= cfg.warmup_slots {
                    grant_hist.record((t - cell.inject_slot) as f64);
                }
                self.egress[o].push_back(cell);
            }

            // 3. Egress transmits one cell per slot to the host.
            for (o, q) in self.egress.iter_mut().enumerate() {
                max_egress_depth = max_egress_depth.max(q.len());
                if let Some(cell) = q.pop_front() {
                    debug_assert_eq!(cell.dst, o);
                    checker.record(cell.src, cell.dst, cell.seq);
                    if measuring {
                        delivered += 1;
                        // Delay is only meaningful for cells injected after
                        // warm-up; throughput counts every delivery in the
                        // measurement window (at saturation the backlog
                        // drains strictly FIFO).
                        if cell.inject_slot >= cfg.warmup_slots {
                            delay_hist.record((t - cell.inject_slot) as f64);
                        }
                    }
                }
            }

            // 4. New arrivals enter the VOQs.
            arrivals.clear();
            traffic.arrivals(t, &mut arrivals);
            for a in &arrivals {
                let seq = self.stamper.stamp(a.src, a.dst);
                let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, t);
                self.next_id += 1;
                if measuring {
                    injected += 1;
                }
                self.voq[a.src * n + a.dst].push_back(cell);
                max_voq_depth = max_voq_depth.max(self.voq[a.src * n + a.dst].len());
                self.sched.note_arrival(a.src, a.dst);
            }
        }

        let denom = cfg.measure_slots as f64 * n as f64;
        SwitchReport {
            offered_load: injected as f64 / denom,
            throughput: delivered as f64 / denom,
            mean_delay: delay_hist.mean(),
            p99_delay: delay_hist.quantile(0.99),
            mean_request_grant: grant_hist.mean(),
            injected,
            delivered,
            dropped: 0,
            reordered: checker.reordered(),
            max_voq_depth,
            max_egress_depth,
            delay_hist,
            grant_hist,
        }
    }
}

/// Convenience: run Bernoulli-uniform traffic at `load` through a fresh
/// switch built from `make_sched`, with the given seed.
pub fn run_uniform(
    make_sched: impl FnOnce() -> Box<dyn CellScheduler>,
    load: f64,
    seed: u64,
    cfg: RunConfig,
) -> SwitchReport {
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;
    let sched = make_sched();
    let n = sched.inputs();
    let mut sw = VoqSwitch::new(sched);
    let mut tr = BernoulliUniform::new(n, load, &SeedSequence::new(seed));
    sw.run(&mut tr, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sched::{Flppr, Islip, PipelinedArbiter};
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::{BernoulliUniform, Bursty, Hotspot, Permutation};

    fn small_cfg() -> RunConfig {
        RunConfig {
            warmup_slots: 500,
            measure_slots: 5_000,
        }
    }

    #[test]
    fn empty_traffic_idles() {
        let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)));
        let mut tr = BernoulliUniform::new(8, 0.0, &SeedSequence::new(1));
        let r = sw.run(&mut tr, small_cfg());
        assert_eq!(r.injected, 0);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn low_load_delay_is_two_slots_with_flppr() {
        // One cycle request→grant (Fig. 6) + one cycle egress transmission.
        let r = run_uniform(
            || Box::new(Flppr::osmosis(16, 1)),
            0.05,
            7,
            small_cfg(),
        );
        assert!(
            (r.mean_request_grant - 1.0).abs() < 0.05,
            "grant latency {}",
            r.mean_request_grant
        );
        assert!(r.mean_delay < 2.2, "delay {}", r.mean_delay);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn low_load_delay_is_log2n_with_pipelined_prior_art() {
        let r = run_uniform(
            || Box::new(PipelinedArbiter::log2n(16, 1)),
            0.05,
            7,
            small_cfg(),
        );
        // depth = log2(16) = 4 → request-to-grant ≈ 4 (+ rare contention).
        assert!(
            (r.mean_request_grant - 4.0).abs() < 0.3,
            "grant latency {}",
            r.mean_request_grant
        );
        assert!(r.mean_delay > 4.0);
    }

    #[test]
    fn throughput_tracks_offered_load_under_uniform_traffic() {
        for load in [0.3, 0.6, 0.9] {
            let r = run_uniform(
                || Box::new(Flppr::osmosis(16, 1)),
                load,
                11,
                small_cfg(),
            );
            assert!(
                (r.throughput - r.offered_load).abs() < 0.02,
                "load {load}: thr {} vs offered {}",
                r.throughput,
                r.offered_load
            );
            assert_eq!(r.reordered, 0, "ordering at load {load}");
        }
    }

    #[test]
    fn sustained_throughput_above_95_percent() {
        // Table 1: sustained throughput > 95%.
        let r = run_uniform(
            || Box::new(Flppr::osmosis(16, 1)),
            0.99,
            13,
            RunConfig {
                warmup_slots: 2_000,
                measure_slots: 20_000,
            },
        );
        assert!(r.throughput > 0.95, "throughput {}", r.throughput);
    }

    #[test]
    fn dual_receiver_lowers_delay_at_medium_load() {
        // Fig. 7: the dual-receiver curve sits below the single-receiver
        // curve in the mid-load region.
        let single = run_uniform(
            || Box::new(Flppr::osmosis(16, 1)),
            0.7,
            17,
            small_cfg(),
        );
        let dual = run_uniform(
            || Box::new(Flppr::osmosis(16, 2)),
            0.7,
            17,
            small_cfg(),
        );
        assert!(
            dual.mean_delay < single.mean_delay,
            "dual {} vs single {}",
            dual.mean_delay,
            single.mean_delay
        );
    }

    #[test]
    fn permutation_traffic_flows_without_contention() {
        let sched: Box<dyn CellScheduler> = Box::new(Flppr::osmosis(16, 1));
        let mut sw = VoqSwitch::new(sched);
        let mut tr = Permutation::random(16, 0.9, &SeedSequence::new(3));
        let r = sw.run(&mut tr, small_cfg());
        assert!((r.throughput - 0.9).abs() < 0.02);
        assert!(r.mean_delay < 3.0, "no contention: {}", r.mean_delay);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn hotspot_remains_lossless_and_ordered() {
        // Output 0 is overloaded (2× line rate): its VOQs grow, but no
        // cell is lost and flows stay in order; other outputs keep flowing.
        let sched: Box<dyn CellScheduler> = Box::new(Flppr::osmosis(8, 1));
        let mut sw = VoqSwitch::new(sched);
        let mut tr = Hotspot::new(8, 0.5, 0, 0.5, &SeedSequence::new(5));
        let r = sw.run(&mut tr, small_cfg());
        assert_eq!(r.dropped, 0);
        assert_eq!(r.reordered, 0);
        assert!(r.throughput > 0.3, "non-hot traffic still flows");
    }

    #[test]
    fn bursty_traffic_is_ordered() {
        let sched: Box<dyn CellScheduler> = Box::new(Flppr::osmosis(8, 2));
        let mut sw = VoqSwitch::new(sched);
        let mut tr = Bursty::new(8, 0.8, 12.0, &SeedSequence::new(23));
        let r = sw.run(&mut tr, small_cfg());
        assert_eq!(r.reordered, 0);
        assert!((r.throughput - r.offered_load).abs() < 0.03);
    }

    #[test]
    fn islip_reference_behaves_like_flppr_at_low_load() {
        let r = run_uniform(|| Box::new(Islip::log2n(16, 1)), 0.1, 29, small_cfg());
        assert!(r.mean_delay < 2.5);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_uniform(|| Box::new(Flppr::osmosis(8, 1)), 0.5, 99, small_cfg());
        let b = run_uniform(|| Box::new(Flppr::osmosis(8, 1)), 0.5, 99, small_cfg());
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mean_delay, b.mean_delay);
    }
}
