//! The single-stage OSMOSIS switch simulation: VOQ ingress adapters, a
//! bufferless crossbar driven by a central scheduler, and egress queues
//! with one or two receivers per port (Fig. 5).
//!
//! The simulation is slotted at the cell cycle and runs on the shared
//! engine (`osmosis_sim::engine`) through the [`CellSwitch`] hooks:
//!
//! 1. `arbitrate` — the scheduler issues the slot's matching (grants) and
//!    granted cells cross the (bufferless) crossbar into their egress
//!    queue — with dual receivers an egress can absorb two cells per slot,
//! 2. `deliver` — each egress transmits one cell per slot to its host,
//! 3. `admit` — the slot's new arrivals enter the VOQs and are reported to
//!    the scheduler (so the minimum request-to-grant latency is one cycle,
//!    as in Fig. 6).
//!
//! The run reports throughput, delay distributions, the request-to-grant
//! distribution, losslessness and per-flow ordering — every switch-level
//! row of Table 1 — in the unified [`EngineReport`].

use crate::cell::Cell;
use crate::driven::{run_switch, CellSwitch};
use osmosis_sched::CellScheduler;
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// The switch simulator.
pub struct VoqSwitch {
    n: usize,
    sched: Box<dyn CellScheduler>,
    voq: Vec<VecDeque<Cell>>, // [input * n + output]
    egress: Vec<VecDeque<Cell>>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    /// Receivers per egress in the fault-free switch.
    nominal_cap: usize,
    /// Capacity currently applied to the scheduler per output; updated
    /// only under an attached fault plane.
    applied_cap: Vec<usize>,
}

impl VoqSwitch {
    /// A switch around the given scheduler (ports are taken from it).
    pub fn new(sched: Box<dyn CellScheduler>) -> Self {
        let n = sched.inputs();
        assert_eq!(n, sched.outputs(), "square switch expected");
        let nominal_cap = sched.out_capacity();
        VoqSwitch {
            n,
            sched,
            voq: (0..n * n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            nominal_cap,
            applied_cap: vec![nominal_cap; n],
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Run the traffic through the switch and report.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for VoqSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, _cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
        // Restore full egress capacity in case a previous faulted run
        // left a degraded scheduler behind.
        for o in 0..self.n {
            if self.applied_cap[o] != self.nominal_cap {
                self.applied_cap[o] = self.nominal_cap;
                self.sched.set_output_capacity(o, self.nominal_cap);
            }
        }
    }

    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        if obs.faults_attached() {
            // Reflect this slot's fault state into the scheduler: a
            // stuck-off SOA gate removes the whole egress, a dead
            // burst-mode receiver halves it (failover to the survivor).
            for o in 0..self.n {
                let cap = if obs.fault_output_blocked(o) {
                    0
                } else {
                    self.nominal_cap.saturating_sub(obs.fault_receivers_down(o))
                };
                if cap != self.applied_cap[o] {
                    self.applied_cap[o] = cap;
                    self.sched.set_output_capacity(o, cap);
                }
            }
        }
        if obs.audit_attached() {
            // Tell the audit plane what each output may legally absorb
            // this slot (as degraded by the fault reflection above), so
            // the capacity-legality auditor can police the matching.
            for o in 0..self.n {
                obs.audit_output_capacity(o, self.sched.output_capacity(o));
            }
        }
        let matching = self.sched.tick(slot);
        for &(i, o) in matching.pairs() {
            if obs.faults_attached() && obs.fault_grant_lost(i, o) {
                // The grant was corrupted in the control channel and never
                // reached the ingress adapter: the cell stays in its VOQ
                // and the adapter re-requests it next slot.
                self.sched.note_arrival(i, o);
                continue;
            }
            let q = &mut self.voq[i * self.n + o];
            let mut cell = q
                .pop_front()
                // lint:allow(panic-free): FLPPR validates every matching
                // against the occupancy snapshot before it is applied
                .expect("scheduler granted a cell the VOQ does not hold");
            cell.grant_slot = slot;
            obs.cell_granted(i, o, cell.inject_slot);
            self.egress[o].push_back(cell);
        }
    }

    fn deliver<T: TraceSink>(&mut self, _slot: u64, obs: &mut Observer<'_, T>) {
        for (o, q) in self.egress.iter_mut().enumerate() {
            obs.note_egress_depth(q.len());
            if !q.is_empty() && obs.faults_attached() && obs.fault_cell_corrupted(o) {
                // The egress transmission was corrupted by a link fault;
                // the cell stays at the queue head and is re-sent next
                // slot (hop-by-hop retransmission).
                obs.cell_retransmitted(o);
                continue;
            }
            if let Some(cell) = q.pop_front() {
                debug_assert_eq!(cell.dst, o);
                self.checker.record(cell.src, cell.dst, cell.seq);
                obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            let q = &mut self.voq[a.src * self.n + a.dst];
            q.push_back(cell);
            obs.note_queue_depth(q.len());
            self.sched.note_arrival(a.src, a.dst);
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }

    fn resident_cells(&self) -> Option<u64> {
        let queued: usize = self.voq.iter().map(VecDeque::len).sum::<usize>()
            + self.egress.iter().map(VecDeque::len).sum::<usize>();
        Some(queued as u64)
    }
}

/// Convenience: run Bernoulli-uniform traffic at `load` through a fresh
/// switch built from `make_sched`, seeded from `cfg.seed`.
pub fn run_uniform(
    make_sched: impl FnOnce() -> Box<dyn CellScheduler>,
    load: f64,
    cfg: &EngineConfig,
) -> EngineReport {
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;
    let sched = make_sched();
    let n = sched.inputs();
    let mut sw = VoqSwitch::new(sched);
    let mut tr = BernoulliUniform::new(n, load, &SeedSequence::new(cfg.seed));
    sw.run(&mut tr, cfg)
}

/// [`run_uniform`] with a caller-supplied trace sink (telemetry,
/// ring-buffer capture, ...). Identical report for any sink.
pub fn run_uniform_traced<T: osmosis_sim::TraceSink>(
    make_sched: impl FnOnce() -> Box<dyn CellScheduler>,
    load: f64,
    cfg: &EngineConfig,
    sink: &mut T,
) -> EngineReport {
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;
    let sched = make_sched();
    let n = sched.inputs();
    let mut sw = VoqSwitch::new(sched);
    let mut tr = BernoulliUniform::new(n, load, &SeedSequence::new(cfg.seed));
    crate::driven::run_switch_traced(&mut sw, &mut tr, cfg, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sched::{Flppr, Islip, PipelinedArbiter};
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::{BernoulliUniform, Bursty, Hotspot, Permutation};

    fn small_cfg() -> EngineConfig {
        EngineConfig::new(500, 5_000)
    }

    #[test]
    fn empty_traffic_idles() {
        let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)));
        let mut tr = BernoulliUniform::new(8, 0.0, &SeedSequence::new(1));
        let r = sw.run(&mut tr, &small_cfg());
        assert_eq!(r.injected, 0);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn low_load_delay_is_two_slots_with_flppr() {
        // One cycle request→grant (Fig. 6) + one cycle egress transmission.
        let r = run_uniform(
            || Box::new(Flppr::osmosis(16, 1)),
            0.05,
            &small_cfg().with_seed(7),
        );
        assert!(
            (r.mean_request_grant - 1.0).abs() < 0.05,
            "grant latency {}",
            r.mean_request_grant
        );
        assert!(r.mean_delay < 2.2, "delay {}", r.mean_delay);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn low_load_delay_is_log2n_with_pipelined_prior_art() {
        let r = run_uniform(
            || Box::new(PipelinedArbiter::log2n(16, 1)),
            0.05,
            &small_cfg().with_seed(7),
        );
        // depth = log2(16) = 4 → request-to-grant ≈ 4 (+ rare contention).
        assert!(
            (r.mean_request_grant - 4.0).abs() < 0.3,
            "grant latency {}",
            r.mean_request_grant
        );
        assert!(r.mean_delay > 4.0);
    }

    #[test]
    fn throughput_tracks_offered_load_under_uniform_traffic() {
        for load in [0.3, 0.6, 0.9] {
            let r = run_uniform(
                || Box::new(Flppr::osmosis(16, 1)),
                load,
                &small_cfg().with_seed(11),
            );
            assert!(
                (r.throughput - r.offered_load).abs() < 0.02,
                "load {load}: thr {} vs offered {}",
                r.throughput,
                r.offered_load
            );
            assert_eq!(r.reordered, 0, "ordering at load {load}");
        }
    }

    #[test]
    fn sustained_throughput_above_95_percent() {
        // Table 1: sustained throughput > 95%.
        let r = run_uniform(
            || Box::new(Flppr::osmosis(16, 1)),
            0.99,
            &EngineConfig::new(2_000, 20_000).with_seed(13),
        );
        assert!(r.throughput > 0.95, "throughput {}", r.throughput);
    }

    #[test]
    fn dual_receiver_lowers_delay_at_medium_load() {
        // Fig. 7: the dual-receiver curve sits below the single-receiver
        // curve in the mid-load region.
        let single = run_uniform(
            || Box::new(Flppr::osmosis(16, 1)),
            0.7,
            &small_cfg().with_seed(17),
        );
        let dual = run_uniform(
            || Box::new(Flppr::osmosis(16, 2)),
            0.7,
            &small_cfg().with_seed(17),
        );
        assert!(
            dual.mean_delay < single.mean_delay,
            "dual {} vs single {}",
            dual.mean_delay,
            single.mean_delay
        );
    }

    #[test]
    fn permutation_traffic_flows_without_contention() {
        let sched: Box<dyn CellScheduler> = Box::new(Flppr::osmosis(16, 1));
        let mut sw = VoqSwitch::new(sched);
        let mut tr = Permutation::random(16, 0.9, &SeedSequence::new(3));
        let r = sw.run(&mut tr, &small_cfg());
        assert!((r.throughput - 0.9).abs() < 0.02);
        assert!(r.mean_delay < 3.0, "no contention: {}", r.mean_delay);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn hotspot_remains_lossless_and_ordered() {
        // Output 0 is overloaded (2× line rate): its VOQs grow, but no
        // cell is lost and flows stay in order; other outputs keep flowing.
        let sched: Box<dyn CellScheduler> = Box::new(Flppr::osmosis(8, 1));
        let mut sw = VoqSwitch::new(sched);
        let mut tr = Hotspot::new(8, 0.5, 0, 0.5, &SeedSequence::new(5));
        let r = sw.run(&mut tr, &small_cfg());
        assert_eq!(r.dropped, 0);
        assert_eq!(r.reordered, 0);
        assert!(r.throughput > 0.3, "non-hot traffic still flows");
    }

    #[test]
    fn bursty_traffic_is_ordered() {
        let sched: Box<dyn CellScheduler> = Box::new(Flppr::osmosis(8, 2));
        let mut sw = VoqSwitch::new(sched);
        let mut tr = Bursty::new(8, 0.8, 12.0, &SeedSequence::new(23));
        let r = sw.run(&mut tr, &small_cfg());
        assert_eq!(r.reordered, 0);
        assert!((r.throughput - r.offered_load).abs() < 0.03);
    }

    #[test]
    fn islip_reference_behaves_like_flppr_at_low_load() {
        let r = run_uniform(
            || Box::new(Islip::log2n(16, 1)),
            0.1,
            &small_cfg().with_seed(29),
        );
        assert!(r.mean_delay < 2.5);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_cfg().with_seed(99);
        let a = run_uniform(|| Box::new(Flppr::osmosis(8, 1)), 0.5, &cfg);
        let b = run_uniform(|| Box::new(Flppr::osmosis(8, 1)), 0.5, &cfg);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_plain_run() {
        use crate::driven::run_switch_faulted;
        use osmosis_faults::{FaultInjector, FaultPlan};
        let cfg = small_cfg().with_seed(99);
        let plain = run_uniform(|| Box::new(Flppr::osmosis(8, 1)), 0.5, &cfg);
        let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)));
        let mut tr = BernoulliUniform::new(8, 0.5, &SeedSequence::new(cfg.seed));
        let mut inj = FaultInjector::new(FaultPlan::new());
        let faulted = run_switch_faulted(&mut sw, &mut tr, &cfg, &mut inj);
        assert_eq!(plain.fingerprint(), faulted.fingerprint());
    }

    #[test]
    fn stuck_off_soa_gate_blocks_its_output_and_heals() {
        use crate::driven::run_switch_faulted_traced;
        use osmosis_faults::{FaultInjector, FaultKind, FaultPlan};
        use osmosis_sim::{TraceEvent, VecTrace};
        // Output 0's gate sticks off for slots [1000, 2000); the run
        // measures from slot 0 so the trace shows the outage window.
        let cfg = EngineConfig::new(0, 5_000).with_seed(3);
        let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)));
        let mut tr = BernoulliUniform::new(8, 0.6, &SeedSequence::new(cfg.seed));
        let plan =
            FaultPlan::new().one_shot(FaultKind::SoaStuckOff { output: 0 }, 1_000, Some(1_000));
        let mut inj = FaultInjector::new(plan);
        let mut sink = VecTrace::default();
        let r = run_switch_faulted_traced(&mut sw, &mut tr, &cfg, &mut sink, &mut inj);
        let deliveries_to_0 = |from: u64, to: u64| {
            sink.events
                .iter()
                .filter(|&&(slot, e)| {
                    (from..to).contains(&slot) && matches!(e, TraceEvent::Deliver { output: 0, .. })
                })
                .count()
        };
        // One residual egress cell may drain right after the gate dies.
        assert!(
            deliveries_to_0(1_001, 2_000) == 0,
            "no deliveries from a stuck-off gate"
        );
        assert!(
            deliveries_to_0(2_000, 5_000) > 100,
            "output 0 drains its backlog after repair"
        );
        assert_eq!(r.dropped, 0, "masking is lossless");
        assert_eq!(r.reordered, 0);
        assert_eq!(r.extra("faults_injected"), Some(1.0));
        assert_eq!(r.extra("faults_healed"), Some(1.0));
    }

    #[test]
    fn receiver_death_degrades_then_recovers_throughput() {
        use crate::driven::run_switch_faulted;
        use osmosis_faults::{FaultInjector, FaultKind, FaultPlan};
        // Dual receivers; hotspot output 0 at 1.5× line rate needs both.
        // Killing one receiver for a window must not lose or reorder
        // anything — the backlog drains through the survivor.
        let cfg = EngineConfig::new(0, 8_000).with_seed(7);
        let run = |plan: FaultPlan| {
            let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 2)));
            let mut tr = Hotspot::new(8, 0.2, 0, 0.75, &SeedSequence::new(cfg.seed));
            let mut inj = FaultInjector::new(plan);
            run_switch_faulted(&mut sw, &mut tr, &cfg, &mut inj)
        };
        let nominal = run(FaultPlan::new());
        let degraded = run(FaultPlan::new().one_shot(
            FaultKind::ReceiverDeath { output: 0 },
            1_000,
            Some(2_000),
        ));
        assert_eq!(degraded.dropped, 0);
        assert_eq!(degraded.reordered, 0);
        assert!(
            degraded.mean_delay > nominal.mean_delay,
            "failover shows up as queueing delay: {} vs {}",
            degraded.mean_delay,
            nominal.mean_delay
        );
        assert!(
            degraded.throughput > 0.9 * nominal.throughput,
            "window is long enough to recover: {} vs {}",
            degraded.throughput,
            nominal.throughput
        );
    }

    #[test]
    fn lost_grants_are_reissued_without_loss() {
        use crate::driven::run_switch_faulted;
        use osmosis_faults::{FaultInjector, FaultKind, FaultPlan};
        let cfg = EngineConfig::new(0, 6_000).with_seed(11);
        let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)));
        let mut tr = BernoulliUniform::new(8, 0.5, &SeedSequence::new(cfg.seed));
        let plan = FaultPlan::new().permanent(FaultKind::GrantLoss { prob: 0.2 }, 0);
        let mut inj = FaultInjector::new(plan);
        let r = run_switch_faulted(&mut sw, &mut tr, &cfg, &mut inj);
        assert!(
            r.extra("fault_grants_lost").unwrap() > 100.0,
            "the fault actually fired"
        );
        assert_eq!(r.dropped, 0, "every lost grant is re-requested");
        assert_eq!(r.reordered, 0);
        assert!(
            (r.throughput - r.offered_load).abs() < 0.03,
            "20% grant loss costs latency, not throughput: {} vs {}",
            r.throughput,
            r.offered_load
        );
    }

    #[test]
    fn link_ber_burst_retransmits_at_egress() {
        use crate::driven::run_switch_faulted;
        use osmosis_faults::{FaultInjector, FaultKind, FaultPlan, LINK_ANY};
        let cfg = EngineConfig::new(0, 6_000).with_seed(13);
        let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)));
        let mut tr = BernoulliUniform::new(8, 0.4, &SeedSequence::new(cfg.seed));
        let plan = FaultPlan::new().permanent(
            FaultKind::LinkBerBurst {
                link: LINK_ANY,
                cell_error_prob: 0.1,
            },
            0,
        );
        let mut inj = FaultInjector::new(plan);
        let r = run_switch_faulted(&mut sw, &mut tr, &cfg, &mut inj);
        assert!(
            r.extra("fault_retransmits").unwrap() > 100.0,
            "corrupted egress transmissions were re-sent"
        );
        assert_eq!(r.dropped, 0, "retransmission recovers every corruption");
        assert_eq!(r.reordered, 0, "head-of-line retransmit preserves order");
    }

    #[test]
    fn trace_stream_matches_report_counters() {
        use crate::driven::run_switch_traced;
        use osmosis_sim::CountingTrace;
        let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)));
        let mut tr = BernoulliUniform::new(8, 0.4, &SeedSequence::new(41));
        let mut sink = CountingTrace::default();
        let r = run_switch_traced(&mut sw, &mut tr, &EngineConfig::new(0, 2_000), &mut sink);
        // With no warm-up, the sink and the report see the same window,
        // modulo cells still queued at the horizon.
        assert_eq!(sink.injects, r.injected);
        assert_eq!(sink.delivers, r.delivered);
        assert!(sink.grants >= r.delivered);
        assert_eq!(sink.drops, 0);
    }
}
