//! Ideal output-queued switch — the classic electronic baseline.
//!
//! §III: "Traditional supercomputing interconnect fabrics have typically
//! used output-queued electronic switches with integrated buffers [16]."
//! An OQ switch moves every arriving cell into its output buffer within
//! the same slot (internal speedup N), making it trivially
//! work-conserving — the delay lower bound every input-queued design is
//! measured against. Its cost is what the paper's optics cannot provide:
//! a memory running N times faster than the line rate.

use crate::cell::Cell;
use crate::voq_switch::{RunConfig, SwitchReport};
use osmosis_sim::stats::Histogram;
use osmosis_traffic::{SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// The ideal output-queued switch.
pub struct OqSwitch {
    n: usize,
    egress: Vec<VecDeque<Cell>>,
    stamper: SequenceStamper,
    next_id: u64,
}

impl OqSwitch {
    /// An `n`-port OQ switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        OqSwitch {
            n,
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            stamper: SequenceStamper::new(),
            next_id: 0,
        }
    }

    /// Run traffic and report.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: RunConfig) -> SwitchReport {
        assert_eq!(traffic.ports(), self.n);
        let n = self.n;
        let total = cfg.warmup_slots + cfg.measure_slots;
        let mut delay_hist = Histogram::new(1.0, 16_384);
        let mut checker = SequenceChecker::new();
        let (mut injected, mut delivered) = (0u64, 0u64);
        let mut max_egress = 0usize;
        let mut arrivals = Vec::with_capacity(n);

        for t in 0..total {
            let measuring = t >= cfg.warmup_slots;

            // Egress transmits one cell per slot.
            for (o, q) in self.egress.iter_mut().enumerate() {
                max_egress = max_egress.max(q.len());
                if let Some(cell) = q.pop_front() {
                    debug_assert_eq!(cell.dst, o);
                    checker.record(cell.src, cell.dst, cell.seq);
                    if measuring {
                        delivered += 1;
                        if cell.inject_slot >= cfg.warmup_slots {
                            delay_hist.record((t - cell.inject_slot) as f64);
                        }
                    }
                }
            }

            // Arrivals go straight to their output queue (speedup N).
            arrivals.clear();
            traffic.arrivals(t, &mut arrivals);
            for a in &arrivals {
                let seq = self.stamper.stamp(a.src, a.dst);
                let mut cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, t);
                cell.grant_slot = t;
                self.next_id += 1;
                if measuring {
                    injected += 1;
                }
                self.egress[a.dst].push_back(cell);
            }
        }

        let denom = cfg.measure_slots as f64 * n as f64;
        SwitchReport {
            offered_load: injected as f64 / denom,
            throughput: delivered as f64 / denom,
            mean_delay: delay_hist.mean(),
            p99_delay: delay_hist.quantile(0.99),
            mean_request_grant: 0.0,
            injected,
            delivered,
            dropped: 0,
            reordered: checker.reordered(),
            max_voq_depth: 0,
            max_egress_depth: max_egress,
            delay_hist,
            grant_hist: Histogram::new(1.0, 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> RunConfig {
        RunConfig {
            warmup_slots: 1_000,
            measure_slots: 10_000,
        }
    }

    #[test]
    fn oq_sustains_full_load() {
        let mut sw = OqSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 0.98, &SeedSequence::new(1));
        let r = sw.run(&mut tr, cfg());
        assert!((r.throughput - 0.98).abs() < 0.02, "{}", r.throughput);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn oq_delay_is_a_lower_bound_for_voq() {
        use crate::voq_switch::run_uniform;
        use osmosis_sched::Flppr;
        let mut sw = OqSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 0.8, &SeedSequence::new(7));
        let oq = sw.run(&mut tr, cfg());
        let voq = run_uniform(|| Box::new(Flppr::osmosis(16, 1)), 0.8, 7, cfg());
        assert!(
            oq.mean_delay <= voq.mean_delay + 0.5,
            "OQ {} vs VOQ {}",
            oq.mean_delay,
            voq.mean_delay
        );
    }

    #[test]
    fn unloaded_oq_delay_is_one_slot() {
        let mut sw = OqSwitch::new(8);
        let mut tr = BernoulliUniform::new(8, 0.01, &SeedSequence::new(3));
        let r = sw.run(&mut tr, cfg());
        assert!((r.mean_delay - 1.0).abs() < 0.1, "{}", r.mean_delay);
    }
}
