//! Ideal output-queued switch — the classic electronic baseline.
//!
//! §III: "Traditional supercomputing interconnect fabrics have typically
//! used output-queued electronic switches with integrated buffers [16]."
//! An OQ switch moves every arriving cell into its output buffer within
//! the same slot (internal speedup N), making it trivially
//! work-conserving — the delay lower bound every input-queued design is
//! measured against. Its cost is what the paper's optics cannot provide:
//! a memory running N times faster than the line rate.

use crate::cell::Cell;
use crate::driven::{run_switch, CellSwitch};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// The ideal output-queued switch.
pub struct OqSwitch {
    n: usize,
    egress: Vec<VecDeque<Cell>>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
}

impl OqSwitch {
    /// An `n`-port OQ switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        OqSwitch {
            n,
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
        }
    }

    /// Run traffic and report.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for OqSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, _cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
    }

    // No arbitration stage: arrivals land in their output queue with
    // internal speedup N, so `mean_request_grant` stays 0.
    fn arbitrate<T: TraceSink>(&mut self, _slot: u64, _obs: &mut Observer<'_, T>) {}

    fn deliver<T: TraceSink>(&mut self, _slot: u64, obs: &mut Observer<'_, T>) {
        for (o, q) in self.egress.iter_mut().enumerate() {
            obs.note_egress_depth(q.len());
            if let Some(cell) = q.pop_front() {
                debug_assert_eq!(cell.dst, o);
                self.checker.record(cell.src, cell.dst, cell.seq);
                obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        // Arrivals go straight to their output queue (speedup N).
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let mut cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            cell.grant_slot = slot;
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            self.egress[a.dst].push_back(cell);
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }

    fn resident_cells(&self) -> Option<u64> {
        Some(self.egress.iter().map(VecDeque::len).sum::<usize>() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> EngineConfig {
        EngineConfig::new(1_000, 10_000)
    }

    #[test]
    fn oq_sustains_full_load() {
        let mut sw = OqSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 0.98, &SeedSequence::new(1));
        let r = sw.run(&mut tr, &cfg());
        assert!((r.throughput - 0.98).abs() < 0.02, "{}", r.throughput);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn oq_delay_is_a_lower_bound_for_voq() {
        use crate::voq_switch::run_uniform;
        use osmosis_sched::Flppr;
        let mut sw = OqSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 0.8, &SeedSequence::new(7));
        let oq = sw.run(&mut tr, &cfg());
        let voq = run_uniform(|| Box::new(Flppr::osmosis(16, 1)), 0.8, &cfg().with_seed(7));
        assert!(
            oq.mean_delay <= voq.mean_delay + 0.5,
            "OQ {} vs VOQ {}",
            oq.mean_delay,
            voq.mean_delay
        );
    }

    #[test]
    fn unloaded_oq_delay_is_one_slot() {
        let mut sw = OqSwitch::new(8);
        let mut tr = BernoulliUniform::new(8, 0.01, &SeedSequence::new(3));
        let r = sw.run(&mut tr, &cfg());
        assert!((r.mean_delay - 1.0).abs() < 0.1, "{}", r.mean_delay);
    }
}
