//! Single-FIFO input-queued switch — the head-of-line blocking baseline.
//!
//! §III: "Achieving high throughput requires the use of the well-known
//! Virtual Output Queuing (VOQ) method to resolve head-of-line blocking in
//! bufferless crossbars [17]." This model quantifies what VOQ buys: with
//! one FIFO per input only the head cell is eligible, and the classic
//! result (Karol et al.) caps saturated uniform throughput at 2−√2 ≈
//! 0.586.

use crate::cell::Cell;
use crate::driven::{run_switch, CellSwitch};
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// FIFO-input switch with round-robin output arbitration over head cells.
pub struct FifoSwitch {
    n: usize,
    fifos: Vec<VecDeque<Cell>>,
    egress: Vec<VecDeque<Cell>>,
    out_arb: Vec<RoundRobinArbiter>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    input_won: Vec<bool>,
    requesters: BitSet,
}

impl FifoSwitch {
    /// An `n`-port FIFO switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        FifoSwitch {
            n,
            fifos: (0..n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            out_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            input_won: vec![false; n],
            requesters: BitSet::new(n),
        }
    }

    /// Run traffic and report (same schema as the VOQ switch).
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for FifoSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, _cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
    }

    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        // Head-of-line matching: each output round-robins over the inputs
        // whose *head* cell wants it; an input can win once.
        let n = self.n;
        self.input_won.iter_mut().for_each(|w| *w = false);
        for o in 0..n {
            self.requesters.clear_all();
            let mut have = false;
            for i in 0..n {
                if !self.input_won[i] {
                    if let Some(head) = self.fifos[i].front() {
                        if head.dst == o {
                            self.requesters.set(i);
                            have = true;
                        }
                    }
                }
            }
            if !have {
                continue;
            }
            if let Some(i) = self.out_arb[o].arbitrate(&self.requesters) {
                self.out_arb[o].advance_past(i);
                self.input_won[i] = true;
                let mut cell = self.fifos[i]
                    .pop_front()
                    // lint:allow(panic-free): the output arbiter only
                    // considers inputs whose FIFO head requests this
                    // output, so a winner's FIFO is never empty
                    .expect("arbitration winner with an empty FIFO");
                cell.grant_slot = slot;
                obs.cell_granted(i, o, cell.inject_slot);
                self.egress[o].push_back(cell);
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, _slot: u64, obs: &mut Observer<'_, T>) {
        for (o, q) in self.egress.iter_mut().enumerate() {
            obs.note_egress_depth(q.len());
            if let Some(cell) = q.pop_front() {
                debug_assert_eq!(cell.dst, o);
                self.checker.record(cell.src, cell.dst, cell.seq);
                obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            self.fifos[a.src].push_back(cell);
            obs.note_queue_depth(self.fifos[a.src].len());
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }

    fn resident_cells(&self) -> Option<u64> {
        let queued: usize = self.fifos.iter().map(VecDeque::len).sum::<usize>()
            + self.egress.iter().map(VecDeque::len).sum::<usize>();
        Some(queued as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    #[test]
    fn hol_blocking_caps_throughput_near_0_586() {
        // The Karol limit for FIFO input queueing under saturated uniform
        // traffic: 2 − √2 ≈ 0.586.
        let mut sw = FifoSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 1.0, &SeedSequence::new(1));
        let r = sw.run(&mut tr, &EngineConfig::new(3_000, 20_000));
        assert!(
            (r.throughput - 0.586).abs() < 0.02,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn light_load_flows_fine() {
        let mut sw = FifoSwitch::new(8);
        let mut tr = BernoulliUniform::new(8, 0.2, &SeedSequence::new(2));
        let r = sw.run(&mut tr, &EngineConfig::new(500, 5_000));
        assert!((r.throughput - 0.2).abs() < 0.02);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn fifo_preserves_order_trivially() {
        let mut sw = FifoSwitch::new(4);
        let mut tr = BernoulliUniform::new(4, 0.9, &SeedSequence::new(3));
        let r = sw.run(&mut tr, &EngineConfig::new(500, 5_000));
        assert_eq!(r.reordered, 0);
    }
}
