//! Single-FIFO input-queued switch — the head-of-line blocking baseline.
//!
//! §III: "Achieving high throughput requires the use of the well-known
//! Virtual Output Queuing (VOQ) method to resolve head-of-line blocking in
//! bufferless crossbars [17]." This model quantifies what VOQ buys: with
//! one FIFO per input only the head cell is eligible, and the classic
//! result (Karol et al.) caps saturated uniform throughput at 2−√2 ≈
//! 0.586.

use crate::cell::Cell;
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::stats::Histogram;
use osmosis_traffic::{SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

use crate::voq_switch::{RunConfig, SwitchReport};

/// FIFO-input switch with round-robin output arbitration over head cells.
pub struct FifoSwitch {
    n: usize,
    fifos: Vec<VecDeque<Cell>>,
    egress: Vec<VecDeque<Cell>>,
    out_arb: Vec<RoundRobinArbiter>,
    stamper: SequenceStamper,
    next_id: u64,
}

impl FifoSwitch {
    /// An `n`-port FIFO switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        FifoSwitch {
            n,
            fifos: (0..n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            out_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            stamper: SequenceStamper::new(),
            next_id: 0,
        }
    }

    /// Run traffic and report (same schema as the VOQ switch).
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: RunConfig) -> SwitchReport {
        assert_eq!(traffic.ports(), self.n);
        let n = self.n;
        let total = cfg.warmup_slots + cfg.measure_slots;
        let mut delay_hist = Histogram::new(1.0, 16_384);
        let mut grant_hist = Histogram::new(1.0, 16_384);
        let mut checker = SequenceChecker::new();
        let (mut injected, mut delivered) = (0u64, 0u64);
        let mut max_fifo = 0usize;
        let mut max_egress = 0usize;
        let mut arrivals = Vec::with_capacity(n);
        let mut requesters = BitSet::new(n);

        for t in 0..total {
            let measuring = t >= cfg.warmup_slots;

            // Head-of-line matching: each output round-robins over the
            // inputs whose *head* cell wants it; an input can win once.
            let mut input_won = vec![false; n];
            for o in 0..n {
                requesters.clear_all();
                let mut have = false;
                for i in 0..n {
                    if !input_won[i] {
                        if let Some(head) = self.fifos[i].front() {
                            if head.dst == o {
                                requesters.set(i);
                                have = true;
                            }
                        }
                    }
                }
                if !have {
                    continue;
                }
                if let Some(i) = self.out_arb[o].arbitrate(&requesters) {
                    self.out_arb[o].advance_past(i);
                    input_won[i] = true;
                    let mut cell = self.fifos[i].pop_front().unwrap();
                    cell.grant_slot = t;
                    if measuring && cell.inject_slot >= cfg.warmup_slots {
                        grant_hist.record((t - cell.inject_slot) as f64);
                    }
                    self.egress[o].push_back(cell);
                }
            }

            for (o, q) in self.egress.iter_mut().enumerate() {
                max_egress = max_egress.max(q.len());
                if let Some(cell) = q.pop_front() {
                    debug_assert_eq!(cell.dst, o);
                    checker.record(cell.src, cell.dst, cell.seq);
                    if measuring {
                        delivered += 1;
                        if cell.inject_slot >= cfg.warmup_slots {
                            delay_hist.record((t - cell.inject_slot) as f64);
                        }
                    }
                }
            }

            arrivals.clear();
            traffic.arrivals(t, &mut arrivals);
            for a in &arrivals {
                let seq = self.stamper.stamp(a.src, a.dst);
                let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, t);
                self.next_id += 1;
                if measuring {
                    injected += 1;
                }
                self.fifos[a.src].push_back(cell);
                max_fifo = max_fifo.max(self.fifos[a.src].len());
            }
        }

        let denom = cfg.measure_slots as f64 * n as f64;
        SwitchReport {
            offered_load: injected as f64 / denom,
            throughput: delivered as f64 / denom,
            mean_delay: delay_hist.mean(),
            p99_delay: delay_hist.quantile(0.99),
            mean_request_grant: grant_hist.mean(),
            injected,
            delivered,
            dropped: 0,
            reordered: checker.reordered(),
            max_voq_depth: max_fifo,
            max_egress_depth: max_egress,
            delay_hist,
            grant_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    #[test]
    fn hol_blocking_caps_throughput_near_0_586() {
        // The Karol limit for FIFO input queueing under saturated uniform
        // traffic: 2 − √2 ≈ 0.586.
        let mut sw = FifoSwitch::new(16);
        let mut tr = BernoulliUniform::new(16, 1.0, &SeedSequence::new(1));
        let r = sw.run(
            &mut tr,
            RunConfig {
                warmup_slots: 3_000,
                measure_slots: 20_000,
            },
        );
        assert!(
            (r.throughput - 0.586).abs() < 0.02,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn light_load_flows_fine() {
        let mut sw = FifoSwitch::new(8);
        let mut tr = BernoulliUniform::new(8, 0.2, &SeedSequence::new(2));
        let r = sw.run(
            &mut tr,
            RunConfig {
                warmup_slots: 500,
                measure_slots: 5_000,
            },
        );
        assert!((r.throughput - 0.2).abs() < 0.02);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn fifo_preserves_order_trivially() {
        let mut sw = FifoSwitch::new(4);
        let mut tr = BernoulliUniform::new(4, 0.9, &SeedSequence::new(3));
        let r = sw.run(
            &mut tr,
            RunConfig {
                warmup_slots: 500,
                measure_slots: 5_000,
            },
        );
        assert_eq!(r.reordered, 0);
    }
}
