//! Reliable control channel for crossbar arbitration (the paper's
//! ref. [19]: Minkenberg, Abel, Gusat, "Reliable control protocol for
//! crossbar arbitration"; §IV.B: "we have shown how to make these
//! control channels reliable").
//!
//! The request/grant channel between the ingress adapters and the central
//! scheduler is a physical link with a real BER. A corrupted *request*
//! (VOQ increment) silently desynchronizes the scheduler's mirror of the
//! VOQ state: the scheduler undercounts and cells strand forever. A
//! corrupted *grant* makes the scheduler overcount departures: it later
//! issues grants for cells that were already counted out (phantoms) —
//! or the adapter misses the grant and the cell stalls.
//!
//! The protected protocol used here (after ref. [19]): CRC-protected
//! control cells (corruption = erasure, never silent corruption) plus a
//! **periodic absolute refresh** — every `refresh_period` slots the
//! adapter transmits its true VOQ occupancy vector, which overwrites the
//! scheduler's mirror. Incremental errors therefore persist at most one
//! refresh period. The experiment contrasts `naive` (increments only)
//! with `protected` and measures stranded cells and phantom grants.

use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::SimRng;

/// Protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlProtocol {
    /// Incremental updates only; a lost message desynchronizes forever.
    Naive,
    /// Incremental updates + periodic absolute refresh (ref. [19]).
    Protected {
        /// Slots between absolute refreshes.
        refresh_period: u64,
    },
}

/// Results of a control-channel run.
#[derive(Debug, Clone)]
pub struct ControlReport {
    /// Cells that arrived at the adapter.
    pub arrivals: u64,
    /// Cells actually transmitted on grants.
    pub served: u64,
    /// Grants that found no cell (scheduler overcounted).
    pub phantom_grants: u64,
    /// Cells still queued at the horizon although the scheduler's mirror
    /// showed empty (stranded by desynchronization).
    pub stranded: u64,
    /// Control messages lost to channel errors.
    pub control_losses: u64,
}

/// Simulate one adapter↔scheduler pair with `n` VOQs over a lossy
/// control channel for `slots` slots at `arrival_rate` cells/slot and
/// per-message loss probability `loss_p`.
pub fn run_control_channel(
    n: usize,
    protocol: ControlProtocol,
    arrival_rate: f64,
    loss_p: f64,
    slots: u64,
    seed: u64,
) -> ControlReport {
    assert!(n > 0);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut true_count = vec![0u64; n]; // adapter ground truth
    let mut mirror = vec![0u64; n]; // scheduler's belief
    let mut arb = RoundRobinArbiter::new(n);
    let mut requesters = BitSet::new(n);

    let mut report = ControlReport {
        arrivals: 0,
        served: 0,
        phantom_grants: 0,
        stranded: 0,
        control_losses: 0,
    };

    for t in 0..slots {
        // Scheduler side: grant one VOQ the mirror believes non-empty.
        requesters.clear_all();
        let mut have = false;
        for (o, &m) in mirror.iter().enumerate() {
            if m > 0 {
                requesters.set(o);
                have = true;
            }
        }
        if have {
            if let Some(o) = arb.arbitrate(&requesters) {
                arb.advance_past(o);
                mirror[o] -= 1;
                // The grant crosses the lossy channel to the adapter.
                if rng.coin(loss_p) {
                    report.control_losses += 1;
                    // Grant lost: the cell stays queued, the mirror is
                    // now low by one — a stranding error.
                } else if true_count[o] > 0 {
                    true_count[o] -= 1;
                    report.served += 1;
                } else {
                    report.phantom_grants += 1;
                }
            }
        }

        // Adapter side: arrivals; each sends an increment message.
        if rng.coin(arrival_rate) {
            let o = rng.index(n);
            true_count[o] += 1;
            report.arrivals += 1;
            if rng.coin(loss_p) {
                // Increment lost: the scheduler never learns of the cell.
                report.control_losses += 1;
            } else {
                mirror[o] += 1;
            }
        }

        // Protected: periodic absolute refresh overwrites the mirror.
        if let ControlProtocol::Protected { refresh_period } = protocol {
            if t % refresh_period == refresh_period - 1 {
                // The refresh itself is CRC-protected and retried within
                // the period; model: it may be lost this period (caught
                // next period).
                if !rng.coin(loss_p) {
                    mirror.copy_from_slice(&true_count);
                }
            }
        }
    }

    // Stranded: cells the adapter still holds where the mirror shows
    // nothing to grant.
    for o in 0..n {
        report.stranded += true_count[o].saturating_sub(mirror[o]);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_never_strands() {
        for proto in [
            ControlProtocol::Naive,
            ControlProtocol::Protected { refresh_period: 64 },
        ] {
            let r = run_control_channel(8, proto, 0.5, 0.0, 50_000, 1);
            assert_eq!(r.stranded, 0, "{proto:?}");
            assert_eq!(r.phantom_grants, 0);
            assert_eq!(r.control_losses, 0);
            assert!(r.served as f64 >= r.arrivals as f64 * 0.999);
        }
    }

    #[test]
    fn naive_protocol_strands_cells_on_a_lossy_channel() {
        let r = run_control_channel(8, ControlProtocol::Naive, 0.5, 1e-3, 200_000, 2);
        assert!(r.control_losses > 0);
        assert!(
            r.stranded > 10,
            "lost increments must strand cells: {}",
            r.stranded
        );
    }

    #[test]
    fn protected_protocol_recovers() {
        let r = run_control_channel(
            8,
            ControlProtocol::Protected { refresh_period: 64 },
            0.5,
            1e-3,
            200_000,
            2,
        );
        assert!(r.control_losses > 0, "errors did occur");
        // Any residual stranding is at most what the last (possibly
        // lost) refresh window left behind.
        assert!(
            r.stranded <= 2,
            "refresh must bound desynchronization: {}",
            r.stranded
        );
        assert!(r.served as f64 >= r.arrivals as f64 * 0.99);
    }

    #[test]
    fn protection_quality_scales_with_refresh_rate() {
        let slow = run_control_channel(
            8,
            ControlProtocol::Protected {
                refresh_period: 4_096,
            },
            0.5,
            5e-3,
            100_000,
            3,
        );
        let fast = run_control_channel(
            8,
            ControlProtocol::Protected { refresh_period: 64 },
            0.5,
            5e-3,
            100_000,
            3,
        );
        // Faster refresh serves more of the arrivals by the horizon.
        assert!(
            fast.served >= slow.served,
            "{} vs {}",
            fast.served,
            slow.served
        );
    }

    #[test]
    fn phantom_grants_counted() {
        // Very lossy grants: the mirror overcounts departures relative to
        // truth only when grants are lost *after* decrement; phantoms
        // appear when refresh resyncs counts upward and stale grants
        // fire. Just verify the counter machinery is consistent:
        // served + phantoms ≤ grants issued ≤ slots.
        let r = run_control_channel(
            4,
            ControlProtocol::Protected { refresh_period: 32 },
            0.8,
            5e-2,
            50_000,
            4,
        );
        assert!(r.served + r.phantom_grants <= 50_000);
        assert!(r.served > 0);
    }
}
