//! Burst (container / envelope) switching — the workaround the paper
//! rejects (§II, §VI.D).
//!
//! High-port-count centrally scheduled crossbars have been built by
//! aggregating packets into multi-cell bursts so the scheduler only has
//! to produce a matching every B cell cycles (refs. [5][6]). The price is
//! exactly what §VI.D states: *"Owing to the packet burst size, these
//! architectures exhibit latencies on the order of the packet burst time
//! for unloaded switches, which is not attractive for HPC interconnect
//! fabrics."* A lone cell must first wait for its container to be
//! assembled (or for the assembly timeout) and then for a burst-grained
//! grant.
//!
//! The model: VOQs aggregate cells into containers of `burst` cells; a
//! container becomes eligible when full **or** when its oldest cell has
//! waited `timeout` slots (the standard assembly rule). The scheduler
//! computes one matching every `burst` slots (it has B cycles to do so —
//! that is the whole point) and a granted container occupies its input
//! and output for the following `burst` slots.

use crate::cell::Cell;
use crate::voq_switch::{RunConfig, SwitchReport};
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::stats::Histogram;
use osmosis_traffic::{SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Burst-switching crossbar.
pub struct BurstSwitch {
    n: usize,
    /// Cells per container.
    burst: u64,
    /// Assembly timeout in slots.
    timeout: u64,
    voq: Vec<VecDeque<Cell>>,
    egress: Vec<VecDeque<Cell>>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    /// Remaining busy slots per input / output (container in flight).
    in_busy: Vec<u64>,
    out_busy: Vec<u64>,
    stamper: SequenceStamper,
    next_id: u64,
}

impl BurstSwitch {
    /// An `n`-port burst switch with `burst` cells per container and the
    /// given assembly timeout.
    pub fn new(n: usize, burst: u64, timeout: u64) -> Self {
        assert!(n > 0 && burst >= 1);
        BurstSwitch {
            n,
            burst,
            timeout,
            voq: (0..n * n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            grant_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            accept_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            in_busy: vec![0; n],
            out_busy: vec![0; n],
            stamper: SequenceStamper::new(),
            next_id: 0,
        }
    }

    fn container_eligible(&self, i: usize, o: usize, t: u64) -> bool {
        let q = &self.voq[i * self.n + o];
        match q.front() {
            None => false,
            Some(head) => {
                q.len() as u64 >= self.burst || t.saturating_sub(head.inject_slot) >= self.timeout
            }
        }
    }

    /// Run traffic and report (same schema as the VOQ switch).
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: RunConfig) -> SwitchReport {
        assert_eq!(traffic.ports(), self.n);
        let n = self.n;
        let total = cfg.warmup_slots + cfg.measure_slots;
        let mut delay_hist = Histogram::new(1.0, 65_536);
        let mut grant_hist = Histogram::new(1.0, 65_536);
        let mut checker = SequenceChecker::new();
        let (mut injected, mut delivered) = (0u64, 0u64);
        let mut max_voq = 0usize;
        let mut max_egress = 0usize;
        let mut arrivals = Vec::with_capacity(n);
        let mut requesters = BitSet::new(n);
        let mut grants_to_input: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();

        for t in 0..total {
            let measuring = t >= cfg.warmup_slots;

            // Ports tied up by a container in flight count down.
            for b in self.in_busy.iter_mut().chain(self.out_busy.iter_mut()) {
                *b = b.saturating_sub(1);
            }

            // A matching is computed only on burst boundaries — and the
            // scheduler had `burst` cycles to compute it, so it can
            // afford a full log2(N)-iteration matching (that relaxation
            // is the entire point of container switching).
            if t % self.burst == 0 {
                let iterations = (n.max(2) as f64).log2().ceil() as usize;
                let mut in_matched = vec![false; n];
                let mut out_matched = vec![false; n];
                for _ in 0..iterations {
                    for g in grants_to_input.iter_mut() {
                        g.clear_all();
                    }
                    let mut any = false;
                    for o in 0..n {
                        if out_matched[o] || self.out_busy[o] > 0 {
                            continue;
                        }
                        requesters.clear_all();
                        let mut have = false;
                        for i in 0..n {
                            if !in_matched[i]
                                && self.in_busy[i] == 0
                                && self.container_eligible(i, o, t)
                            {
                                requesters.set(i);
                                have = true;
                            }
                        }
                        if !have {
                            continue;
                        }
                        if let Some(i) = self.grant_arb[o].arbitrate(&requesters) {
                            grants_to_input[i].set(o);
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                    for i in 0..n {
                        if in_matched[i]
                            || self.in_busy[i] > 0
                            || grants_to_input[i].is_empty()
                        {
                            continue;
                        }
                        if let Some(o) =
                            self.accept_arb[i].arbitrate(&grants_to_input[i])
                        {
                            in_matched[i] = true;
                            out_matched[o] = true;
                            self.grant_arb[o].advance_past(i);
                            self.accept_arb[i].advance_past(o);
                            // Launch the container: up to `burst` cells
                            // leave back to back over the next slots.
                            let q = &mut self.voq[i * n + o];
                            let take = (q.len() as u64).min(self.burst);
                            for k in 0..take {
                                let mut cell = q.pop_front().unwrap();
                                cell.grant_slot = t + k;
                                if measuring && cell.inject_slot >= cfg.warmup_slots {
                                    grant_hist
                                        .record((t + k - cell.inject_slot) as f64);
                                }
                                self.egress[o].push_back(cell);
                            }
                            self.in_busy[i] = self.burst;
                            self.out_busy[o] = self.burst;
                        }
                    }
                }
            }

            // Egress drains one cell per slot.
            for (o, q) in self.egress.iter_mut().enumerate() {
                max_egress = max_egress.max(q.len());
                if let Some(cell) = q.pop_front() {
                    debug_assert_eq!(cell.dst, o);
                    checker.record(cell.src, cell.dst, cell.seq);
                    if measuring {
                        delivered += 1;
                        if cell.inject_slot >= cfg.warmup_slots {
                            delay_hist.record((t - cell.inject_slot) as f64);
                        }
                    }
                }
            }

            // Arrivals.
            arrivals.clear();
            traffic.arrivals(t, &mut arrivals);
            for a in &arrivals {
                let seq = self.stamper.stamp(a.src, a.dst);
                let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, t);
                self.next_id += 1;
                if measuring {
                    injected += 1;
                }
                self.voq[a.src * n + a.dst].push_back(cell);
                max_voq = max_voq.max(self.voq[a.src * n + a.dst].len());
            }
        }

        let denom = cfg.measure_slots as f64 * n as f64;
        SwitchReport {
            offered_load: injected as f64 / denom,
            throughput: delivered as f64 / denom,
            mean_delay: delay_hist.mean(),
            p99_delay: delay_hist.quantile(0.99),
            mean_request_grant: grant_hist.mean(),
            injected,
            delivered,
            dropped: 0,
            reordered: checker.reordered(),
            max_voq_depth: max_voq,
            max_egress_depth: max_egress,
            delay_hist,
            grant_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> RunConfig {
        RunConfig {
            warmup_slots: 2_000,
            measure_slots: 10_000,
        }
    }

    #[test]
    fn unloaded_latency_is_on_the_order_of_the_burst_time() {
        // §VI.D's disqualifier: a lone cell waits out the assembly
        // timeout (≈ the burst time) before anything moves.
        let burst = 16u64;
        let mut sw = BurstSwitch::new(8, burst, burst);
        let mut tr = BernoulliUniform::new(8, 0.02, &SeedSequence::new(1));
        let r = sw.run(&mut tr, cfg());
        assert!(
            r.mean_delay >= burst as f64 * 0.8,
            "delay {} vs burst {burst}",
            r.mean_delay
        );
    }

    #[test]
    fn bigger_bursts_mean_bigger_unloaded_latency() {
        let measure = |burst| {
            let mut sw = BurstSwitch::new(8, burst, burst);
            let mut tr = BernoulliUniform::new(8, 0.02, &SeedSequence::new(2));
            sw.run(&mut tr, cfg()).mean_delay
        };
        let b4 = measure(4);
        let b32 = measure(32);
        assert!(b32 > b4 * 3.0, "{b4} vs {b32}");
    }

    #[test]
    fn keeps_order_and_loses_nothing() {
        let mut sw = BurstSwitch::new(8, 8, 8);
        let mut tr = BernoulliUniform::new(8, 0.6, &SeedSequence::new(3));
        let r = sw.run(&mut tr, cfg());
        assert_eq!(r.reordered, 0);
        assert_eq!(r.dropped, 0);
        assert!((r.throughput - 0.6).abs() < 0.05, "{}", r.throughput);
    }

    #[test]
    fn burst_one_degenerates_to_cell_switching() {
        let mut sw = BurstSwitch::new(8, 1, 1);
        let mut tr = BernoulliUniform::new(8, 0.05, &SeedSequence::new(4));
        let r = sw.run(&mut tr, cfg());
        assert!(r.mean_delay < 3.0, "{}", r.mean_delay);
    }
}
