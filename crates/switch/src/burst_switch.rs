//! Burst (container / envelope) switching — the workaround the paper
//! rejects (§II, §VI.D).
//!
//! High-port-count centrally scheduled crossbars have been built by
//! aggregating packets into multi-cell bursts so the scheduler only has
//! to produce a matching every B cell cycles (refs. [5][6]). The price is
//! exactly what §VI.D states: *"Owing to the packet burst size, these
//! architectures exhibit latencies on the order of the packet burst time
//! for unloaded switches, which is not attractive for HPC interconnect
//! fabrics."* A lone cell must first wait for its container to be
//! assembled (or for the assembly timeout) and then for a burst-grained
//! grant.
//!
//! The model: VOQs aggregate cells into containers of `burst` cells; a
//! container becomes eligible when full **or** when its oldest cell has
//! waited `timeout` slots (the standard assembly rule). The scheduler
//! computes one matching every `burst` slots (it has B cycles to do so —
//! that is the whole point) and a granted container occupies its input
//! and output for the following `burst` slots.

use crate::cell::Cell;
use crate::driven::{run_switch, CellSwitch};
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Burst-switching crossbar.
pub struct BurstSwitch {
    n: usize,
    /// Cells per container.
    burst: u64,
    /// Assembly timeout in slots.
    timeout: u64,
    voq: Vec<VecDeque<Cell>>,
    egress: Vec<VecDeque<Cell>>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    /// Remaining busy slots per input / output (container in flight).
    in_busy: Vec<u64>,
    out_busy: Vec<u64>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    requesters: BitSet,
    grants_to_input: Vec<BitSet>,
    /// Per-boundary matching scratch, cleared at each burst boundary.
    in_matched: Vec<bool>,
    out_matched: Vec<bool>,
}

impl BurstSwitch {
    /// An `n`-port burst switch with `burst` cells per container and the
    /// given assembly timeout.
    pub fn new(n: usize, burst: u64, timeout: u64) -> Self {
        assert!(n > 0 && burst >= 1);
        BurstSwitch {
            n,
            burst,
            timeout,
            voq: (0..n * n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            grant_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            accept_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            in_busy: vec![0; n],
            out_busy: vec![0; n],
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            requesters: BitSet::new(n),
            grants_to_input: (0..n).map(|_| BitSet::new(n)).collect(),
            in_matched: vec![false; n],
            out_matched: vec![false; n],
        }
    }

    fn container_eligible(&self, i: usize, o: usize, t: u64) -> bool {
        let q = &self.voq[i * self.n + o];
        match q.front() {
            None => false,
            Some(head) => {
                q.len() as u64 >= self.burst || t.saturating_sub(head.inject_slot) >= self.timeout
            }
        }
    }

    /// Run traffic and report (same schema as the VOQ switch).
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for BurstSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, _cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
    }

    fn arbitrate<T: TraceSink>(&mut self, t: u64, obs: &mut Observer<'_, T>) {
        let n = self.n;

        // Ports tied up by a container in flight count down.
        for b in self.in_busy.iter_mut().chain(self.out_busy.iter_mut()) {
            *b = b.saturating_sub(1);
        }

        // A matching is computed only on burst boundaries — and the
        // scheduler had `burst` cycles to compute it, so it can afford a
        // full log2(N)-iteration matching (that relaxation is the entire
        // point of container switching).
        if t.is_multiple_of(self.burst) {
            let iterations = (n.max(2) as f64).log2().ceil() as usize;
            self.in_matched.fill(false);
            self.out_matched.fill(false);
            for _ in 0..iterations {
                for g in self.grants_to_input.iter_mut() {
                    g.clear_all();
                }
                let mut any = false;
                for o in 0..n {
                    if self.out_matched[o] || self.out_busy[o] > 0 {
                        continue;
                    }
                    self.requesters.clear_all();
                    let mut have = false;
                    for i in 0..n {
                        if !self.in_matched[i]
                            && self.in_busy[i] == 0
                            && self.container_eligible(i, o, t)
                        {
                            self.requesters.set(i);
                            have = true;
                        }
                    }
                    if !have {
                        continue;
                    }
                    if let Some(i) = self.grant_arb[o].arbitrate(&self.requesters) {
                        self.grants_to_input[i].set(o);
                        any = true;
                    }
                }
                if !any {
                    break;
                }
                for i in 0..n {
                    if self.in_matched[i]
                        || self.in_busy[i] > 0
                        || self.grants_to_input[i].is_empty()
                    {
                        continue;
                    }
                    if let Some(o) = self.accept_arb[i].arbitrate(&self.grants_to_input[i]) {
                        self.in_matched[i] = true;
                        self.out_matched[o] = true;
                        self.grant_arb[o].advance_past(i);
                        self.accept_arb[i].advance_past(o);
                        // Launch the container: up to `burst` cells leave
                        // back to back over the next slots.
                        let q = &mut self.voq[i * n + o];
                        let take = (q.len() as u64).min(self.burst);
                        for k in 0..take {
                            let Some(mut cell) = q.pop_front() else {
                                break;
                            };
                            cell.grant_slot = t + k;
                            obs.cell_granted_with_wait(
                                i,
                                o,
                                cell.inject_slot,
                                t + k - cell.inject_slot,
                            );
                            self.egress[o].push_back(cell);
                        }
                        self.in_busy[i] = self.burst;
                        self.out_busy[o] = self.burst;
                    }
                }
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, _slot: u64, obs: &mut Observer<'_, T>) {
        // Egress drains one cell per slot.
        for (o, q) in self.egress.iter_mut().enumerate() {
            obs.note_egress_depth(q.len());
            if let Some(cell) = q.pop_front() {
                debug_assert_eq!(cell.dst, o);
                self.checker.record(cell.src, cell.dst, cell.seq);
                obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            let q = &mut self.voq[a.src * self.n + a.dst];
            q.push_back(cell);
            obs.note_queue_depth(q.len());
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }

    fn resident_cells(&self) -> Option<u64> {
        let queued: usize = self.voq.iter().map(VecDeque::len).sum::<usize>()
            + self.egress.iter().map(VecDeque::len).sum::<usize>();
        Some(queued as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> EngineConfig {
        EngineConfig::new(2_000, 10_000)
    }

    #[test]
    fn unloaded_latency_is_on_the_order_of_the_burst_time() {
        // §VI.D's disqualifier: a lone cell waits out the assembly
        // timeout (≈ the burst time) before anything moves.
        let burst = 16u64;
        let mut sw = BurstSwitch::new(8, burst, burst);
        let mut tr = BernoulliUniform::new(8, 0.02, &SeedSequence::new(1));
        let r = sw.run(&mut tr, &cfg());
        assert!(
            r.mean_delay >= burst as f64 * 0.8,
            "delay {} vs burst {burst}",
            r.mean_delay
        );
    }

    #[test]
    fn bigger_bursts_mean_bigger_unloaded_latency() {
        let measure = |burst| {
            let mut sw = BurstSwitch::new(8, burst, burst);
            let mut tr = BernoulliUniform::new(8, 0.02, &SeedSequence::new(2));
            sw.run(&mut tr, &cfg()).mean_delay
        };
        let b4 = measure(4);
        let b32 = measure(32);
        assert!(b32 > b4 * 3.0, "{b4} vs {b32}");
    }

    #[test]
    fn keeps_order_and_loses_nothing() {
        let mut sw = BurstSwitch::new(8, 8, 8);
        let mut tr = BernoulliUniform::new(8, 0.6, &SeedSequence::new(3));
        let r = sw.run(&mut tr, &cfg());
        assert_eq!(r.reordered, 0);
        assert_eq!(r.dropped, 0);
        assert!((r.throughput - 0.6).abs() < 0.05, "{}", r.throughput);
    }

    #[test]
    fn burst_one_degenerates_to_cell_switching() {
        let mut sw = BurstSwitch::new(8, 1, 1);
        let mut tr = BernoulliUniform::new(8, 0.05, &SeedSequence::new(4));
        let r = sw.run(&mut tr, &cfg());
        assert!(r.mean_delay < 3.0, "{}", r.mean_delay);
    }
}
