//! Multicast switching on the broadcast-and-select datapath.
//!
//! The OSMOSIS crossbar is *inherently multicast-capable*: the star
//! couplers broadcast every input to all 128 switching modules, so any
//! number of outputs can select the same input in the same slot at no
//! extra optical cost (§V's architecture; verified in
//! `osmosis_phy::datapath`). This module adds the scheduling side — a
//! fanout-splitting multicast scheduler: each input exposes the head of
//! its multicast queue; per slot every free output claims at most one
//! transmitting input, an input may serve *many* outputs at once, and a
//! cell retires when its residue (unserved destinations) is empty.
//! Fanout splitting across slots is the standard technique (cf. ESLIP).
//!
//! The randomized workload runner is a *self-driven* [`SlottedModel`]
//! (its traffic comes from internal seeded streams, not a `TrafficGen`),
//! so it runs on the same engine as every other simulator. In its
//! [`EngineReport`]: `delivered`/`mean_delay` are completions and
//! completion latency, `throughput` is overridden to the output-line
//! utilization (copies per output per slot), and
//! `extra("copies_delivered")` / `extra("mean_transmissions")` carry the
//! multicast-specific counters.

use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::engine::{
    run_model, EngineConfig, EngineReport, Observer, SlottedModel, TraceSink,
};
use osmosis_sim::{SeedSequence, SimRng};
use std::collections::VecDeque;

/// A multicast cell: one source, a set of destinations.
#[derive(Debug, Clone)]
pub struct McCell {
    /// Source port.
    pub src: usize,
    /// Remaining (unserved) destinations.
    pub residue: Vec<bool>,
    /// Injection slot.
    pub inject_slot: u64,
    /// Original fanout.
    pub fanout: usize,
}

/// Fanout-splitting multicast switch.
pub struct MulticastSwitch {
    n: usize,
    queues: Vec<VecDeque<McCell>>,
    out_arb: Vec<RoundRobinArbiter>,
    tx_count: Vec<u64>,                 // scratch: transmissions per head cell
    requesters_per_output: Vec<BitSet>, // scratch, cleared each tick
    served: Vec<Vec<usize>>,            // scratch, cleared each tick
    /// Cells whose fanout completed in the last `tick`, until the next.
    completions: Vec<McCell>,
}

impl MulticastSwitch {
    /// An `n`-port multicast switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        MulticastSwitch {
            n,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            out_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            tx_count: vec![0; n],
            requesters_per_output: (0..n).map(|_| BitSet::new(n)).collect(),
            served: (0..n).map(|_| Vec::new()).collect(),
            completions: Vec::new(),
        }
    }

    /// Inject a multicast cell at `src` toward the destination set.
    pub fn inject(&mut self, src: usize, dsts: &[usize], slot: u64) {
        assert!(src < self.n);
        let mut residue = vec![false; self.n];
        let mut fanout = 0;
        for &d in dsts {
            assert!(d < self.n);
            if !residue[d] {
                residue[d] = true;
                fanout += 1;
            }
        }
        assert!(fanout > 0, "empty destination set");
        self.queues[src].push_back(McCell {
            src,
            residue,
            inject_slot: slot,
            fanout,
        });
    }

    /// One slot: every free output claims one input whose head cell still
    /// owes it a copy; heads transmit to all claiming outputs at once.
    /// Returns copies delivered; cells that completed their fanout are in
    /// `self.completions` until the next tick. All working storage is
    /// persistent scratch — the per-slot path does not allocate.
    pub fn tick(&mut self, _slot: u64) -> u64 {
        let n = self.n;
        self.completions.clear();
        // Which inputs want which outputs (head cells only).
        for req in self.requesters_per_output.iter_mut() {
            req.clear_all();
        }
        let mut any = false;
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(head) = q.front() {
                for (o, req) in self.requesters_per_output.iter_mut().enumerate() {
                    if head.residue[o] {
                        req.set(i);
                        any = true;
                    }
                }
            }
        }
        if !any {
            return 0;
        }
        // Each output picks one input round-robin. Many outputs may pick
        // the same input — that is the broadcast advantage.
        let mut copies = 0u64;
        self.tx_count.fill(0);
        for s in self.served.iter_mut() {
            s.clear();
        }
        for (o, req) in self.requesters_per_output.iter().enumerate() {
            if req.is_empty() {
                continue;
            }
            if let Some(i) = self.out_arb[o].arbitrate(req) {
                self.out_arb[o].advance_past(i);
                self.served[i].push(o);
                copies += 1;
            }
        }
        for i in 0..n {
            if self.served[i].is_empty() {
                continue;
            }
            let head = self.queues[i]
                .front_mut()
                // lint:allow(panic-free): `served` only lists inputs whose
                // head cell won at least one output this slot
                .expect("served input with an empty queue");
            for &o in &self.served[i] {
                head.residue[o] = false;
            }
            self.tx_count[i] += 1;
            if head.residue.iter().all(|&r| !r) {
                if let Some(done) = self.queues[i].pop_front() {
                    self.completions.push(done);
                }
            }
        }
        copies
    }
}

/// The randomized multicast workload as a self-driven engine model: each
/// input injects cells with the given fanout at `rate` cells/slot, drawn
/// from per-input seeded streams.
pub struct MulticastWorkload {
    sw: MulticastSwitch,
    rngs: Vec<SimRng>,
    fanout: usize,
    rate: f64,
    copies: u64,
    total_tx: u64,
}

impl MulticastWorkload {
    /// An `n`-port workload; RNG streams come from `cfg.seed` at
    /// configure time.
    pub fn new(n: usize, fanout: usize, rate: f64) -> Self {
        assert!(fanout >= 1 && fanout <= n);
        MulticastWorkload {
            sw: MulticastSwitch::new(n),
            rngs: Vec::new(),
            fanout,
            rate,
            copies: 0,
            total_tx: 0,
        }
    }
}

impl SlottedModel for MulticastWorkload {
    fn ports(&self) -> usize {
        self.sw.n
    }

    fn configure(&mut self, cfg: &EngineConfig) {
        let seeds = SeedSequence::new(cfg.seed);
        self.rngs = (0..self.sw.n)
            .map(|i| seeds.stream("mc", i as u64))
            .collect();
        self.copies = 0;
        self.total_tx = 0;
    }

    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        let c = self.sw.tick(slot);
        self.copies += c;
        for cell in &self.sw.completions {
            obs.cell_delivered(cell.src, cell.inject_slot);
        }
        self.total_tx += self.sw.tx_count.iter().sum::<u64>();
    }

    fn deliver<T: TraceSink>(&mut self, _slot: u64, _obs: &mut Observer<'_, T>) {}

    fn inject<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        let n = self.sw.n;
        for i in 0..n {
            if self.rngs[i].coin(self.rate) {
                // A random fanout-sized destination set.
                let mut dsts = Vec::with_capacity(self.fanout);
                while dsts.len() < self.fanout {
                    let d = self.rngs[i].index(n);
                    if !dsts.contains(&d) {
                        dsts.push(d);
                    }
                }
                self.sw.inject(i, &dsts, slot);
                obs.cell_injected(i, dsts[0]);
                obs.note_queue_depth(self.sw.queues[i].len());
            }
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        // Throughput for a multicast run is output-line utilization:
        // copies (not completions) per output per slot.
        let denom = (report.measured_slots as f64 * self.sw.n as f64).max(1.0);
        report.throughput = self.copies as f64 / denom;
        report.set_extra("copies_delivered", self.copies as f64);
        report.set_extra(
            "mean_transmissions",
            if report.delivered == 0 {
                0.0
            } else {
                self.total_tx as f64 / report.delivered as f64
            },
        );
    }
}

/// Run a randomized multicast workload for `slots` slots (no warm-up).
pub fn run_multicast(n: usize, fanout: usize, rate: f64, slots: u64, seed: u64) -> EngineReport {
    let cfg = EngineConfig::new(0, slots).with_seed(seed);
    run_model(&mut MulticastWorkload::new(n, fanout, rate), &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_broadcast_completes_in_one_slot() {
        // One input, all 8 outputs free: the broadcast-and-select fabric
        // serves the full fanout in a single transmission.
        let mut sw = MulticastSwitch::new(8);
        sw.inject(0, &[0, 1, 2, 3, 4, 5, 6, 7], 0);
        let copies = sw.tick(1);
        assert_eq!(copies, 8);
        assert_eq!(sw.completions.len(), 1);
        assert_eq!(sw.completions[0].fanout, 8);
    }

    #[test]
    fn contending_multicasts_split_their_fanout() {
        // Two inputs multicast to the same pair of outputs: each output
        // picks one input per slot, so each cell completes over ~2 slots.
        let mut sw = MulticastSwitch::new(4);
        sw.inject(0, &[2, 3], 0);
        sw.inject(1, &[2, 3], 0);
        let mut done = 0;
        for t in 1..6 {
            sw.tick(t);
            done += sw.completions.len();
        }
        assert_eq!(done, 2, "both complete via fanout splitting");
    }

    #[test]
    fn unicast_degenerates_to_crossbar() {
        let r = run_multicast(8, 1, 0.5, 5_000, 1);
        assert!(r.delivered > 0);
        assert!((r.extra("mean_transmissions").unwrap() - 1.0).abs() < 0.05);
        // Unicast load 0.5: copies/output/slot ≈ 0.5.
        assert!((r.throughput - 0.5).abs() < 0.05);
    }

    #[test]
    fn broadcast_fanout_multiplies_output_load() {
        // Fanout 4 at injection rate 0.1: copy load ≈ 0.4 per output.
        let r = run_multicast(8, 4, 0.1, 10_000, 2);
        assert!((r.throughput - 0.4).abs() < 0.05, "{}", r.throughput);
        assert!(
            r.extra("mean_transmissions").unwrap() < 2.5,
            "broadcast serves most copies in few transmissions: {}",
            r.extra("mean_transmissions").unwrap()
        );
    }

    #[test]
    fn conservation_under_saturation() {
        let r = run_multicast(8, 3, 0.25, 20_000, 3);
        // Copy demand = 0.25 × 3 = 0.75 per output: below capacity, so
        // completions keep pace with injections.
        assert!(
            r.delivered as f64 >= r.injected as f64 * 0.95,
            "{} of {}",
            r.delivered,
            r.injected
        );
        // Copy accounting: completed cells account for exactly 3 copies
        // each; cells still in flight may have delivered a partial
        // residue.
        let copies = r.extra("copies_delivered").unwrap() as u64;
        assert!(copies >= r.delivered * 3);
        assert!(copies <= r.injected * 3);
    }

    #[test]
    fn multicast_runs_are_deterministic_per_seed() {
        let a = run_multicast(8, 2, 0.3, 3_000, 11);
        let b = run_multicast(8, 2, 0.3, 3_000, 11);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = run_multicast(8, 2, 0.3, 3_000, 12);
        assert_ne!(a.delivered, c.delivered);
    }

    #[test]
    #[should_panic(expected = "empty destination set")]
    fn empty_destination_rejected() {
        let mut sw = MulticastSwitch::new(4);
        sw.inject(0, &[], 0);
    }
}
