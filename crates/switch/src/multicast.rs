//! Multicast switching on the broadcast-and-select datapath.
//!
//! The OSMOSIS crossbar is *inherently multicast-capable*: the star
//! couplers broadcast every input to all 128 switching modules, so any
//! number of outputs can select the same input in the same slot at no
//! extra optical cost (§V's architecture; verified in
//! `osmosis_phy::datapath`). This module adds the scheduling side — a
//! fanout-splitting multicast scheduler: each input exposes the head of
//! its multicast queue; per slot every free output claims at most one
//! transmitting input, an input may serve *many* outputs at once, and a
//! cell retires when its residue (unserved destinations) is empty.
//! Fanout splitting across slots is the standard technique (cf. ESLIP).

use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::stats::Histogram;
use osmosis_sim::{SeedSequence, SimRng};
use std::collections::VecDeque;

/// A multicast cell: one source, a set of destinations.
#[derive(Debug, Clone)]
pub struct McCell {
    /// Source port.
    pub src: usize,
    /// Remaining (unserved) destinations.
    pub residue: Vec<bool>,
    /// Injection slot.
    pub inject_slot: u64,
    /// Original fanout.
    pub fanout: usize,
}

/// Multicast run results.
#[derive(Debug, Clone)]
pub struct MulticastReport {
    /// Multicast cells injected.
    pub injected: u64,
    /// Multicast cells fully delivered (all destinations reached).
    pub completed: u64,
    /// Destination-copies delivered.
    pub copies_delivered: u64,
    /// Mean completion latency in slots (injection → last copy).
    pub mean_completion: f64,
    /// Mean number of slots a cell transmits in (1 = no splitting).
    pub mean_transmissions: f64,
    /// Output-line utilization (copies per output per slot).
    pub output_utilization: f64,
}

/// Fanout-splitting multicast switch.
pub struct MulticastSwitch {
    n: usize,
    queues: Vec<VecDeque<McCell>>,
    out_arb: Vec<RoundRobinArbiter>,
    tx_count: Vec<u64>, // scratch: transmissions per head cell
}

impl MulticastSwitch {
    /// An `n`-port multicast switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        MulticastSwitch {
            n,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            out_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            tx_count: vec![0; n],
        }
    }

    /// Inject a multicast cell at `src` toward the destination set.
    pub fn inject(&mut self, src: usize, dsts: &[usize], slot: u64) {
        assert!(src < self.n);
        let mut residue = vec![false; self.n];
        let mut fanout = 0;
        for &d in dsts {
            assert!(d < self.n);
            if !residue[d] {
                residue[d] = true;
                fanout += 1;
            }
        }
        assert!(fanout > 0, "empty destination set");
        self.queues[src].push_back(McCell {
            src,
            residue,
            inject_slot: slot,
            fanout,
        });
    }

    /// One slot: every free output claims one input whose head cell still
    /// owes it a copy; heads transmit to all claiming outputs at once.
    /// Returns (copies delivered, completions as (cell, slot)).
    pub fn tick(&mut self, _slot: u64) -> (u64, Vec<McCell>) {
        let n = self.n;
        // Which inputs want which outputs (head cells only).
        let mut requesters_per_output: Vec<BitSet> =
            (0..n).map(|_| BitSet::new(n)).collect();
        let mut any = false;
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(head) = q.front() {
                for o in 0..n {
                    if head.residue[o] {
                        requesters_per_output[o].set(i);
                        any = true;
                    }
                }
            }
        }
        if !any {
            return (0, Vec::new());
        }
        // Each output picks one input round-robin. Many outputs may pick
        // the same input — that is the broadcast advantage.
        let mut copies = 0u64;
        self.tx_count.fill(0);
        let mut served: Vec<Vec<usize>> = vec![Vec::new(); n];
        for o in 0..n {
            if requesters_per_output[o].is_empty() {
                continue;
            }
            if let Some(i) = self.out_arb[o].arbitrate(&requesters_per_output[o]) {
                self.out_arb[o].advance_past(i);
                served[i].push(o);
                copies += 1;
            }
        }
        let mut completions = Vec::new();
        for i in 0..n {
            if served[i].is_empty() {
                continue;
            }
            let head = self.queues[i].front_mut().unwrap();
            for &o in &served[i] {
                head.residue[o] = false;
            }
            self.tx_count[i] += 1;
            if head.residue.iter().all(|&r| !r) {
                completions.push(self.queues[i].pop_front().unwrap());
            }
        }
        (copies, completions)
    }
}

/// Run a randomized multicast workload: each input injects cells with
/// the given fanout at `rate` cells/slot.
pub fn run_multicast(
    n: usize,
    fanout: usize,
    rate: f64,
    slots: u64,
    seed: u64,
) -> MulticastReport {
    assert!(fanout >= 1 && fanout <= n);
    let seeds = SeedSequence::new(seed);
    let mut sw = MulticastSwitch::new(n);
    let mut rngs: Vec<SimRng> = (0..n).map(|i| seeds.stream("mc", i as u64)).collect();
    let mut completion_hist = Histogram::new(1.0, 65_536);
    let (mut injected, mut completed, mut copies) = (0u64, 0u64, 0u64);
    let mut total_tx = 0u64;

    for t in 0..slots {
        let (c, done) = sw.tick(t);
        copies += c;
        for cell in done {
            completed += 1;
            completion_hist.record((t - cell.inject_slot) as f64);
        }
        total_tx += sw.tx_count.iter().sum::<u64>();
        for i in 0..n {
            if rngs[i].coin(rate) {
                // A random fanout-sized destination set.
                let mut dsts = Vec::with_capacity(fanout);
                while dsts.len() < fanout {
                    let d = rngs[i].index(n);
                    if !dsts.contains(&d) {
                        dsts.push(d);
                    }
                }
                sw.inject(i, &dsts, t);
                injected += 1;
            }
        }
    }

    MulticastReport {
        injected,
        completed,
        copies_delivered: copies,
        mean_completion: completion_hist.mean(),
        mean_transmissions: if completed == 0 {
            0.0
        } else {
            total_tx as f64 / completed as f64
        },
        output_utilization: copies as f64 / (slots as f64 * n as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_broadcast_completes_in_one_slot() {
        // One input, all 8 outputs free: the broadcast-and-select fabric
        // serves the full fanout in a single transmission.
        let mut sw = MulticastSwitch::new(8);
        sw.inject(0, &[0, 1, 2, 3, 4, 5, 6, 7], 0);
        let (copies, done) = sw.tick(1);
        assert_eq!(copies, 8);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].fanout, 8);
    }

    #[test]
    fn contending_multicasts_split_their_fanout() {
        // Two inputs multicast to the same pair of outputs: each output
        // picks one input per slot, so each cell completes over ~2 slots.
        let mut sw = MulticastSwitch::new(4);
        sw.inject(0, &[2, 3], 0);
        sw.inject(1, &[2, 3], 0);
        let mut done = 0;
        for t in 1..6 {
            done += sw.tick(t).1.len();
        }
        assert_eq!(done, 2, "both complete via fanout splitting");
    }

    #[test]
    fn unicast_degenerates_to_crossbar() {
        let r = run_multicast(8, 1, 0.5, 5_000, 1);
        assert!(r.completed > 0);
        assert!((r.mean_transmissions - 1.0).abs() < 0.05);
        // Unicast load 0.5: copies/output/slot ≈ 0.5.
        assert!((r.output_utilization - 0.5).abs() < 0.05);
    }

    #[test]
    fn broadcast_fanout_multiplies_output_load() {
        // Fanout 4 at injection rate 0.1: copy load ≈ 0.4 per output.
        let r = run_multicast(8, 4, 0.1, 10_000, 2);
        assert!((r.output_utilization - 0.4).abs() < 0.05, "{}", r.output_utilization);
        assert!(
            r.mean_transmissions < 2.5,
            "broadcast serves most copies in few transmissions: {}",
            r.mean_transmissions
        );
    }

    #[test]
    fn conservation_under_saturation() {
        let r = run_multicast(8, 3, 0.25, 20_000, 3);
        // Copy demand = 0.25 × 3 = 0.75 per output: below capacity, so
        // completions keep pace with injections.
        assert!(
            r.completed as f64 >= r.injected as f64 * 0.95,
            "{} of {}",
            r.completed,
            r.injected
        );
        // Copy accounting: completed cells account for exactly 3 copies
        // each; cells still in flight may have delivered a partial
        // residue.
        assert!(r.copies_delivered >= r.completed * 3);
        assert!(r.copies_delivered <= r.injected * 3);
    }

    #[test]
    #[should_panic(expected = "empty destination set")]
    fn empty_destination_rejected() {
        let mut sw = MulticastSwitch::new(4);
        sw.inject(0, &[], 0);
    }
}
