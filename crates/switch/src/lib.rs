//! # osmosis-switch
//!
//! Slotted single-stage switch simulations for the OSMOSIS reproduction:
//!
//! * [`VoqSwitch`] — the OSMOSIS architecture: VOQ ingress, bufferless
//!   crossbar, central scheduler, single/dual receivers (Figs. 5–7);
//! * [`RemoteSchedulerSwitch`] — the Fig. 1 thought experiment: a distant
//!   scheduler costs 2 RTT of unloaded latency;
//! * [`FifoSwitch`] — head-of-line-blocked baseline (the 58.6% limit);
//! * [`OqSwitch`] — ideal output-queued electronic baseline (ref. [16]);
//! * [`BvnSwitch`] — load-balanced Birkhoff-von Neumann baseline (§VI.D);
//! * [`BurstSwitch`] — container/envelope switching baseline (§II, §VI.D);
//! * [`DeflectionSwitch`] — Data-Vortex-style deflection routing (§II).
//!
//! All runs report throughput, delay and request-to-grant distributions,
//! losslessness and per-flow ordering — the switch-level rows of Table 1.

#![warn(missing_docs)]

pub mod burst_switch;
pub mod bvn;
pub mod cell;
pub mod cioq;
pub mod control_protocol;
pub mod deflection;
pub mod fifo_switch;
pub mod multicast;
pub mod oq_switch;
pub mod remote_sched;
pub mod voq_switch;

pub use burst_switch::BurstSwitch;
pub use cioq::{CioqReport, CioqSwitch};
pub use control_protocol::{run_control_channel, ControlProtocol, ControlReport};
pub use bvn::BvnSwitch;
pub use deflection::DeflectionSwitch;
pub use cell::Cell;
pub use fifo_switch::FifoSwitch;
pub use multicast::{run_multicast, MulticastReport, MulticastSwitch};
pub use oq_switch::OqSwitch;
pub use remote_sched::RemoteSchedulerSwitch;
pub use voq_switch::{run_uniform, RunConfig, SwitchReport, VoqSwitch};
