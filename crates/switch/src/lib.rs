//! # osmosis-switch
//!
//! Slotted single-stage switch simulations for the OSMOSIS reproduction:
//!
//! * [`VoqSwitch`] — the OSMOSIS architecture: VOQ ingress, bufferless
//!   crossbar, central scheduler, single/dual receivers (Figs. 5–7);
//! * [`RemoteSchedulerSwitch`] — the Fig. 1 thought experiment: a distant
//!   scheduler costs 2 RTT of unloaded latency;
//! * [`FifoSwitch`] — head-of-line-blocked baseline (the 58.6% limit);
//! * [`OqSwitch`] — ideal output-queued electronic baseline (ref. [16]);
//! * [`BvnSwitch`] — load-balanced Birkhoff-von Neumann baseline (§VI.D);
//! * [`BurstSwitch`] — container/envelope switching baseline (§II, §VI.D);
//! * [`DeflectionSwitch`] — Data-Vortex-style deflection routing (§II);
//! * [`MulticastSwitch`] — fanout-splitting multicast scheduling on the
//!   broadcast-and-select datapath.
//!
//! Every simulator implements the [`CellSwitch`] hooks (or
//! `SlottedModel` directly, for self-driven workloads) and runs on the
//! shared engine in `osmosis_sim::engine`, producing the unified
//! [`EngineReport`]: throughput, delay and request-to-grant
//! distributions, losslessness and per-flow ordering — the switch-level
//! rows of Table 1. Cycle-level traces (grants, drops, flow-control
//! stalls, receiver conflicts) are available through any
//! [`TraceSink`](osmosis_sim::TraceSink) via [`run_switch_traced`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod burst_switch;
pub mod bvn;
pub mod cell;
pub mod cioq;
pub mod control_protocol;
pub mod deflection;
pub mod driven;
pub mod fifo_switch;
pub mod multicast;
pub mod oq_switch;
pub mod remote_sched;
pub mod voq_switch;

pub use burst_switch::BurstSwitch;
pub use bvn::BvnSwitch;
pub use cell::Cell;
pub use cioq::CioqSwitch;
pub use control_protocol::{run_control_channel, ControlProtocol, ControlReport};
pub use deflection::DeflectionSwitch;
pub use driven::{
    run_switch, run_switch_audited, run_switch_circuit, run_switch_circuit_traced,
    run_switch_faulted, run_switch_faulted_traced, run_switch_instrumented,
    run_switch_instrumented_traced, run_switch_traced, CellSwitch, Driven,
};
pub use fifo_switch::FifoSwitch;
pub use multicast::{run_multicast, MulticastSwitch, MulticastWorkload};
pub use oq_switch::OqSwitch;
pub use remote_sched::RemoteSchedulerSwitch;
pub use voq_switch::{run_uniform, run_uniform_traced, VoqSwitch};

// The engine types every consumer of this crate needs alongside the
// simulators.
pub use osmosis_sim::engine::{EngineConfig, EngineReport};
