//! Combined input/output-queued (CIOQ) switch with internal speedup and
//! *limited* output buffers — the subject of the paper's ref. [11]
//! (Minkenberg, "Work-conservingness of CIOQ packet switches with limited
//! output buffers") and the basis of §III's requirement that "the
//! switches must be work-conserving".
//!
//! A CIOQ switch runs its crossbar S times per cell slot (speedup S),
//! moving cells from the ingress VOQs into small egress buffers that
//! drain at line rate. With S = 1 the switch is input-queued and cannot
//! be work-conserving; with S = 2 and enough egress buffer it (almost)
//! is. This model measures work conservation directly: a slot where an
//! output idles while a cell for it sits anywhere in the switch is a
//! violation, reported as `extra("violation_fraction")`.

use crate::cell::Cell;
use crate::driven::{run_switch, CellSwitch};
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// The CIOQ switch.
pub struct CioqSwitch {
    n: usize,
    /// Internal speedup: matching phases per slot.
    speedup: usize,
    /// Egress buffer capacity per output, in cells.
    egress_cap: usize,
    voq: Vec<VecDeque<Cell>>,
    egress: Vec<VecDeque<Cell>>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    violations: u64,
    busy_slots: u64,
    /// Per-output "work existed at slot start" flags for the audit.
    pending_for: Vec<bool>,
    /// Per-phase "input already granted" scratch, cleared each phase.
    in_used: Vec<bool>,
    requesters: BitSet,
    grants_to_input: Vec<BitSet>,
}

impl CioqSwitch {
    /// An `n`-port CIOQ switch with the given speedup and egress cap.
    pub fn new(n: usize, speedup: usize, egress_cap: usize) -> Self {
        assert!(n > 0 && speedup >= 1 && egress_cap >= 1);
        CioqSwitch {
            n,
            speedup,
            egress_cap,
            voq: (0..n * n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            grant_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            accept_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            violations: 0,
            busy_slots: 0,
            pending_for: vec![false; n],
            in_used: vec![false; n],
            requesters: BitSet::new(n),
            grants_to_input: (0..n).map(|_| BitSet::new(n)).collect(),
        }
    }

    /// Run traffic and report. The work-conservation violation rate is in
    /// `extra("violation_fraction")`.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for CioqSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn configure(&mut self, _cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
        self.violations = 0;
        self.busy_slots = 0;
    }

    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        let n = self.n;

        // Work-conservation audit *before* this slot's transfers: an
        // output with an empty egress buffer but pending VOQ cells can
        // only transmit this slot if a matching phase feeds it.
        for o in 0..n {
            self.pending_for[o] = (0..n).any(|i| !self.voq[i * n + o].is_empty());
        }

        // S matching phases per slot (single-iteration RR each — speedup,
        // not iteration count, is the knob under study).
        for _phase in 0..self.speedup {
            for g in self.grants_to_input.iter_mut() {
                g.clear_all();
            }
            self.in_used.fill(false);
            for o in 0..n {
                if self.egress[o].len() >= self.egress_cap {
                    continue; // limited output buffer: backpressure
                }
                self.requesters.clear_all();
                let mut have = false;
                for i in 0..n {
                    if !self.in_used[i] && !self.voq[i * n + o].is_empty() {
                        self.requesters.set(i);
                        have = true;
                    }
                }
                if !have {
                    continue;
                }
                if let Some(i) = self.grant_arb[o].arbitrate(&self.requesters) {
                    self.grants_to_input[i].set(o);
                }
            }
            for i in 0..n {
                if self.grants_to_input[i].is_empty() {
                    continue;
                }
                if let Some(o) = self.accept_arb[i].arbitrate(&self.grants_to_input[i]) {
                    self.grant_arb[o].advance_past(i);
                    self.accept_arb[i].advance_past(o);
                    let mut cell = self.voq[i * n + o]
                        .pop_front()
                        // lint:allow(panic-free): grants are issued from
                        // this slot's occupancy snapshot, so an accepted
                        // grant always has its cell still queued
                        .expect("accepted grant with an empty VOQ");
                    cell.grant_slot = slot;
                    obs.cell_granted(i, o, cell.inject_slot);
                    self.in_used[i] = true;
                    self.egress[o].push_back(cell);
                }
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, _slot: u64, obs: &mut Observer<'_, T>) {
        // Egress transmits one cell per slot; audit idleness.
        for (o, q) in self.egress.iter_mut().enumerate() {
            obs.note_egress_depth(q.len());
            match q.pop_front() {
                Some(cell) => {
                    debug_assert_eq!(cell.dst, o);
                    self.checker.record(cell.src, cell.dst, cell.seq);
                    if obs.measuring() {
                        self.busy_slots += 1;
                    }
                    obs.cell_delivered_flow(o, cell.inject_slot, cell.src, cell.seq);
                }
                None => {
                    if obs.measuring() && self.pending_for[o] {
                        // Work existed for this output at slot start, the
                        // output line still idled.
                        self.violations += 1;
                        self.busy_slots += 1;
                    }
                }
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            let q = &mut self.voq[a.src * self.n + a.dst];
            q.push_back(cell);
            obs.note_queue_depth(q.len());
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
        let fraction = if self.busy_slots == 0 {
            0.0
        } else {
            self.violations as f64 / self.busy_slots as f64
        };
        report.set_extra("violation_fraction", fraction);
    }

    fn resident_cells(&self) -> Option<u64> {
        let queued: usize = self.voq.iter().map(VecDeque::len).sum::<usize>()
            + self.egress.iter().map(VecDeque::len).sum::<usize>();
        Some(queued as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> EngineConfig {
        EngineConfig::new(1_000, 10_000)
    }

    fn run_at(speedup: usize, cap: usize, load: f64, seed: u64) -> EngineReport {
        let mut sw = CioqSwitch::new(16, speedup, cap);
        let mut tr = BernoulliUniform::new(16, load, &SeedSequence::new(seed));
        sw.run(&mut tr, &cfg())
    }

    fn violation_fraction(r: &EngineReport) -> f64 {
        r.extra("violation_fraction").unwrap()
    }

    #[test]
    fn speedup_one_violates_work_conservation() {
        // Input-queued (S=1): contention leaves outputs idle while work
        // waits at other inputs — the violation rate is material.
        let r = run_at(1, 4, 0.9, 1);
        assert!(
            violation_fraction(&r) > 0.02,
            "violations {}",
            violation_fraction(&r)
        );
    }

    #[test]
    fn speedup_two_nearly_work_conserving() {
        // Ref. [11]'s regime: S=2 with modest egress buffers almost
        // eliminates violations.
        let s1 = run_at(1, 8, 0.9, 2);
        let s2 = run_at(2, 8, 0.9, 2);
        assert!(
            violation_fraction(&s2) < violation_fraction(&s1) / 4.0,
            "{} vs {}",
            violation_fraction(&s2),
            violation_fraction(&s1)
        );
        assert!(violation_fraction(&s2) < 0.01);
    }

    #[test]
    fn tiny_egress_buffers_restore_violations_despite_speedup() {
        // Ref. [11]'s point: *limited* output buffers can break work
        // conservation even with speedup, because backpressure blocks
        // the transfer phases.
        let small = run_at(2, 1, 0.95, 3);
        let large = run_at(2, 16, 0.95, 3);
        assert!(
            violation_fraction(&small) > violation_fraction(&large),
            "{} vs {}",
            violation_fraction(&small),
            violation_fraction(&large)
        );
    }

    #[test]
    fn lossless_and_ordered() {
        let r = run_at(2, 8, 0.8, 4);
        assert_eq!(r.reordered, 0);
        assert!((r.throughput - 0.8).abs() < 0.03);
        assert!(r.max_egress_depth <= 8);
    }
}
