//! Combined input/output-queued (CIOQ) switch with internal speedup and
//! *limited* output buffers — the subject of the paper's ref. [11]
//! (Minkenberg, "Work-conservingness of CIOQ packet switches with limited
//! output buffers") and the basis of §III's requirement that "the
//! switches must be work-conserving".
//!
//! A CIOQ switch runs its crossbar S times per cell slot (speedup S),
//! moving cells from the ingress VOQs into small egress buffers that
//! drain at line rate. With S = 1 the switch is input-queued and cannot
//! be work-conserving; with S = 2 and enough egress buffer it (almost)
//! is. This model measures work conservation directly: a slot where an
//! output idles while a cell for it sits anywhere in the switch is a
//! violation.

use crate::cell::Cell;
use crate::voq_switch::RunConfig;
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::stats::Histogram;
use osmosis_traffic::{SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// CIOQ run results.
#[derive(Debug, Clone)]
pub struct CioqReport {
    /// Offered load per port.
    pub offered_load: f64,
    /// Carried throughput per port.
    pub throughput: f64,
    /// Mean delay in slots.
    pub mean_delay: f64,
    /// Slots in which some output idled despite having a cell queued for
    /// it somewhere in the switch (work-conservation violations), as a
    /// fraction of busy output-slots.
    pub violation_fraction: f64,
    /// Out-of-order deliveries.
    pub reordered: u64,
    /// Peak egress-buffer occupancy.
    pub max_egress: usize,
}

/// The CIOQ switch.
pub struct CioqSwitch {
    n: usize,
    /// Internal speedup: matching phases per slot.
    speedup: usize,
    /// Egress buffer capacity per output, in cells.
    egress_cap: usize,
    voq: Vec<VecDeque<Cell>>,
    egress: Vec<VecDeque<Cell>>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    stamper: SequenceStamper,
    next_id: u64,
}

impl CioqSwitch {
    /// An `n`-port CIOQ switch with the given speedup and egress cap.
    pub fn new(n: usize, speedup: usize, egress_cap: usize) -> Self {
        assert!(n > 0 && speedup >= 1 && egress_cap >= 1);
        CioqSwitch {
            n,
            speedup,
            egress_cap,
            voq: (0..n * n).map(|_| VecDeque::new()).collect(),
            egress: (0..n).map(|_| VecDeque::new()).collect(),
            grant_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            accept_arb: (0..n).map(|_| RoundRobinArbiter::new(n)).collect(),
            stamper: SequenceStamper::new(),
            next_id: 0,
        }
    }

    /// Run traffic and report.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: RunConfig) -> CioqReport {
        assert_eq!(traffic.ports(), self.n);
        let n = self.n;
        let total = cfg.warmup_slots + cfg.measure_slots;
        let mut delay_hist = Histogram::new(1.0, 65_536);
        let mut checker = SequenceChecker::new();
        let (mut injected, mut delivered) = (0u64, 0u64);
        let (mut violations, mut busy_slots) = (0u64, 0u64);
        let mut max_egress = 0usize;
        let mut arrivals = Vec::with_capacity(n);
        let mut requesters = BitSet::new(n);
        let mut grants_to_input: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();

        for t in 0..total {
            let measuring = t >= cfg.warmup_slots;

            // Work-conservation audit *before* this slot's transfers: an
            // output with an empty egress buffer but pending VOQ cells
            // can only transmit this slot if a matching phase feeds it.
            let pending_for: Vec<bool> = (0..n)
                .map(|o| (0..n).any(|i| !self.voq[i * n + o].is_empty()))
                .collect();

            // S matching phases per slot (single-iteration RR each —
            // speedup, not iteration count, is the knob under study).
            for _phase in 0..self.speedup {
                for g in grants_to_input.iter_mut() {
                    g.clear_all();
                }
                let mut in_used = vec![false; n];
                for o in 0..n {
                    if self.egress[o].len() >= self.egress_cap {
                        continue; // limited output buffer: backpressure
                    }
                    requesters.clear_all();
                    let mut have = false;
                    for i in 0..n {
                        if !in_used[i] && !self.voq[i * n + o].is_empty() {
                            requesters.set(i);
                            have = true;
                        }
                    }
                    if !have {
                        continue;
                    }
                    if let Some(i) = self.grant_arb[o].arbitrate(&requesters) {
                        grants_to_input[i].set(o);
                    }
                }
                for i in 0..n {
                    if grants_to_input[i].is_empty() {
                        continue;
                    }
                    if let Some(o) = self.accept_arb[i].arbitrate(&grants_to_input[i]) {
                        self.grant_arb[o].advance_past(i);
                        self.accept_arb[i].advance_past(o);
                        let mut cell = self.voq[i * n + o].pop_front().unwrap();
                        cell.grant_slot = t;
                        in_used[i] = true;
                        self.egress[o].push_back(cell);
                    }
                }
            }

            // Egress transmits one cell per slot; audit idleness.
            for (o, q) in self.egress.iter_mut().enumerate() {
                max_egress = max_egress.max(q.len());
                match q.pop_front() {
                    Some(cell) => {
                        debug_assert_eq!(cell.dst, o);
                        checker.record(cell.src, cell.dst, cell.seq);
                        if measuring {
                            busy_slots += 1;
                            delivered += 1;
                            if cell.inject_slot >= cfg.warmup_slots {
                                delay_hist.record((t - cell.inject_slot) as f64);
                            }
                        }
                    }
                    None => {
                        if measuring && pending_for[o] {
                            // Work existed for this output at slot start,
                            // the output line still idled.
                            violations += 1;
                            busy_slots += 1;
                        }
                    }
                }
            }

            // Arrivals.
            arrivals.clear();
            traffic.arrivals(t, &mut arrivals);
            for a in &arrivals {
                let seq = self.stamper.stamp(a.src, a.dst);
                let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, t);
                self.next_id += 1;
                if measuring {
                    injected += 1;
                }
                self.voq[a.src * n + a.dst].push_back(cell);
            }
        }

        let denom = cfg.measure_slots as f64 * n as f64;
        CioqReport {
            offered_load: injected as f64 / denom,
            throughput: delivered as f64 / denom,
            mean_delay: delay_hist.mean(),
            violation_fraction: if busy_slots == 0 {
                0.0
            } else {
                violations as f64 / busy_slots as f64
            },
            reordered: checker.reordered(),
            max_egress,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn cfg() -> RunConfig {
        RunConfig {
            warmup_slots: 1_000,
            measure_slots: 10_000,
        }
    }

    fn run_at(speedup: usize, cap: usize, load: f64, seed: u64) -> CioqReport {
        let mut sw = CioqSwitch::new(16, speedup, cap);
        let mut tr = BernoulliUniform::new(16, load, &SeedSequence::new(seed));
        sw.run(&mut tr, cfg())
    }

    #[test]
    fn speedup_one_violates_work_conservation() {
        // Input-queued (S=1): contention leaves outputs idle while work
        // waits at other inputs — the violation rate is material.
        let r = run_at(1, 4, 0.9, 1);
        assert!(
            r.violation_fraction > 0.02,
            "violations {}",
            r.violation_fraction
        );
    }

    #[test]
    fn speedup_two_nearly_work_conserving() {
        // Ref. [11]'s regime: S=2 with modest egress buffers almost
        // eliminates violations.
        let s1 = run_at(1, 8, 0.9, 2);
        let s2 = run_at(2, 8, 0.9, 2);
        assert!(
            s2.violation_fraction < s1.violation_fraction / 4.0,
            "{} vs {}",
            s2.violation_fraction,
            s1.violation_fraction
        );
        assert!(s2.violation_fraction < 0.01);
    }

    #[test]
    fn tiny_egress_buffers_restore_violations_despite_speedup() {
        // Ref. [11]'s point: *limited* output buffers can break work
        // conservation even with speedup, because backpressure blocks
        // the transfer phases.
        let small = run_at(2, 1, 0.95, 3);
        let large = run_at(2, 16, 0.95, 3);
        assert!(
            small.violation_fraction > large.violation_fraction,
            "{} vs {}",
            small.violation_fraction,
            large.violation_fraction
        );
    }

    #[test]
    fn lossless_and_ordered() {
        let r = run_at(2, 8, 0.8, 4);
        assert_eq!(r.reordered, 0);
        assert!((r.throughput - 0.8).abs() < 0.03);
        assert!(r.max_egress <= 8);
    }
}
