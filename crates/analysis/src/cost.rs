//! Cost modelling for the §VII commercialization argument.
//!
//! "Key to market acceptance will be to reach a fabric-level aggregate
//! cost per bandwidth unit (e.g. $/Gb/s) that is on par with
//! electronics-based solutions. To reach this cost point, a further
//! integration of the optical components is an essential first step."
//!
//! The model: an OSMOSIS port costs optics (SOA gates, mux/demux,
//! amplifier share, transceivers) plus electronics (adapter ASIC,
//! scheduler share); an electronic port costs the switch ASIC share plus
//! transceivers. Optical component cost falls with an integration factor
//! (discrete parts → arrays → photonic integration), which is exactly the
//! knob §VII says must move.

/// Per-port cost coefficients in arbitrary dollars (circa-2005 scale).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of one discrete SOA gate ($).
    pub soa_gate: f64,
    /// Amortized SOA gates per port (fiber + λ select, shared banks).
    pub gates_per_port: f64,
    /// Passive optics per port: mux/demux/coupler share ($).
    pub passives_per_port: f64,
    /// Optical amplifier share per port ($).
    pub amp_per_port: f64,
    /// Optical transceiver per port ($) — both fabrics pay this for the
    /// rack-to-rack links.
    pub transceiver: f64,
    /// Adapter/scheduler electronics per port ($).
    pub adapter_electronics: f64,
    /// Electronic switch ASIC cost share per port ($).
    pub electronic_switch_port: f64,
    /// Integration factor dividing *optical component* costs: 1 =
    /// discrete parts (the demonstrator), 4 ≈ gate arrays, 10+ ≈
    /// photonic integration.
    pub integration_factor: f64,
}

impl CostModel {
    /// Discrete-component baseline (the demonstrator's economics).
    pub fn discrete_2005() -> Self {
        CostModel {
            soa_gate: 800.0,
            gates_per_port: 4.0,
            passives_per_port: 300.0,
            amp_per_port: 250.0,
            transceiver: 500.0,
            adapter_electronics: 400.0,
            electronic_switch_port: 600.0,
            integration_factor: 1.0,
        }
    }

    /// With the §VII integration step applied.
    pub fn integrated(factor: f64) -> Self {
        assert!(factor >= 1.0);
        CostModel {
            integration_factor: factor,
            ..Self::discrete_2005()
        }
    }

    /// Cost of one OSMOSIS port ($).
    pub fn osmosis_port(&self) -> f64 {
        let optics =
            (self.soa_gate * self.gates_per_port + self.passives_per_port + self.amp_per_port)
                / self.integration_factor;
        optics + self.transceiver + self.adapter_electronics
    }

    /// Cost of one electronic switch port ($).
    pub fn electronic_port(&self) -> f64 {
        self.electronic_switch_port + self.transceiver
    }

    /// Fabric-level $/Gb/s for a `ports`-host fabric of `stages` stages at
    /// `gbps` per port (every stage's switch ports are paid for).
    pub fn fabric_cost_per_gbps(&self, per_port: f64, ports: u64, stages: u32, gbps: f64) -> f64 {
        per_port * stages as f64 * ports as f64 / (ports as f64 * gbps)
    }

    /// The integration factor at which the OSMOSIS fabric reaches cost
    /// parity with an electronic fabric, given the stage counts of each
    /// (OSMOSIS needs fewer stages, which is its structural advantage).
    pub fn parity_integration_factor(&self, osmosis_stages: u32, electronic_stages: u32) -> f64 {
        // optics/f + fixed  ≤  electronic · (e_stages/o_stages)
        let optics =
            self.soa_gate * self.gates_per_port + self.passives_per_port + self.amp_per_port;
        let fixed = self.transceiver + self.adapter_electronics;
        let target = self.electronic_port() * electronic_stages as f64 / osmosis_stages as f64;
        if target <= fixed {
            return f64::INFINITY;
        }
        optics / (target - fixed)
    }
}

/// Total cost of ownership per port over `years`: capital + energy at
/// `usd_per_kwh`, using the §I power model.
pub fn tco_per_port(capital: f64, port_power_w: f64, years: f64, usd_per_kwh: f64) -> f64 {
    capital + port_power_w * 24.0 * 365.25 * years * usd_per_kwh / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerModel;

    #[test]
    fn discrete_optics_cost_more_per_stage() {
        let m = CostModel::discrete_2005();
        assert!(
            m.osmosis_port() > m.electronic_port(),
            "discrete optics are the expensive option per port: {} vs {}",
            m.osmosis_port(),
            m.electronic_port()
        );
    }

    #[test]
    fn fabric_level_stage_advantage_narrows_the_gap() {
        // 3 OSMOSIS stages vs 5 electronic stages at 2048 ports, 96 Gb/s.
        let m = CostModel::discrete_2005();
        let osmosis = m.fabric_cost_per_gbps(m.osmosis_port(), 2048, 3, 96.0);
        let electronic = m.fabric_cost_per_gbps(m.electronic_port(), 2048, 5, 96.0);
        let ratio = osmosis / electronic;
        assert!(
            ratio > 1.0 && ratio < 3.0,
            "discrete optics are close but not at parity: ratio {ratio:.2}"
        );
    }

    #[test]
    fn integration_reaches_parity() {
        // §VII: integration is "an essential first step" to the cost
        // point. Find the required factor and verify it is attainable
        // (single-digit — array/PIC territory, not science fiction).
        let m = CostModel::discrete_2005();
        let f = m.parity_integration_factor(3, 5);
        assert!(f > 1.0 && f < 10.0, "parity factor {f:.1}");
        let integrated = CostModel::integrated(f * 1.01);
        let osmosis = integrated.fabric_cost_per_gbps(integrated.osmosis_port(), 2048, 3, 96.0);
        let electronic =
            integrated.fabric_cost_per_gbps(integrated.electronic_port(), 2048, 5, 96.0);
        assert!(osmosis <= electronic * 1.01, "{osmosis} vs {electronic}");
    }

    #[test]
    fn tco_includes_the_power_advantage() {
        // Even at equal capital, OSMOSIS's flat optical power beats CMOS
        // at high rates over a machine lifetime.
        let pm = PowerModel::circa_2005();
        let osmosis_tco = tco_per_port(3_000.0, pm.hybrid_port_power_w(96.0, 256.0), 5.0, 0.10);
        let electronic_tco = tco_per_port(3_000.0, pm.cmos_port_power_w(96.0), 5.0, 0.10);
        assert!(osmosis_tco < electronic_tco);
    }

    #[test]
    fn parity_factor_monotone_in_stage_advantage() {
        let m = CostModel::discrete_2005();
        let f_3v5 = m.parity_integration_factor(3, 5);
        let f_3v9 = m.parity_integration_factor(3, 9);
        assert!(
            f_3v9 < f_3v5,
            "a bigger stage advantage needs less integration: {f_3v9} vs {f_3v5}"
        );
        // No stage advantage → much deeper integration needed.
        let f_same = m.parity_integration_factor(3, 3);
        assert!(f_same > f_3v5);
    }
}
