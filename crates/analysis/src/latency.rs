//! Latency budgets (§III, §VI.B, Fig. 9 context).
//!
//! Three budgets from the paper, reproduced as checkable arithmetic:
//!
//! * the **fabric budget**: < 500 ns in the switch fabric including
//!   machine-room cabling, split evenly between switch elements and
//!   cables (250 ns of fiber = a 50 m machine-room diameter);
//! * the **application budget**: ≈1 µs application-to-application,
//!   composed of driver/HCA + fabric + flight;
//! * the **demonstrator budget**: ≈1200 ns in FPGAs, dropping to "a few
//!   hundred nanoseconds" after a straightforward ASIC mapping (≥4×
//!   speedup, §VII) plus shorter scheduler-to-SOA control runs.

use osmosis_sim::TimeDelta;

/// The §III machine-level latency budget.
#[derive(Debug, Clone, Copy)]
pub struct FabricBudget {
    /// Total fabric target (switches + cables).
    pub fabric_target: TimeDelta,
    /// Machine-room diameter in meters.
    pub machine_diameter_m: f64,
    /// Number of switch stages traversed.
    pub stages: u32,
}

impl FabricBudget {
    /// The paper's targets: 500 ns fabric, 50 m machine room, 3 stages.
    pub fn osmosis_default() -> Self {
        FabricBudget {
            fabric_target: TimeDelta::from_ns(500),
            machine_diameter_m: 50.0,
            stages: 3,
        }
    }

    /// Total cable flight across the machine room.
    pub fn cable_flight(&self) -> TimeDelta {
        TimeDelta::fiber_flight(self.machine_diameter_m)
    }

    /// What remains for all switch elements together.
    pub fn switch_budget(&self) -> TimeDelta {
        self.fabric_target - self.cable_flight()
    }

    /// Per-stage switch latency allowance.
    pub fn per_stage_budget(&self) -> TimeDelta {
        self.switch_budget() / self.stages as u64
    }

    /// Whether a per-stage switch latency fits the budget.
    pub fn fits(&self, per_stage: TimeDelta) -> bool {
        per_stage * self.stages as u64 + self.cable_flight() <= self.fabric_target
    }
}

/// One line item in an itemized latency budget.
#[derive(Debug, Clone, Copy)]
pub struct BudgetItem {
    /// Name of the contribution.
    pub name: &'static str,
    /// Contribution.
    pub latency: TimeDelta,
    /// Whether an FPGA→ASIC mapping scales this item down (logic paths
    /// do; fiber flight does not).
    pub scales_with_logic: bool,
}

/// The demonstrator's itemized latency (§VI.B: "the demonstrator prototype
/// has only around 1200 ns latency", dominated by FPGA pipelining, the
/// multi-FPGA scheduler's chip crossings, and multi-meter control fibers).
pub fn demonstrator_budget() -> Vec<BudgetItem> {
    vec![
        BudgetItem {
            name: "ingress adapter datapath (FEC encode, VOQ, 40G pipeline)",
            latency: TimeDelta::from_ns(280),
            scales_with_logic: true,
        },
        BudgetItem {
            name: "request/grant control path (adapter ↔ scheduler)",
            latency: TimeDelta::from_ns(180),
            scales_with_logic: true,
        },
        BudgetItem {
            name: "FLPPR scheduler (40 FPGAs, chip crossings)",
            latency: TimeDelta::from_ns(360),
            scales_with_logic: true,
        },
        BudgetItem {
            name: "scheduler → SOA control fibers (multi-meter)",
            latency: TimeDelta::from_ns(60),
            scales_with_logic: false,
        },
        BudgetItem {
            name: "optical crossbar traversal + guard",
            latency: TimeDelta::from_ns(60),
            scales_with_logic: false,
        },
        BudgetItem {
            name: "egress adapter datapath (burst RX, FEC decode)",
            latency: TimeDelta::from_ns(260),
            scales_with_logic: true,
        },
    ]
}

/// Sum of an itemized budget.
pub fn total(items: &[BudgetItem]) -> TimeDelta {
    items.iter().fold(TimeDelta::ZERO, |acc, i| acc + i.latency)
}

/// Apply an FPGA→ASIC mapping: logic items speed up by `factor`, physical
/// items (fiber flight, guard time) do not. Tighter integration shortens
/// the control fibers; `control_fiber_scale` models that separately.
pub fn asic_mapping(
    items: &[BudgetItem],
    factor: f64,
    control_fiber_scale: f64,
) -> Vec<BudgetItem> {
    assert!(factor >= 1.0);
    items
        .iter()
        .map(|i| {
            let latency = if i.scales_with_logic {
                TimeDelta::from_ns_f64(i.latency.as_ns_f64() / factor)
            } else if i.name.contains("control fibers") {
                TimeDelta::from_ns_f64(i.latency.as_ns_f64() * control_fiber_scale)
            } else {
                i.latency
            };
            BudgetItem { latency, ..*i }
        })
        .collect()
}

/// The ≈1 µs application-to-application budget (§III): source software +
/// HCA, the fabric, and time-of-flight.
#[derive(Debug, Clone, Copy)]
pub struct ApplicationBudget {
    /// Driver stack + HCA at source and destination combined.
    pub host_overhead: TimeDelta,
    /// The switch-fabric share (switch elements only).
    pub fabric: TimeDelta,
    /// Cable time-of-flight.
    pub flight: TimeDelta,
}

impl ApplicationBudget {
    /// Paper's contemporary 1 µs target with the 500 ns fabric share.
    pub fn osmosis_default() -> Self {
        ApplicationBudget {
            host_overhead: TimeDelta::from_ns(500),
            fabric: TimeDelta::from_ns(250),
            flight: TimeDelta::from_ns(250),
        }
    }

    /// End-to-end total.
    pub fn total(&self) -> TimeDelta {
        self.host_overhead + self.fabric + self.flight
    }
}

/// The scheduler-partitioning size analysis of §VI.B: the prototype uses
/// 40 FPGAs; "the scheduler can be built with no more than four identical
/// ASICs". Chip crossings add latency; this models that relation.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerPartition {
    /// Number of chips the scheduler logic is spread over.
    pub chips: u32,
    /// Latency per chip crossing (SerDes + board trace).
    pub crossing_latency: TimeDelta,
    /// Crossings on the critical request→grant path; grows with the
    /// partition count (bisected arbitration tree).
    pub critical_crossings: u32,
}

impl SchedulerPartition {
    /// The 40-FPGA prototype: a request/grant traverses ≈6 chip hops.
    pub fn fpga_prototype() -> Self {
        SchedulerPartition {
            chips: 40,
            crossing_latency: TimeDelta::from_ns(25),
            critical_crossings: 6,
        }
    }

    /// The ≤4-ASIC production mapping: ≈2 hops.
    pub fn asic_production() -> Self {
        SchedulerPartition {
            chips: 4,
            crossing_latency: TimeDelta::from_ns(15),
            critical_crossings: 2,
        }
    }

    /// Chip-crossing latency on the critical path.
    pub fn crossing_total(&self) -> TimeDelta {
        self.crossing_latency * self.critical_crossings as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_budget_splits_evenly() {
        // §III: "we split the 500 ns switch fabric delay equally between
        // the switch elements and the total cable delay".
        let b = FabricBudget::osmosis_default();
        assert_eq!(b.cable_flight(), TimeDelta::from_ns(250));
        assert_eq!(b.switch_budget(), TimeDelta::from_ns(250));
        // Table 1: per-switch latency 100–250 ns; with 3 stages each gets
        // ≈83 ns.
        assert_eq!(b.per_stage_budget(), TimeDelta::from_ns_f64(250.0 / 3.0));
    }

    #[test]
    fn fits_checks_the_whole_path() {
        let b = FabricBudget::osmosis_default();
        assert!(b.fits(TimeDelta::from_ns(83)));
        assert!(!b.fits(TimeDelta::from_ns(100)), "3 × 100 + 250 > 500");
    }

    #[test]
    fn single_stage_cannot_fit_2rtt() {
        // The Fig. 1 argument in budget form: a central single-stage
        // fabric pays 2 RTT = 4 × 250 ns half-flights = 1000 ns > 500 ns
        // before any scheduling happens.
        let b = FabricBudget::osmosis_default();
        let two_rtt = TimeDelta::from_ns(1000);
        assert!(two_rtt > b.fabric_target);
    }

    #[test]
    fn demonstrator_totals_about_1200ns() {
        let items = demonstrator_budget();
        let t = total(&items);
        assert_eq!(t, TimeDelta::from_ns(1200), "§VI.B: ≈1200 ns");
    }

    #[test]
    fn asic_mapping_reaches_a_few_hundred_ns() {
        // §VI.B/§VII: a straightforward ASIC mapping (≥4× on logic) plus
        // tight optics integration (control fibers →10%) lands at "a few
        // hundred nanoseconds".
        let asic = asic_mapping(&demonstrator_budget(), 4.0, 0.1);
        let t = total(&asic);
        assert!(
            t <= TimeDelta::from_ns(400) && t >= TimeDelta::from_ns(200),
            "ASIC total {t}"
        );
    }

    #[test]
    fn asic_mapping_leaves_physics_untouched() {
        let before = demonstrator_budget();
        let after = asic_mapping(&before, 4.0, 1.0);
        for (b, a) in before.iter().zip(&after) {
            if !b.scales_with_logic {
                assert_eq!(b.latency, a.latency, "{}", b.name);
            } else {
                assert!(a.latency < b.latency, "{}", b.name);
            }
        }
    }

    #[test]
    fn application_budget_is_one_microsecond() {
        let b = ApplicationBudget::osmosis_default();
        assert_eq!(b.total(), TimeDelta::from_us(1));
    }

    #[test]
    fn asic_partition_cuts_crossing_latency() {
        let fpga = SchedulerPartition::fpga_prototype();
        let asic = SchedulerPartition::asic_production();
        assert_eq!(fpga.chips, 40, "§VI.B: 40 high-end FPGAs");
        assert!(asic.chips <= 4, "§VI.B: no more than four identical ASICs");
        assert!(asic.crossing_total() < fpga.crossing_total() / 3);
    }
}
