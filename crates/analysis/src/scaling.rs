//! The §VII scaling outlook, as checkable arithmetic.
//!
//! "Given the signaling speed, pin limits and the current CMOS technology
//! limits, we consider 6–8 Tb/s aggregate switch bandwidth around the
//! maximum single-stage electronic limit. The OSMOSIS architecture can
//! scale to at least 50 Tb/s aggregate per stage. [...] Thus 256 ports at
//! 200 Gb/s per port are feasible, in a single stage. The FLPPR scheduler
//! can exploit higher parallelism to perform the required additional
//! iterations in the same time."

/// A single-stage OSMOSIS configuration: WDM wavelengths × fibers gives
/// the port count; per-port rate is bounded by the per-wavelength
/// bandwidth the SOA gates pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageConfig {
    /// WDM wavelengths per fiber.
    pub wavelengths: u32,
    /// Broadcast fibers.
    pub fibers: u32,
    /// Per-port line rate in Gb/s.
    pub port_gbps: f64,
}

impl StageConfig {
    /// The demonstrator: 8 × 8 × 40 Gb/s.
    pub fn demonstrator() -> Self {
        StageConfig {
            wavelengths: 8,
            fibers: 8,
            port_gbps: 40.0,
        }
    }

    /// The §VII outlook point: 256 ports at 200 Gb/s.
    pub fn outlook_256x200() -> Self {
        StageConfig {
            wavelengths: 16,
            fibers: 16,
            port_gbps: 200.0,
        }
    }

    /// Ports = wavelengths × fibers.
    pub fn ports(&self) -> u32 {
        self.wavelengths * self.fibers
    }

    /// Aggregate stage bandwidth in Tb/s.
    pub fn aggregate_tbps(&self) -> f64 {
        self.ports() as f64 * self.port_gbps / 1_000.0
    }
}

/// Physical envelope the optics must respect.
#[derive(Debug, Clone, Copy)]
pub struct OpticalEnvelope {
    /// Usable amplified band per fiber in GHz (C-band ≈ 4.4 THz, keep
    /// margin).
    pub band_ghz: f64,
    /// Spectral efficiency in b/s/Hz the modulation achieves end to end.
    pub spectral_efficiency: f64,
    /// Maximum fibers the broadcast stage can split/amplify.
    pub max_fibers: u32,
}

impl OpticalEnvelope {
    /// Mid-2000s WDM practice: 4 THz band, 0.8 b/s/Hz net (NRZ/DPSK with
    /// guard bands), up to 32 fibers.
    pub fn circa_2005() -> Self {
        OpticalEnvelope {
            band_ghz: 4_000.0,
            spectral_efficiency: 0.8,
            max_fibers: 32,
        }
    }

    /// Per-fiber capacity in Gb/s.
    pub fn fiber_capacity_gbps(&self) -> f64 {
        self.band_ghz * self.spectral_efficiency
    }

    /// Does a stage configuration fit the envelope?
    pub fn admits(&self, cfg: StageConfig) -> bool {
        cfg.fibers <= self.max_fibers
            && cfg.wavelengths as f64 * cfg.port_gbps <= self.fiber_capacity_gbps()
    }

    /// The maximum aggregate bandwidth the envelope supports.
    pub fn max_aggregate_tbps(&self) -> f64 {
        self.fiber_capacity_gbps() * self.max_fibers as f64 / 1_000.0
    }
}

/// §VII's electronic ceiling: 6–8 Tb/s aggregate for a single stage.
pub const ELECTRONIC_SINGLE_STAGE_TBPS: f64 = 8.0;

/// FLPPR parallelism check: an N-port switch needs log₂N iterations per
/// matching (ref. [17]); with one iteration per cell cycle, the scheduler
/// needs `depth = log₂N` parallel sub-schedulers. Returns the depth.
pub fn flppr_depth_for(ports: u32) -> u32 {
    (ports.max(2) as f64).log2().ceil() as u32
}

/// Cell time in nanoseconds for a cell size and port rate.
pub fn cell_time_ns(cell_bytes: u32, port_gbps: f64) -> f64 {
    cell_bytes as f64 * 8.0 / port_gbps
}

/// §VII trade: an ASIC scheduler ≥4× faster than the FPGA one can spend
/// the gain on smaller cells or faster ports. Given a baseline (cell,
/// rate) whose scheduling fits, check whether a new (cell, rate) still
/// fits when the scheduler is `speedup`× faster: the iteration time must
/// not exceed the new cell time.
pub fn asic_tradeoff_fits(
    base_cell_bytes: u32,
    base_gbps: f64,
    new_cell_bytes: u32,
    new_gbps: f64,
    speedup: f64,
) -> bool {
    let base_iteration_ns = cell_time_ns(base_cell_bytes, base_gbps);
    let new_iteration_ns = base_iteration_ns / speedup;
    new_iteration_ns <= cell_time_ns(new_cell_bytes, new_gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demonstrator_aggregate() {
        let d = StageConfig::demonstrator();
        assert_eq!(d.ports(), 64);
        assert!((d.aggregate_tbps() - 2.56).abs() < 1e-9);
    }

    #[test]
    fn paper_claim_50_tbps_per_stage() {
        // "The OSMOSIS architecture can scale to at least 50 Tb/s
        // aggregate per stage."
        let env = OpticalEnvelope::circa_2005();
        let big = StageConfig::outlook_256x200();
        assert!(env.admits(big), "256×200G must fit the optical envelope");
        assert!(
            big.aggregate_tbps() >= 50.0,
            "aggregate {}",
            big.aggregate_tbps()
        );
        assert!(env.max_aggregate_tbps() >= 50.0);
    }

    #[test]
    fn paper_claim_electronic_ceiling() {
        // OSMOSIS's scalable aggregate sits far above the 6–8 Tb/s
        // electronic single-stage ceiling.
        let big = StageConfig::outlook_256x200();
        assert!(big.aggregate_tbps() > 5.0 * ELECTRONIC_SINGLE_STAGE_TBPS);
        // ...and even the demonstrator is below it, as expected for a
        // 64×40G prototype.
        assert!(StageConfig::demonstrator().aggregate_tbps() < ELECTRONIC_SINGLE_STAGE_TBPS);
    }

    #[test]
    fn envelope_rejects_overcommitted_fibers() {
        let env = OpticalEnvelope::circa_2005();
        // 64 wavelengths at 100 Gb/s = 6.4 Tb/s per fiber > 3.2 Tb/s cap.
        let bad = StageConfig {
            wavelengths: 64,
            fibers: 8,
            port_gbps: 100.0,
        };
        assert!(!env.admits(bad));
        let too_many_fibers = StageConfig {
            wavelengths: 8,
            fibers: 64,
            port_gbps: 40.0,
        };
        assert!(!env.admits(too_many_fibers));
    }

    #[test]
    fn flppr_depth_grows_logarithmically() {
        assert_eq!(flppr_depth_for(64), 6);
        assert_eq!(
            flppr_depth_for(256),
            8,
            "two more sub-schedulers for 4× ports"
        );
        assert_eq!(flppr_depth_for(2048), 11);
    }

    #[test]
    fn cell_time_matches_demonstrator() {
        assert!((cell_time_ns(256, 40.0) - 51.2).abs() < 1e-12);
    }

    #[test]
    fn asic_speedup_buys_smaller_cells_or_faster_ports() {
        // §VII: "a straightforward mapping of the scheduler logic to ASIC
        // will speed up the scheduler by at least a factor of four. This
        // can be invested in making the fixed-size packet shorter and the
        // port bandwidth higher at the same size, or a combination."
        // 4×: 64-byte cells at 40 Gb/s (12.8 ns) fit:
        assert!(asic_tradeoff_fits(256, 40.0, 64, 40.0, 4.0));
        // or 256-byte cells at 160 Gb/s:
        assert!(asic_tradeoff_fits(256, 40.0, 256, 160.0, 4.0));
        // or the combination 128 bytes at 80 Gb/s:
        assert!(asic_tradeoff_fits(256, 40.0, 128, 80.0, 4.0));
        // but not both maxed out:
        assert!(!asic_tradeoff_fits(256, 40.0, 64, 160.0, 4.0));
        // and nothing improves without the speedup:
        assert!(!asic_tradeoff_fits(256, 40.0, 64, 40.0, 1.0));
    }
}
