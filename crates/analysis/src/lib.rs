//! # osmosis-analysis
//!
//! Closed-form models backing the paper's quantitative arguments:
//!
//! * [`power`] — CMOS power ∝ data rate vs. rate-independent SOA bias,
//!   control power ∝ packet rate, and the resulting crossover (§I);
//! * [`latency`] — the 500 ns fabric budget, the ≈1200 ns demonstrator
//!   budget and its FPGA→ASIC mapping, the 1 µs application budget, and
//!   the 40-FPGA → ≤4-ASIC scheduler partition (§III, §VI.B);
//! * [`scaling`] — the §VII outlook: the 6–8 Tb/s electronic ceiling,
//!   50 Tb/s per optical stage, 256×200 Gb/s feasibility, FLPPR depth
//!   scaling, and the ASIC-speedup trade space;
//! * [`cost`] — the §VII commercialization argument: $/Gb/s at the
//!   fabric level and the optical-integration factor needed for parity.
//!
//! Bandwidth-efficiency models live in `osmosis-phy::guard`; BER-tier
//! models live in `osmosis-fec::analytics`. This crate re-exports the
//! quantities Table 1 needs so experiment harnesses have one entry point.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod latency;
pub mod power;
pub mod scaling;

pub use cost::{tco_per_port, CostModel};
pub use latency::{
    asic_mapping, demonstrator_budget, total, ApplicationBudget, BudgetItem, FabricBudget,
    SchedulerPartition,
};
pub use power::{fabric_power_w, PowerModel};
pub use scaling::{
    asic_tradeoff_fits, cell_time_ns, flppr_depth_for, OpticalEnvelope, StageConfig,
    ELECTRONIC_SINGLE_STAGE_TBPS,
};

/// Re-exported effective-bandwidth model (guard + FEC tax → ≥75%).
pub use osmosis_phy::guard::{CellEfficiency, GuardBudget};

/// Re-exported BER tiers (raw → FEC → retransmission).
pub use osmosis_fec::analytics as ber;
