//! The §I power argument, as a model.
//!
//! "The main advantage of current optical switching technology is that the
//! optical switch element power consumption is independent of the data
//! rate, whereas in CMOS power consumption is proportional to the clock
//! (i.e. data) rates. The power consumption of the optical switch control
//! function is proportional to the packet rate."

/// Technology coefficients for the power model.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// CMOS dynamic power per port per Gb/s (W/Gb/s): switching capacitance
    /// × voltage² × activity, folded into one coefficient.
    pub cmos_w_per_gbps: f64,
    /// CMOS static (leakage + SerDes bias) power per port (W).
    pub cmos_static_w: f64,
    /// SOA bias power per optical gate (W) — independent of data rate.
    pub soa_bias_w: f64,
    /// Gates in the path of one port (fiber-select + λ-select banks share
    /// across ports; amortized gates per port).
    pub gates_per_port: f64,
    /// Control/scheduler energy per packet (J) — electronics clocked at
    /// the packet rate, not the bit rate.
    pub control_energy_per_packet_j: f64,
}

impl PowerModel {
    /// Coefficients calibrated to mid-2000s technology: a 40 Gb/s CMOS
    /// switch port at ≈4 W, SOA gates at ≈0.5 W bias, control at ≈1 nJ
    /// per scheduled packet.
    pub fn circa_2005() -> Self {
        PowerModel {
            cmos_w_per_gbps: 0.075,
            cmos_static_w: 1.0,
            soa_bias_w: 0.5,
            gates_per_port: 4.0,
            control_energy_per_packet_j: 1e-9,
        }
    }

    /// Electronic switch power per port at a given line rate.
    pub fn cmos_port_power_w(&self, gbps: f64) -> f64 {
        self.cmos_static_w + self.cmos_w_per_gbps * gbps
    }

    /// Optical (SOA) switch datapath power per port — flat in the rate.
    pub fn optical_port_power_w(&self, _gbps: f64) -> f64 {
        self.soa_bias_w * self.gates_per_port
    }

    /// Control power per port: proportional to the packet rate
    /// (rate / packet size), not the bit rate.
    pub fn control_port_power_w(&self, gbps: f64, cell_bytes: f64) -> f64 {
        let packets_per_s = gbps * 1e9 / (cell_bytes * 8.0);
        self.control_energy_per_packet_j * packets_per_s
    }

    /// Total hybrid (OSMOSIS-style) port power: optical datapath +
    /// electronic control + electronic buffers (counted in the control
    /// coefficient).
    pub fn hybrid_port_power_w(&self, gbps: f64, cell_bytes: f64) -> f64 {
        self.optical_port_power_w(gbps) + self.control_port_power_w(gbps, cell_bytes)
    }

    /// Line rate at which the optical datapath becomes cheaper than CMOS.
    pub fn crossover_gbps(&self) -> f64 {
        // cmos_static + k·r = soa·gates  →  r = (soa·gates − static)/k.
        ((self.soa_bias_w * self.gates_per_port) - self.cmos_static_w) / self.cmos_w_per_gbps
    }
}

/// Fabric-level power of an N-port, S-stage fabric at the given per-port
/// power (each stage's switches carry every packet once).
pub fn fabric_power_w(per_port_w: f64, ports: u64, stages: u32) -> f64 {
    per_port_w * ports as f64 * stages as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos_power_scales_with_rate() {
        let m = PowerModel::circa_2005();
        let p10 = m.cmos_port_power_w(10.0);
        let p40 = m.cmos_port_power_w(40.0);
        let p160 = m.cmos_port_power_w(160.0);
        assert!(p40 > p10 && p160 > p40);
        // Dynamic part is strictly linear.
        assert!(((p160 - p40) / (p40 - p10) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn optical_power_is_rate_independent() {
        let m = PowerModel::circa_2005();
        assert_eq!(
            m.optical_port_power_w(10.0),
            m.optical_port_power_w(200.0),
            "SOA bias does not change with the data rate"
        );
    }

    #[test]
    fn control_power_scales_with_packet_rate_not_bit_rate() {
        let m = PowerModel::circa_2005();
        // Same bit rate, double the cell size → half the packets → half
        // the control power.
        let small = m.control_port_power_w(40.0, 128.0);
        let large = m.control_port_power_w(40.0, 256.0);
        assert!((small / large - 2.0).abs() < 1e-9);
    }

    #[test]
    fn optics_wins_at_high_rates() {
        let m = PowerModel::circa_2005();
        let x = m.crossover_gbps();
        assert!(x > 0.0 && x < 40.0, "crossover {x} Gb/s");
        // Below crossover CMOS is cheaper, above it optics is.
        assert!(m.cmos_port_power_w(x * 0.5) < m.optical_port_power_w(x * 0.5));
        assert!(m.cmos_port_power_w(x * 4.0) > m.optical_port_power_w(x * 4.0));
    }

    #[test]
    fn hybrid_beats_cmos_at_osmosis_rates() {
        // At 40 Gb/s with 256-byte cells, the full hybrid port (datapath
        // + control) still undercuts the CMOS port.
        let m = PowerModel::circa_2005();
        let hybrid = m.hybrid_port_power_w(40.0, 256.0);
        let cmos = m.cmos_port_power_w(40.0);
        assert!(hybrid < cmos, "hybrid {hybrid} W vs CMOS {cmos} W");
    }

    #[test]
    fn fabric_power_multiplies_stages() {
        assert_eq!(fabric_power_w(2.0, 2048, 3), 2.0 * 2048.0 * 3.0);
        // Fewer stages (OSMOSIS's 3 vs commodity's 9) divide fabric power.
        let osmosis = fabric_power_w(2.0, 2048, 3);
        let commodity = fabric_power_w(2.0, 2048, 9);
        assert_eq!(commodity / osmosis, 3.0);
    }
}
