//! Criterion bench of the multistage fabric simulator: simulated slots
//! per second for radix-8 and radix-16 fat trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use osmosis_fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis_sim::{EngineConfig, SeedSequence};
use osmosis_traffic::BernoulliUniform;

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_sim");
    let slots = 1_000u64;
    g.throughput(Throughput::Elements(slots));
    for radix in [8usize, 16] {
        g.bench_with_input(BenchmarkId::new("fat_tree", radix), &radix, |b, &radix| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut fab = FatTreeFabric::new(FabricConfig::small(radix, 2));
                let hosts = fab.topology().hosts();
                let mut tr = BernoulliUniform::new(hosts, 0.6, &SeedSequence::new(seed));
                fab.run(&mut tr, &EngineConfig::new(0, slots))
            })
        });
    }
    g.finish();
}

fn bench_multilevel(c: &mut Criterion) {
    use osmosis_fabric::multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
    let mut g = c.benchmark_group("multilevel_sim");
    let slots = 1_000u64;
    g.throughput(Throughput::Elements(slots));
    for (radix, levels) in [(8usize, 2u32), (4, 4)] {
        g.bench_with_input(
            BenchmarkId::new("folded_clos", format!("r{radix}l{levels}")),
            &(radix, levels),
            |b, &(radix, levels)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let topo = MultiLevelClos::new(radix, levels);
                    let mut fab = MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2));
                    let mut tr = BernoulliUniform::new(topo.hosts(), 0.5, &SeedSequence::new(seed));
                    fab.run(&mut tr, &EngineConfig::new(0, slots))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fabric, bench_multilevel);
criterion_main!(benches);
