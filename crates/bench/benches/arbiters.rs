//! Criterion benches of the arbiter primitives at switch (64) and fabric
//! (2048) port counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};

fn bench_bitset(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbiter");
    for n in [64usize, 2048] {
        let mut req = BitSet::new(n);
        for i in (0..n).step_by(7) {
            req.set(i);
        }
        g.bench_with_input(BenchmarkId::new("next_set_wrapping", n), &n, |b, &n| {
            let mut from = 0usize;
            b.iter(|| {
                from = (from + 13) % n;
                black_box(req.next_set_wrapping(from))
            })
        });
        g.bench_with_input(BenchmarkId::new("rr_arbitrate", n), &n, |b, &n| {
            let mut arb = RoundRobinArbiter::new(n);
            b.iter(|| {
                let gr = arb.arbitrate(black_box(&req));
                if let Some(i) = gr {
                    arb.advance_past(i);
                }
                gr
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bitset);
criterion_main!(benches);
