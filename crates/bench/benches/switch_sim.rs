//! Criterion bench of the slotted switch simulator itself: simulated cell
//! slots per second at the demonstrator's 64 ports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use osmosis_sched::Flppr;
use osmosis_switch::{run_uniform, EngineConfig};

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_sim");
    let slots = 2_000u64;
    g.throughput(Throughput::Elements(slots));
    for load in [0.5f64, 0.9] {
        g.bench_with_input(
            BenchmarkId::new("voq_flppr_64p", format!("load{load}")),
            &load,
            |b, &load| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_uniform(
                        || Box::new(Flppr::osmosis(64, 2)),
                        load,
                        &EngineConfig::new(0, slots).with_seed(seed),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
