//! Criterion benches for the FEC hot path: GF(2^8) multiply, block
//! encode/decode, and full 256-byte-cell encode+decode - the per-cell
//! work an OSMOSIS adapter does every 51.2 ns.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use osmosis_fec::code::{decode_payload, encode_payload, OsmosisCode, DATA_SYMBOLS};
use osmosis_fec::gf256;

fn bench_gf(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256");
    g.bench_function("mul_table", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for x in 1..=255u8 {
                acc ^= gf256::mul(black_box(x), black_box(0x53));
            }
            acc
        })
    });
    g.bench_function("inv", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for x in 1..=255u8 {
                acc ^= gf256::inv(black_box(x));
            }
            acc
        })
    });
    g.finish();
}

fn bench_block(c: &mut Criterion) {
    let code = OsmosisCode::new();
    let data = [0x5Au8; DATA_SYMBOLS];
    let clean = code.encode(&data);
    let mut g = c.benchmark_group("fec_block");
    g.throughput(Throughput::Bytes(DATA_SYMBOLS as u64));
    g.bench_function("encode", |b| b.iter(|| code.encode(black_box(&data))));
    g.bench_function("decode_clean", |b| {
        b.iter(|| {
            let mut blk = clean;
            code.decode(black_box(&mut blk))
        })
    });
    g.bench_function("decode_single_error", |b| {
        b.iter(|| {
            let mut blk = clean;
            blk[7] ^= 0x10;
            code.decode(black_box(&mut blk))
        })
    });
    g.finish();
}

fn bench_cell(c: &mut Criterion) {
    let code = OsmosisCode::new();
    let payload: Vec<u8> = (0..256).map(|i| i as u8).collect();
    let coded = encode_payload(&code, &payload);
    let mut g = c.benchmark_group("fec_cell_256B");
    g.throughput(Throughput::Bytes(256));
    g.bench_function("encode_cell", |b| {
        b.iter(|| encode_payload(&code, black_box(&payload)))
    });
    g.bench_function("decode_cell", |b| {
        b.iter(|| decode_payload(&code, black_box(&coded)))
    });
    g.finish();
}

criterion_group!(benches, bench_gf, bench_block, bench_cell);
criterion_main!(benches);
