//! Engine-overhead bench: the VOQ switch run through the shared slotted
//! engine (`SlottedModel` via `run_switch`) against the same simulation
//! hand-rolled in the pre-refactor inline-loop shape, and with the
//! `TraceSink` both disabled (`NullTrace`, monomorphized away) and
//! enabled (`CountingTrace`). The engine's claim — zero-cost
//! instrumentation when tracing is off — is checked here, not assumed.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use osmosis_sched::{CellScheduler, Flppr};
use osmosis_sim::stats::{Histogram, Welford};
use osmosis_sim::{CountingTrace, EngineConfig, SeedSequence};
use osmosis_switch::{run_switch_traced, Cell, VoqSwitch};
use osmosis_traffic::{Arrival, BernoulliUniform, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

const PORTS: usize = 64;
const SLOTS: u64 = 2_000;
const LOAD: f64 = 0.7;

fn traffic(seed: u64) -> BernoulliUniform {
    BernoulliUniform::new(PORTS, LOAD, &SeedSequence::new(seed))
}

/// The shape every bespoke simulator had before the engine refactor: one
/// monolithic loop owning the VOQs, the warmup gate, and the statistics
/// inline. Kept here as the baseline the engine is measured against.
fn inline_loop(seed: u64) -> (u64, f64) {
    let mut sched: Box<dyn CellScheduler> = Box::new(Flppr::osmosis(PORTS, 2));
    let mut tr = traffic(seed);
    let warmup = 0u64;
    let mut voq: Vec<VecDeque<Cell>> = (0..PORTS * PORTS).map(|_| VecDeque::new()).collect();
    let mut egress: Vec<VecDeque<Cell>> = (0..PORTS).map(|_| VecDeque::new()).collect();
    let mut stamper = SequenceStamper::new();
    let mut checker = SequenceChecker::new();
    let mut arrivals: Vec<Arrival> = Vec::with_capacity(PORTS);
    let mut next_id = 0u64;
    let mut delivered = 0u64;
    let mut delay = Welford::new();
    let mut delay_hist = Histogram::new(1.0, 4_096);
    let mut grant_hist = Histogram::new(1.0, 1_024);
    for t in 0..warmup + SLOTS {
        let measuring = t >= warmup;
        // Phase 1: the scheduler's matching crosses the crossbar.
        let matching = sched.tick(t);
        for &(i, o) in matching.pairs() {
            let mut cell = voq[i * PORTS + o].pop_front().expect("granted empty VOQ");
            cell.grant_slot = t;
            if measuring && cell.inject_slot >= warmup {
                grant_hist.record((t - cell.inject_slot) as f64);
            }
            egress[o].push_back(cell);
        }
        // Phase 2: each egress transmits one cell toward its host.
        for (o, q) in egress.iter_mut().enumerate() {
            if let Some(cell) = q.pop_front() {
                debug_assert_eq!(cell.dst, o);
                checker.record(cell.src, cell.dst, cell.seq);
                if measuring {
                    delivered += 1;
                    if cell.inject_slot >= warmup {
                        let d = (t - cell.inject_slot) as f64;
                        delay_hist.record(d);
                        delay.add(d);
                    }
                }
            }
        }
        // Phase 3: the slot's arrivals enter the VOQs.
        arrivals.clear();
        tr.arrivals(t, &mut arrivals);
        for a in &arrivals {
            let seq = stamper.stamp(a.src, a.dst);
            voq[a.src * PORTS + a.dst].push_back(Cell::new(next_id, a.src, a.dst, a.class, seq, t));
            next_id += 1;
            sched.note_arrival(a.src, a.dst);
        }
    }
    assert_eq!(checker.reordered(), 0);
    (delivered, delay_hist.mean())
}

fn engine_run(seed: u64) -> (u64, f64) {
    let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(PORTS, 2)));
    let r = sw.run(&mut traffic(seed), &EngineConfig::new(0, SLOTS));
    (r.delivered, r.mean_delay)
}

fn engine_run_traced(seed: u64) -> (u64, f64) {
    let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(PORTS, 2)));
    let mut sink = CountingTrace::default();
    let r = run_switch_traced(
        &mut sw,
        &mut traffic(seed),
        &EngineConfig::new(0, SLOTS),
        &mut sink,
    );
    assert_eq!(sink.delivers, r.delivered);
    (r.delivered, r.mean_delay)
}

fn bench_engine_overhead(c: &mut Criterion) {
    // Same seed → the three variants simulate the identical cell stream;
    // checked once up front so the bench compares like with like.
    let a = inline_loop(1);
    let b = engine_run(1);
    let t = engine_run_traced(1);
    assert_eq!(a, b, "engine must reproduce the inline loop exactly");
    assert_eq!(b, t, "tracing must not perturb the simulation");

    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(SLOTS));
    let mut seed = 0u64;
    g.bench_function("voq_64p/inline_loop", |b| {
        b.iter(|| {
            seed += 1;
            black_box(inline_loop(seed))
        })
    });
    let mut seed = 0u64;
    g.bench_function("voq_64p/engine_notrace", |b| {
        b.iter(|| {
            seed += 1;
            black_box(engine_run(seed))
        })
    });
    let mut seed = 0u64;
    g.bench_function("voq_64p/engine_counting_trace", |b| {
        b.iter(|| {
            seed += 1;
            black_box(engine_run_traced(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine_overhead);
criterion_main!(benches);
