//! Criterion benches for the crossbar schedulers: one tick under
//! saturation - the work a hardware arbiter must finish inside one
//! 51.2 ns cell cycle.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use osmosis_sched::{CellScheduler, Flppr, Islip, Pim, PipelinedArbiter};

fn saturate(s: &mut dyn CellScheduler) {
    let n = s.inputs();
    for i in 0..n {
        for o in 0..n {
            for _ in 0..4 {
                s.note_arrival(i, o);
            }
        }
    }
}

fn bench_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_tick_saturated");
    for n in [16usize, 64] {
        g.bench_with_input(BenchmarkId::new("islip_log2n", n), &n, |b, &n| {
            let mut s = Islip::log2n(n, 1);
            saturate(&mut s);
            let mut t = 0u64;
            b.iter(|| {
                // Top the queues up so the instance stays saturated.
                for i in 0..n {
                    s.note_arrival(i, (t as usize + i) % n);
                }
                t += 1;
                black_box(s.tick(t))
            })
        });
        g.bench_with_input(BenchmarkId::new("pim_1", n), &n, |b, &n| {
            let mut s = Pim::new(n, 1, 1, 7);
            saturate(&mut s);
            let mut t = 0u64;
            b.iter(|| {
                for i in 0..n {
                    s.note_arrival(i, (t as usize + i) % n);
                }
                t += 1;
                black_box(s.tick(t))
            })
        });
        g.bench_with_input(BenchmarkId::new("flppr_log2n", n), &n, |b, &n| {
            let mut s = Flppr::osmosis(n, 1);
            saturate(&mut s);
            let mut t = 0u64;
            b.iter(|| {
                for i in 0..n {
                    s.note_arrival(i, (t as usize + i) % n);
                }
                t += 1;
                black_box(s.tick(t))
            })
        });
        g.bench_with_input(BenchmarkId::new("pipelined_log2n", n), &n, |b, &n| {
            let mut s = PipelinedArbiter::log2n(n, 1);
            saturate(&mut s);
            let mut t = 0u64;
            b.iter(|| {
                for i in 0..n {
                    s.note_arrival(i, (t as usize + i) % n);
                }
                t += 1;
                black_box(s.tick(t))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tick);
criterion_main!(benches);
