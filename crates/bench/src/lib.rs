//! # osmosis-bench
//!
//! The harness that regenerates every table and figure of the paper (see
//! `DESIGN.md` §4 for the experiment index). Each `src/bin/` binary
//! prints one table/figure; `benches/` holds Criterion micro-benchmarks
//! of the hot kernels (FEC, arbiters, schedulers, switch/fabric
//! simulation slots).
//!
//! Run a figure with, e.g.:
//!
//! ```text
//! cargo run --release -p osmosis-bench --bin fig7_delay_throughput
//! ```
//!
//! Every binary accepts `--quick` to run at test scale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Print a fixed-width table: a header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Parse repeatable `--topology <spec>` flags through the topology spec
/// grammar (see `osmosis_fabric::TopologySpec`). Exits with status 2 on
/// a missing or unparseable spec, like every other bad-flag path in the
/// harness. Shared by the studies that route legs through declared
/// topologies (`availability_study`, `ocs_study`, `campaign`).
pub fn topologies_from_args() -> Vec<osmosis_fabric::TopologySpec> {
    let args: Vec<String> = std::env::args().collect();
    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--topology" {
            let Some(text) = args.get(i + 1) else {
                eprintln!("--topology needs a spec argument");
                std::process::exit(2);
            };
            match text.parse::<osmosis_fabric::TopologySpec>() {
                Ok(s) => specs.push(s),
                Err(e) => {
                    eprintln!("bad --topology {text}: {e}");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    specs
}

/// The single-topology form of [`topologies_from_args`]: at most one
/// `--topology` flag, for studies whose fabric is one declared spec.
pub fn topology_from_args() -> Option<osmosis_fabric::TopologySpec> {
    let specs = topologies_from_args();
    if specs.len() > 1 {
        eprintln!("this study takes at most one --topology flag");
        std::process::exit(2);
    }
    specs.first().copied()
}

/// Parse the common `--quick` flag.
pub fn scale_from_args() -> osmosis_core::Scale {
    if std::env::args().any(|a| a == "--quick") {
        osmosis_core::Scale::Quick
    } else {
        osmosis_core::Scale::Full
    }
}
