//! # osmosis-bench
//!
//! The harness that regenerates every table and figure of the paper (see
//! `DESIGN.md` §4 for the experiment index). Each `src/bin/` binary
//! prints one table/figure; `benches/` holds Criterion micro-benchmarks
//! of the hot kernels (FEC, arbiters, schedulers, switch/fabric
//! simulation slots).
//!
//! Run a figure with, e.g.:
//!
//! ```text
//! cargo run --release -p osmosis-bench --bin fig7_delay_throughput
//! ```
//!
//! Every binary accepts `--quick` to run at test scale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Print a fixed-width table: a header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Parse the common `--quick` flag.
pub fn scale_from_args() -> osmosis_core::Scale {
    if std::env::args().any(|a| a == "--quick") {
        osmosis_core::Scale::Quick
    } else {
        osmosis_core::Scale::Full
    }
}
