//! Ablation A5: one-shot matching quality vs. the max-size oracle.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::ablations::matching_quality;

fn main() {
    let scale = scale_from_args();
    let rows = matching_quality(scale, 0xA5);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|m| vec![m.name.to_string(), format!("{:.3}", m.quality)])
        .collect();
    print_table(
        "A5: sustained drain rate relative to the Hopcroft-Karp max-size oracle",
        &["scheduler", "fraction of oracle"],
        &table,
    );
}
