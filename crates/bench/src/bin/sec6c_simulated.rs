//! SVI.C in motion: simulate fabrics of different switch radix at the
//! SAME host count and measure what each extra stage costs in latency.

use osmosis_bench::print_table;
use osmosis_fabric::multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
use osmosis_sim::SeedSequence;
use osmosis_traffic::BernoulliUniform;

fn main() {
    // 16 hosts three ways: radix-8 x 2 levels (3 stages, "OSMOSIS-like"),
    // radix-4 x 4 levels (7 stages, "commodity-like"). 64 hosts two ways:
    // radix-16 x 2 (3 stages) vs radix-4 x 6 (11 stages).
    let cases = [
        ("radix-8, 2 levels", MultiLevelClos::new(8, 2), 0.3),
        ("radix-4, 4 levels", MultiLevelClos::new(4, 4), 0.3),
        ("radix-16, 2 levels", MultiLevelClos::new(16, 2), 0.3),
        ("radix-4, 6 levels", MultiLevelClos::new(4, 6), 0.3),
    ];
    let mut rows = Vec::new();
    for (name, topo, load) in cases {
        let mut fab = MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2));
        let mut tr = BernoulliUniform::new(topo.hosts(), load, &SeedSequence::new(0x6C));
        let r = fab.run(&mut tr, &osmosis_fabric::EngineConfig::new(1_000, 10_000));
        rows.push(vec![
            name.to_string(),
            topo.hosts().to_string(),
            format!("{}", r.extra("stages").unwrap_or(0.0) as u32),
            format!("{:.2}", r.mean_delay),
            format!("{:.3}", r.throughput),
            r.reordered.to_string(),
        ]);
    }
    print_table(
        "SVI.C simulated: same hosts, different radix -> stage count vs latency",
        &[
            "fabric",
            "hosts",
            "stages",
            "mean latency (cycles)",
            "throughput",
            "reordered",
        ],
        &rows,
    );
    println!("\nEvery extra stage adds a link flight plus a scheduling cycle: the");
    println!("high-radix (OSMOSIS-like) fabric wins exactly as SVI.C argues.");
}
