//! Extension study (ref. [11]): work conservation of CIOQ switches with
//! limited output buffers vs. internal speedup.

use osmosis_bench::print_table;
use osmosis_sim::SeedSequence;
use osmosis_switch::{CioqSwitch, EngineConfig};
use osmosis_traffic::BernoulliUniform;

fn main() {
    let n = 16;
    let cfg = EngineConfig::new(2_000, 30_000);
    let mut rows = Vec::new();
    for speedup in [1usize, 2, 3] {
        for cap in [1usize, 2, 4, 16] {
            let mut sw = CioqSwitch::new(n, speedup, cap);
            let mut tr = BernoulliUniform::new(n, 0.95, &SeedSequence::new(11));
            let r = sw.run(&mut tr, &cfg);
            rows.push(vec![
                speedup.to_string(),
                cap.to_string(),
                format!("{:.3}", r.throughput),
                format!("{:.4}", r.extra("violation_fraction").unwrap_or(0.0)),
                format!("{:.2}", r.mean_delay),
            ]);
        }
    }
    print_table(
        "Work conservation of CIOQ (16 ports, 95% uniform load)",
        &[
            "speedup",
            "egress buffer (cells)",
            "throughput",
            "violation fraction",
            "mean delay",
        ],
        &rows,
    );
    println!("\nSpeedup 1 cannot be work-conserving; speedup 2 nearly is, *provided* the");
    println!("output buffers are large enough - ref. [11]'s result, and the reason the");
    println!("paper requires work-conserving switches for >95% sustained throughput.");
}
