//! Availability study: degraded-mode throughput and recovery latency of
//! the multistage fabric under the deterministic fault plane.
//!
//! Flags: `--quick` runs at test scale; `--smoke` is `--quick` plus a
//! hard pass/fail on the resilience acceptance bars (for CI);
//! `--audit` attaches the invariant auditors to every run and fails on
//! any violation; `--checkpoint <dir>` checkpoints each completed sweep
//! point to `<dir>` so an interrupted study resumes bit-identically;
//! `--telemetry <path.jsonl>` streams the telemetry plane (metrics
//! registry, spans, snapshots — see DESIGN.md for the record schema)
//! from the nominal and stochastic legs; `--progress` reports live
//! per-job sweep progress on stderr; `--topology <spec>` routes every
//! leg through a declared topology (must be the fault-capable two-level
//! fat tree, e.g. `fat-tree:radix=16,levels=2,planes=2`).

use osmosis_bench::{print_table, scale_from_args, topology_from_args};
use osmosis_core::experiments::availability::{self, AvailabilityOptions};
use osmosis_core::Scale;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let audit = args.iter().any(|a| a == "--audit");
    let checkpoint_dir =
        args.iter()
            .position(|a| a == "--checkpoint")
            .map(|i| match args.get(i + 1) {
                Some(dir) => PathBuf::from(dir),
                None => {
                    eprintln!("--checkpoint needs a directory argument");
                    std::process::exit(2);
                }
            });
    if let Some(dir) = &checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create checkpoint dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let telemetry = args
        .iter()
        .position(|a| a == "--telemetry")
        .map(|i| match args.get(i + 1) {
            Some(path) => PathBuf::from(path),
            None => {
                eprintln!("--telemetry needs a .jsonl path argument");
                std::process::exit(2);
            }
        });
    let progress = args.iter().any(|a| a == "--progress");
    let scale = if smoke {
        Scale::Quick
    } else {
        scale_from_args()
    };
    let opts = AvailabilityOptions {
        audit,
        checkpoint_dir,
        telemetry: telemetry.clone(),
        progress,
        topology: topology_from_args(),
        ..Default::default()
    };
    let r = match availability::run_with(scale, 0xFA11, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("availability sweep failed: {e}");
            std::process::exit(1);
        }
    };

    print_table(
        &format!(
            "Throughput vs failed wavelength planes ({} planes, load {:.2})",
            r.planes, r.load
        ),
        &["planes failed", "throughput", "vs nominal", "dropped"],
        &r.plane_sweep
            .iter()
            .map(|p| {
                vec![
                    p.failed_planes.to_string(),
                    format!("{:.4}", p.report.throughput),
                    format!("{:.1}%", 100.0 * p.relative_throughput),
                    p.report.dropped.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    print_table(
        &format!(
            "Recovery latency vs MTTR ({} of {} planes out from slot {})",
            r.outage_planes, r.planes, r.fault_at
        ),
        &[
            "MTTR (slots)",
            "nominal tput",
            "degraded tput",
            "recovery (slots)",
        ],
        &r.mttr_sweep
            .iter()
            .map(|m| {
                vec![
                    m.mttr.to_string(),
                    format!("{:.4}", m.nominal_windowed),
                    format!("{:.4}", m.degraded_windowed),
                    m.recovery_slots.map_or("never".into(), |s| s.to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    print_table(
        "Stochastic MTBF/MTTR availability (one plane)",
        &["metric", "value"],
        &[
            vec![
                "faults injected".into(),
                r.stochastic.faults_injected.to_string(),
            ],
            vec![
                "faults healed".into(),
                r.stochastic.faults_healed.to_string(),
            ],
            vec![
                "availability".into(),
                format!("{:.4}", r.stochastic.availability),
            ],
            vec![
                "throughput (faults incl.)".into(),
                format!("{:.4}", r.stochastic.throughput),
            ],
        ],
    );

    // Acceptance bars — always checked; --smoke exists so CI runs them at
    // quick scale.
    assert!(
        r.plane_sweep[1].relative_throughput >= 0.8,
        "1 dead plane must keep >= 80% of nominal throughput, got {:.1}%",
        100.0 * r.plane_sweep[1].relative_throughput
    );
    for m in &r.mttr_sweep {
        let rec = m.recovery_slots.expect("fabric must recover after repair");
        assert!(
            rec <= m.mttr,
            "recovery took {rec} slots, above the configured MTTR {}",
            m.mttr
        );
    }
    if audit {
        assert_eq!(
            r.audit_violations, 0,
            "invariant auditors recorded violations"
        );
        println!("\naudit: every invariant held across all legs");
    }

    if let Some(path) = &telemetry {
        // The stream was already flushed and error-checked inside
        // run_with; validate the document end to end before telling the
        // user it is trustworthy.
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read back telemetry file {}: {e}", path.display());
            std::process::exit(1);
        });
        match osmosis_telemetry::validate_jsonl(&text) {
            Ok(stats) => println!(
                "\ntelemetry: {} -> {} runs, {} snapshots, {} spans (schema valid)",
                path.display(),
                stats.metas,
                stats.snapshots,
                stats.spans
            ),
            Err(e) => {
                eprintln!("telemetry file failed schema validation: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("\nOne dead wavelength plane costs almost nothing: surviving planes absorb the");
    println!("re-hashed flows losslessly. A majority outage throttles the fabric for the");
    println!("outage duration, and the backlog drains back to nominal within the MTTR.");
    if smoke {
        println!("smoke: all availability acceptance checks passed");
    }
}
