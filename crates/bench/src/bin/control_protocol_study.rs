//! Extension study (ref. [19]): reliable control channels for crossbar
//! arbitration - naive incremental updates vs. the protected protocol
//! with periodic absolute refresh.

use osmosis_bench::print_table;
use osmosis_switch::{run_control_channel, ControlProtocol};

fn main() {
    let slots = 500_000;
    let mut rows = Vec::new();
    for loss_p in [1e-4f64, 1e-3, 1e-2] {
        for (name, proto) in [
            ("naive", ControlProtocol::Naive),
            (
                "protected/4096",
                ControlProtocol::Protected {
                    refresh_period: 4096,
                },
            ),
            (
                "protected/64",
                ControlProtocol::Protected { refresh_period: 64 },
            ),
        ] {
            let r = run_control_channel(8, proto, 0.6, loss_p, slots, 0x19);
            rows.push(vec![
                format!("{loss_p:.0e}"),
                name.to_string(),
                r.control_losses.to_string(),
                r.stranded.to_string(),
                r.phantom_grants.to_string(),
                format!("{:.4}", r.served as f64 / r.arrivals.max(1) as f64),
            ]);
        }
    }
    print_table(
        "Reliable control protocol (8 VOQs, 60% load, 500k slots)",
        &[
            "msg loss",
            "protocol",
            "losses",
            "stranded cells",
            "phantom grants",
            "served fraction",
        ],
        &rows,
    );
    println!("\nWithout protection every lost request permanently strands a cell; the");
    println!("periodic absolute refresh (ref. [19]) bounds desynchronization to one");
    println!("refresh period - \"we have shown how to make these control channels");
    println!("reliable\" (SIV.B).");
}
