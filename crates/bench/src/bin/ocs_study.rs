//! OCS vs. FLPPR head-to-head: delay, throughput and loss across the ML
//! workloads, plus scheduler performance (epochs/s, BvN decomposition
//! time, simulation slot rate) written to `BENCH_ocs.json` at the repo
//! root for drift tracking.
//!
//! Modes:
//!
//! * default — run the comparison, print the tables and rewrite the
//!   snapshot;
//! * `--quick` — test scale (16 ports);
//! * `--audit` — attach the invariant-audit battery to every run;
//! * `--smoke` — the CI gate: reproducibility, zero-cost-mode equality,
//!   faulted determinism and telemetry-schema assertions under a time
//!   budget; exit 1 on failure, writes nothing;
//! * repeatable `--topology <spec>` — run the packet side through the
//!   compiled fabric of the given spec (exit 2 on a bad spec).

use std::fmt::Write as _;
use std::time::Instant;

use osmosis_bench::{print_table, scale_from_args, topologies_from_args};
use osmosis_core::experiments::ocs_study::{run, workload, OcsOptions, OcsStudy, WORKLOADS};
use osmosis_core::Scale;
use osmosis_fabric::TopologySpec;
use osmosis_faults::{FaultInjector, FaultKind, FaultPlan};
use osmosis_ocs::{run_ocs_instrumented, run_ocs_logged, EpochConfig, OcsScheduler, OcsSwitch};
use osmosis_sched::Flppr;
use osmosis_sim::engine::EngineConfig;
use osmosis_sim::json::Value;
use osmosis_sim::NullCircuits;
use osmosis_switch::{run_switch_circuit, run_switch_instrumented, VoqSwitch};
use osmosis_telemetry::export::{meta_record, summary_record};
use osmosis_telemetry::{
    epoch_record, reconfig_record, validate_jsonl, Decomposition, MetricsRegistry, RunMeta,
};

/// Wall-clock budget for the whole smoke battery on a loaded runner.
const SMOKE_BUDGET_S: f64 = 120.0;

struct Perf {
    workload: &'static str,
    slot_rate: f64,
    epochs_per_s: f64,
    decompose_us: f64,
    epochs: u64,
    reconfigurations: u64,
}

/// Time one OCS run of `name` and the BvN decomposition of its final
/// traffic-matrix estimate.
fn measure(name: &'static str, scale: Scale, seed: u64, epoch: EpochConfig) -> Perf {
    let n = scale.ports();
    let cfg = EngineConfig::new(scale.warmup(), scale.measure()).with_seed(seed);
    let mut tr = workload(name, n, scale.measure(), seed).expect("known workload");
    let mut sw = OcsSwitch::new(n);
    let mut sched = OcsScheduler::new(epoch);
    let t0 = Instant::now();
    let _ = run_switch_circuit(&mut sw, tr.as_mut(), &cfg, &mut sched, None, None);
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let slots = (scale.warmup() + scale.measure()) as f64;
    // Re-decompose the scheduler's final TM estimate in isolation: the
    // per-frame planning cost the epoch budget has to absorb.
    let tm = sched.estimator().estimate().to_vec();
    let iters = 32;
    let t1 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(osmosis_ocs::bvn::decompose(n, std::hint::black_box(&tm)));
    }
    let decompose_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;
    Perf {
        workload: name,
        slot_rate: slots / elapsed,
        epochs_per_s: sched.epochs() as f64 / elapsed,
        decompose_us,
        epochs: sched.epochs(),
        reconfigurations: sched.reconfigurations(),
    }
}

fn snapshot(scale: Scale, points: &[Perf]) -> String {
    let entries: Vec<Value> = points
        .iter()
        .map(|p| {
            Value::Obj(vec![
                ("workload".into(), Value::str(p.workload)),
                ("slot_rate_per_s".into(), Value::f64(p.slot_rate)),
                ("epochs_per_s".into(), Value::f64(p.epochs_per_s)),
                ("decompose_us".into(), Value::f64(p.decompose_us)),
                ("epochs".into(), Value::u64(p.epochs)),
                ("reconfigurations".into(), Value::u64(p.reconfigurations)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("bench".into(), Value::str("ocs-scheduler")),
        ("ports".into(), Value::u64(scale.ports() as u64)),
        ("slots".into(), Value::u64(scale.warmup() + scale.measure())),
        ("points".into(), Value::Arr(entries)),
    ])
    .encode()
}

fn comparison_rows(study: &OcsStudy) -> Vec<Vec<String>> {
    study
        .points
        .iter()
        .map(|p| {
            vec![
                p.workload.to_string(),
                p.mode.to_string(),
                format!("{:.3}", p.offered_load),
                format!("{:.3}", p.throughput),
                format!("{:.2}", p.mean_delay),
                p.p99_delay
                    .map_or_else(|| "-".to_string(), |d| format!("{d:.0}")),
                format!("{}", p.dropped),
                if p.mode == "ocs" {
                    format!("{}/{}", p.reconfigurations, p.epochs)
                } else {
                    "-".to_string()
                },
                if p.mode == "ocs" {
                    format!("{:.2}", p.utilization)
                } else {
                    "-".to_string()
                },
                format!("{:016x}", p.fingerprint),
            ]
        })
        .collect()
}

fn run_study(scale: Scale, opts: &OcsOptions) -> OcsStudy {
    match run(scale, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The CI smoke battery. Every check prints a line; any failure exits 1.
fn smoke(audit: bool, topologies: &[TopologySpec]) {
    let t0 = Instant::now();
    let mut failed = false;
    let mut check = |name: &str, ok: bool| {
        println!("smoke: {name} ({})", if ok { "ok" } else { "FAILED" });
        failed |= !ok;
    };
    let epoch = EpochConfig::osmosis_default();
    let cfg = EngineConfig::new(500, 5_000).with_seed(0x0C5);
    let n = Scale::Quick.ports();

    // 1. Same-seed OCS study is bit-identical, and audited runs are
    //    clean, across every workload and both modes.
    let opts = OcsOptions {
        audit,
        topology: topologies.first().copied(),
        ..OcsOptions::default()
    };
    let a = run_study(Scale::Quick, &opts);
    let b = run_study(Scale::Quick, &opts);
    check(
        "same-seed study bit-identical",
        a.points.len() == 2 * WORKLOADS.len()
            && a.points
                .iter()
                .zip(b.points.iter())
                .all(|(x, y)| x.fingerprint == y.fingerprint),
    );
    if audit {
        check(
            "audit battery clean",
            a.audit_violations == 0 && b.audit_violations == 0,
        );
    }

    // 2. Zero-cost mode hook: a packet run through the circuit entry
    //    point with the null plane equals the plain engine run.
    let mut tr1 = workload("uniform", n, 5_000, 0x0C5).expect("uniform");
    let mut sw1 = VoqSwitch::new(Box::new(Flppr::osmosis(n, 1)));
    let plain = run_switch_instrumented(&mut sw1, tr1.as_mut(), &cfg, None, None);
    let mut tr2 = workload("uniform", n, 5_000, 0x0C5).expect("uniform");
    let mut sw2 = VoqSwitch::new(Box::new(Flppr::osmosis(n, 1)));
    let mut null = NullCircuits;
    let hooked = run_switch_circuit(&mut sw2, tr2.as_mut(), &cfg, &mut null, None, None);
    check(
        "null circuit plane bit-identical to plain run",
        plain.fingerprint() == hooked.fingerprint(),
    );

    // 3. Reconfiguration faults stay deterministic: two same-seed OCS
    //    runs under a stuck-circuit schedule match bit for bit.
    let faulted = || {
        let plan = FaultPlan::new()
            .one_shot(FaultKind::CircuitStuck { input: 2 }, 1_000, Some(800))
            .one_shot(FaultKind::CircuitStuck { input: 5 }, 2_500, None);
        let mut inj = FaultInjector::new(plan);
        let mut tr = workload("hotspot_skew", n, 5_000, 0x0C5).expect("skew");
        run_ocs_instrumented(tr.as_mut(), epoch, &cfg, Some(&mut inj), None)
    };
    let f1 = faulted();
    let f2 = faulted();
    check(
        "stuck-circuit runs reproducible",
        f1.fingerprint() == f2.fingerprint() && f1.fingerprint() != plain.fingerprint(),
    );

    // 4. Telemetry: the epoch log exports as schema-valid JSONL.
    let mut tr = workload("allreduce_ring", n, 5_000, 0x0C5).expect("ring");
    let (report, log) = run_ocs_logged(tr.as_mut(), epoch, &cfg);
    let meta = RunMeta {
        seed: 0x0C5,
        ports: n,
        warmup_slots: 500,
        measure_slots: 5_000,
        sample_every: 0,
        snapshot_every: 0,
    };
    let mut doc = String::new();
    let _ = writeln!(doc, "{}", meta_record(0, "ocs_study", &meta).encode());
    for e in &log {
        let _ = writeln!(
            doc,
            "{}",
            epoch_record(
                0,
                e.epoch,
                e.start_slot,
                e.reconfigured,
                e.guard_slots,
                e.transfers,
                e.utilization,
            )
            .encode()
        );
        if e.reconfigured {
            let _ = writeln!(
                doc,
                "{}",
                reconfig_record(0, e.epoch, e.start_slot, e.changed_circuits, e.guard_slots)
                    .encode()
            );
        }
    }
    let _ = writeln!(
        doc,
        "{}",
        summary_record(
            0,
            &report,
            &MetricsRegistry::new(),
            &Decomposition::default()
        )
        .encode()
    );
    match validate_jsonl(&doc) {
        Ok(stats) => check(
            "epoch log validates as JSONL",
            stats.epochs == log.len() as u64
                && stats.reconfigs == log.iter().filter(|e| e.reconfigured).count() as u64
                && stats.epochs > 0,
        ),
        Err(e) => check(&format!("epoch log validates as JSONL: {e}"), false),
    }

    let elapsed = t0.elapsed().as_secs_f64();
    check(
        &format!("within {SMOKE_BUDGET_S} s budget ({elapsed:.1} s)"),
        elapsed <= SMOKE_BUDGET_S,
    );
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let audit = std::env::args().any(|a| a == "--audit");
    let topologies = topologies_from_args();
    if std::env::args().any(|a| a == "--smoke") {
        smoke(audit, &topologies);
        return;
    }

    let scale = scale_from_args();
    let header = [
        "workload",
        "mode",
        "offered",
        "throughput",
        "mean delay",
        "p99",
        "dropped",
        "reconf/epochs",
        "util",
        "fingerprint",
    ];
    if topologies.is_empty() {
        let opts = OcsOptions {
            audit,
            ..OcsOptions::default()
        };
        let study = run_study(scale, &opts);
        print_table(
            &format!(
                "OCS vs. FLPPR at {} ports (epoch {} slots, {} guard)",
                study.ports, opts.epoch.epoch_slots, opts.epoch.guard_slots
            ),
            &header,
            &comparison_rows(&study),
        );
        if audit {
            println!("audit violations: {}", study.audit_violations);
        }
    } else {
        for spec in &topologies {
            let opts = OcsOptions {
                audit,
                topology: Some(*spec),
                ..OcsOptions::default()
            };
            let study = run_study(scale, &opts);
            print_table(
                &format!("OCS edge vs. packet fabric {spec} ({} hosts)", study.ports),
                &header,
                &comparison_rows(&study),
            );
            if audit {
                println!("audit violations: {}", study.audit_violations);
            }
        }
    }

    // Scheduler performance snapshot, always at quick scale so the
    // committed JSON is comparable across machines and runs.
    let points: Vec<Perf> = WORKLOADS
        .iter()
        .map(|&w| measure(w, Scale::Quick, 0x0C5, EpochConfig::osmosis_default()))
        .collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workload.to_string(),
                format!("{:.0}", p.slot_rate),
                format!("{:.0}", p.epochs_per_s),
                format!("{:.1}", p.decompose_us),
                format!("{}", p.epochs),
                format!("{}", p.reconfigurations),
            ]
        })
        .collect();
    print_table(
        "OCS scheduler performance (quick scale)",
        &[
            "workload",
            "slots/s",
            "epochs/s",
            "decompose (us)",
            "epochs",
            "reconfigs",
        ],
        &rows,
    );
    let json = snapshot(Scale::Quick, &points);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ocs.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
