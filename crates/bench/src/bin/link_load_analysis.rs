//! Static link-load analysis: analytic saturation ceilings for folded-
//! Clos fabrics under uniform traffic, cross-checked against simulation.

use osmosis_bench::print_table;
use osmosis_fabric::loadmap::uniform_load_map;
use osmosis_fabric::multilevel::MultiLevelClos;

fn main() {
    let cases = [
        MultiLevelClos::new(8, 2),
        MultiLevelClos::new(16, 2),
        MultiLevelClos::new(4, 4),
        MultiLevelClos::new(4, 6),
        MultiLevelClos::new(6, 3),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|t| {
            let m = uniform_load_map(t, 1.0);
            vec![
                format!("radix-{} x {} levels", t.radix, t.levels),
                t.hosts().to_string(),
                t.stages().to_string(),
                format!("{:.3}", m.mean),
                format!("{:.3}", m.max),
                format!("{:.2}", m.imbalance()),
                format!("{:.2}", m.saturation_load(1.0)),
            ]
        })
        .collect();
    print_table(
        "Per-link load under uniform traffic (offered = 1.0/host; flow-hash routing)",
        &[
            "topology",
            "hosts",
            "stages",
            "mean link load",
            "max link load",
            "imbalance",
            "saturation est.",
        ],
        &rows,
    );
    println!("\nDeterministic per-flow routing preserves order but concentrates load on");
    println!("hash-unlucky links; the max-link column is the fabric's analytic ceiling.");
    println!("(This analyzer caught a real defect: an under-mixed hash gave the radix-4");
    println!("six-level fabric a 4.3x imbalance and an 0.12 ceiling, matching simulation.)");
}
