//! Regenerates Fig. 7: delay vs. throughput for the OSMOSIS switch with
//! FLPPR - single receiver vs. the dual-receiver datapath.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::fig7;

fn main() {
    let scale = scale_from_args();
    let pts = fig7::run(scale, 0xF167);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.load),
                format!("{:.3}", p.throughput_single),
                format!("{:.2}", p.delay_single),
                format!("{:.3}", p.throughput_dual),
                format!("{:.2}", p.delay_dual),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 7: delay vs. throughput, {}-port switch, FLPPR",
            scale.ports()
        ),
        &[
            "offered load",
            "thr (1 rx)",
            "delay (1 rx)",
            "thr (2 rx)",
            "delay (2 rx)",
        ],
        &rows,
    );
    println!("\nDelays in cell cycles (51.2 ns each). The dual-receiver curve stays nearly");
    println!("flat over a wide load range and rises only near saturation - the paper's");
    println!("\"Dual Receiver\" curve. Both arms sustain >95% throughput.");
}
