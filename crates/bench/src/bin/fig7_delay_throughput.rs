//! Regenerates Fig. 7: delay vs. throughput for the OSMOSIS switch with
//! FLPPR - single receiver vs. the dual-receiver datapath.
//!
//! `--telemetry <path.jsonl>` reruns both arms sequentially under the
//! telemetry plane, streaming metrics/spans/snapshots to `path` (see
//! DESIGN.md for the record schema). The table is identical either way:
//! telemetry only observes.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::{fig7, latency_decomposition};
use osmosis_telemetry::TelemetrySink;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let telemetry = args
        .iter()
        .position(|a| a == "--telemetry")
        .map(|i| match args.get(i + 1) {
            Some(path) => PathBuf::from(path),
            None => {
                eprintln!("--telemetry needs a .jsonl path argument");
                std::process::exit(2);
            }
        });
    let scale = scale_from_args();
    let seed = 0xF167;

    let pts = if let Some(path) = &telemetry {
        // The telemetered sweep is sequential (one sink, one stream);
        // rebuild the Fig. 7 points from the two decomposed arms.
        let mut sink = TelemetrySink::new()
            .with_label("fig7")
            .stream_to_path(path)
            .unwrap_or_else(|e| {
                eprintln!("cannot open telemetry stream {}: {e}", path.display());
                std::process::exit(1);
            });
        let single = latency_decomposition::run_with_sink(scale, seed, 1, &mut sink);
        let dual = latency_decomposition::run_with_sink(scale, seed, 2, &mut sink);
        if let Err(e) = sink.finish_stream() {
            eprintln!("{e}");
            std::process::exit(1);
        }
        single
            .iter()
            .zip(dual.iter())
            .map(|(s, d)| fig7::Fig7Point {
                load: s.load,
                throughput_single: s.throughput,
                delay_single: s.mean_delay,
                throughput_dual: d.throughput,
                delay_dual: d.mean_delay,
            })
            .collect()
    } else {
        fig7::run(scale, seed)
    };

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.load),
                format!("{:.3}", p.throughput_single),
                format!("{:.2}", p.delay_single),
                format!("{:.3}", p.throughput_dual),
                format!("{:.2}", p.delay_dual),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 7: delay vs. throughput, {}-port switch, FLPPR",
            scale.ports()
        ),
        &[
            "offered load",
            "thr (1 rx)",
            "delay (1 rx)",
            "thr (2 rx)",
            "delay (2 rx)",
        ],
        &rows,
    );
    if let Some(path) = &telemetry {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read back telemetry file {}: {e}", path.display());
            std::process::exit(1);
        });
        match osmosis_telemetry::validate_jsonl(&text) {
            Ok(stats) => println!(
                "\ntelemetry: {} -> {} runs, {} snapshots, {} spans (schema valid)",
                path.display(),
                stats.metas,
                stats.snapshots,
                stats.spans
            ),
            Err(e) => {
                eprintln!("telemetry file failed validation: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\nDelays in cell cycles (51.2 ns each). The dual-receiver curve stays nearly");
    println!("flat over a wide load range and rises only near saturation - the paper's");
    println!("\"Dual Receiver\" curve. Both arms sustain >95% throughput.");
}
