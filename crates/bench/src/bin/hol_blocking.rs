//! Ablation A3: head-of-line blocking - what VOQ buys over single-FIFO
//! input queues (SIII's motivation for VOQ).
//!
//! `--telemetry <path.jsonl>` observes both saturated runs (FIFO, then
//! VOQ) with the telemetry plane and streams the two-run JSONL document
//! to `path`. The printed numbers are bit-identical either way.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::ablations::{hol_blocking, hol_blocking_with_sink};
use osmosis_telemetry::TelemetrySink;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let telemetry = args
        .iter()
        .position(|a| a == "--telemetry")
        .map(|i| match args.get(i + 1) {
            Some(path) => PathBuf::from(path),
            None => {
                eprintln!("--telemetry needs a .jsonl path argument");
                std::process::exit(2);
            }
        });
    let scale = scale_from_args();
    let r = if let Some(path) = &telemetry {
        let mut sink = TelemetrySink::new()
            .with_label("hol_blocking")
            .stream_to_path(path)
            .unwrap_or_else(|e| {
                eprintln!("cannot open telemetry stream {}: {e}", path.display());
                std::process::exit(1);
            });
        let r = hol_blocking_with_sink(scale, 0xA3, &mut sink);
        if let Err(e) = sink.finish_stream() {
            eprintln!("{e}");
            std::process::exit(1);
        }
        r
    } else {
        hol_blocking(scale, 0xA3)
    };
    print_table(
        "A3: saturated uniform throughput",
        &["architecture", "throughput"],
        &[
            vec![
                "single FIFO per input (HoL-blocked)".into(),
                format!("{:.3}", r.fifo_throughput),
            ],
            vec!["VOQ + FLPPR".into(), format!("{:.3}", r.voq_throughput)],
            vec![
                "Karol limit 2 - sqrt(2)".into(),
                format!("{:.3}", r.karol_limit),
            ],
        ],
    );
    if let Some(path) = &telemetry {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read back telemetry file {}: {e}", path.display());
            std::process::exit(1);
        });
        match osmosis_telemetry::validate_jsonl(&text) {
            Ok(stats) => println!(
                "\ntelemetry: {} -> {} runs, {} snapshots, {} spans (schema valid)",
                path.display(),
                stats.metas,
                stats.snapshots,
                stats.spans
            ),
            Err(e) => {
                eprintln!("telemetry file failed validation: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\nFIFO input queues saturate near 58.6%; VOQ restores full throughput -");
    println!("the well-known result the paper builds on (ref. [17]).");
}
