//! Ablation A3: head-of-line blocking - what VOQ buys over single-FIFO
//! input queues (SIII's motivation for VOQ).

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::ablations::hol_blocking;

fn main() {
    let scale = scale_from_args();
    let r = hol_blocking(scale, 0xA3);
    print_table(
        "A3: saturated uniform throughput",
        &["architecture", "throughput"],
        &[
            vec![
                "single FIFO per input (HoL-blocked)".into(),
                format!("{:.3}", r.fifo_throughput),
            ],
            vec!["VOQ + FLPPR".into(), format!("{:.3}", r.voq_throughput)],
            vec![
                "Karol limit 2 - sqrt(2)".into(),
                format!("{:.3}", r.karol_limit),
            ],
        ],
    );
    println!("\nFIFO input queues saturate near 58.6%; VOQ restores full throughput -");
    println!("the well-known result the paper builds on (ref. [17]).");
}
