//! Regenerates Fig. 6: FLPPR request-to-grant latency vs. the prior
//! pipelined art, for a lone request entering an idle 64-port switch at
//! every pipeline phase.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::fig6;
use osmosis_core::Scale;

fn main() {
    let scale = scale_from_args();
    let ports = if scale == Scale::Quick { 16 } else { 64 };
    let r = fig6::run(ports);
    let rows: Vec<Vec<String>> = (0..r.depth)
        .map(|phase| {
            vec![
                phase.to_string(),
                format!("{} cycle(s)", r.flppr_latency_by_phase[phase]),
                format!("{} cycle(s)", r.prior_art_latency_by_phase[phase]),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 6: request-to-grant latency, {}-port switch (pipeline depth log2N = {})",
            r.ports, r.depth
        ),
        &["arrival phase", "FLPPR", "prior pipelined art"],
        &rows,
    );
    println!("\nFLPPR grants a lone request in a single packet cycle from any phase;");
    println!("the prior art always waits the full log2(N) pipeline depth.");
}
