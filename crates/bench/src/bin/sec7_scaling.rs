//! Regenerates the SVII scaling outlook.

use osmosis_bench::print_table;
use osmosis_core::experiments::sec7;

fn main() {
    let r = sec7::run();
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.name.to_string(),
                format!(
                    "{}x{} = {}",
                    row.config.wavelengths,
                    row.config.fibers,
                    row.config.ports()
                ),
                format!("{:.0}", row.config.port_gbps),
                format!("{:.1}", row.aggregate_tbps),
                if row.feasible { "yes" } else { "no" }.to_string(),
                row.flppr_depth.to_string(),
                format!("{:.1}", row.cell_time_ns),
            ]
        })
        .collect();
    print_table(
        "SVII: single-stage scaling (electronic ceiling: 6-8 Tb/s)",
        &[
            "configuration",
            "lambda x fibers = ports",
            "Gb/s/port",
            "aggregate Tb/s",
            "optics OK?",
            "FLPPR depth",
            "cell time ns",
        ],
        &rows,
    );
    println!("\n64-byte cells at 40 Gb/s:");
    println!(
        "  user bandwidth with today's 10.4 ns guard: {:.1}%  ->  with sub-ns SVII guard: {:.1}%",
        r.small_cell_user_fraction_today * 100.0,
        r.small_cell_user_fraction_outlook * 100.0
    );
    println!("\nASIC 4x scheduler speedup trade space:");
    for (desc, fits) in &r.asic_trades {
        println!("  {desc}: {}", if *fits { "fits" } else { "does not fit" });
    }
}
