//! Ablation A2: user-bandwidth fraction vs. guard time for several cell
//! sizes - why sub-ns SOAs (SVII) matter for small cells.

use osmosis_bench::print_table;
use osmosis_core::experiments::ablations::guard_ablation;

fn main() {
    let curves = guard_ablation();
    let guards: Vec<String> = curves[0]
        .1
        .iter()
        .map(|(g, _)| format!("{:.1}", g.as_ns_f64()))
        .collect();
    let mut header = vec!["cell bytes \\ guard ns".to_string()];
    header.extend(guards);
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|(cell, pts)| {
            let mut row = vec![cell.to_string()];
            row.extend(pts.iter().map(|(_, f)| format!("{:.2}", f)));
            row
        })
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "A2: user-bandwidth fraction vs. guard time (40 Gb/s, 6.25% FEC)",
        &header_refs,
        &rows,
    );
    println!("\nAt 64-byte cells the 10.4 ns guard destroys efficiency; the sub-ns SVII");
    println!("outlook restores it - enabling shorter cells at the same port rate.");
}
