//! Regenerates Fig. 1: unloaded latency of a bufferless single-stage
//! fabric with a central scheduler, vs. machine-room diameter — the 2 RTT
//! argument that rules single-stage out.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::fig1;
use osmosis_core::Scale;

fn main() {
    let scale = scale_from_args();
    let ports = scale.ports();
    let diameters = [5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 75.0, 100.0];
    let pts = fig1::run(&diameters, ports, 0xF161);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.diameter_m),
                format!("{:.0}", p.half_rtt_ns),
                format!("{:.0}", p.two_rtt_ns),
                format!("{:.1}", p.simulated_ns),
                if p.fits_budget { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 1: single-stage fabric latency vs. machine-room diameter",
        &[
            "diameter (m)",
            "1/2 RTT (ns)",
            "2 RTT floor (ns)",
            "sim latency (ns)",
            "fits 500 ns?",
        ],
        &rows,
    );
    let _ = Scale::Quick; // scale only affects port count here
    println!("\nConclusion: at 50 m (the paper's machine room) the 2-RTT control loop");
    println!("alone exceeds the 500 ns fabric budget -> multistage topology required.");
}
