//! Extension study: multicast on the broadcast-and-select datapath.
//! The optical crossbar broadcasts every input to all switching modules,
//! so multicast costs nothing optically; this study measures the
//! scheduling side (fanout splitting) across fanouts.

use osmosis_bench::print_table;
use osmosis_switch::multicast::run_multicast;

fn main() {
    let n = 64;
    let slots = 30_000;
    let mut rows = Vec::new();
    for fanout in [1usize, 2, 4, 8, 16, 32] {
        // Keep the copy load per output fixed at ~0.5.
        let rate = 0.5 / fanout as f64;
        let r = run_multicast(n, fanout, rate, slots, 0x3C);
        rows.push(vec![
            fanout.to_string(),
            format!("{rate:.4}"),
            format!("{:.3}", r.throughput),
            format!("{:.2}", r.mean_delay),
            format!("{:.2}", r.extra("mean_transmissions").unwrap_or(0.0)),
            format!(
                "{:.1}%",
                100.0 * r.delivered as f64 / r.injected.max(1) as f64
            ),
        ]);
    }
    print_table(
        "Multicast on broadcast-and-select (64 ports, copy load ~0.5/output)",
        &[
            "fanout",
            "inject rate",
            "output util",
            "mean completion (cycles)",
            "tx per cell",
            "completed",
        ],
        &rows,
    );
    println!("\nThe star-coupler broadcast serves a full fanout in one transmission when");
    println!("the outputs are free; under contention the scheduler splits the fanout");
    println!("across slots - no optical penalty, only arbitration.");
}
