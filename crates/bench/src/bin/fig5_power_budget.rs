//! Regenerates the Fig. 5 datapath checks: the optical power budget of
//! the broadcast-and-select path (SVI.A: "closed the optical power ...
//! budgets").

use osmosis_bench::print_table;
use osmosis_core::experiments::fig5;

fn main() {
    let r = fig5::run();
    let mut rows = vec![vec![
        "launch".to_string(),
        String::new(),
        format!("{:+.2} dBm", r.launch_dbm),
    ]];
    for l in &r.budget_lines {
        rows.push(vec![
            l.name.to_string(),
            format!("{:+.2} dB", l.gain.0),
            format!("{:+.2} dBm", l.power_after.0),
        ]);
    }
    rows.push(vec![
        "receiver sensitivity".into(),
        String::new(),
        format!("{:+.2} dBm", r.sensitivity_dbm),
    ]);
    rows.push(vec![
        "margin".into(),
        format!("{:+.2} dB", r.margin_db),
        String::new(),
    ]);
    print_table(
        "Fig. 5: OSMOSIS broadcast-and-select power budget (any of the 64x128 paths)",
        &["element", "gain/loss", "power after"],
        &rows,
    );
    println!(
        "\nStructure: {} broadcast modules, {} switching modules; guard time {}",
        r.broadcast_modules, r.switching_modules, r.guard
    );
    assert!(r.margin_db >= 3.0, "budget must close with margin");
}
