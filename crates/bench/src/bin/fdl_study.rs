//! Fig. 2 rerun with a fourth buffer option: input stages buffered by
//! emulated fiber-delay-line priority queues (`osmosis-fdl`) next to the
//! three electronic placements, across load, burstiness and fault plans
//! — including the delay-line fault class only the optical option is
//! exposed to. Writes `BENCH_fdl.json` at the repo root for drift
//! tracking.
//!
//! Modes:
//!
//! * default — run the grid, print the table and rewrite the snapshot;
//! * `--quick` — test scale;
//! * `--audit` — attach the invariant-audit battery (FDL cell
//!   conservation included) to every leg;
//! * `--smoke` — the CI gate: reproducibility, electronic/FDL
//!   separation, dead-line loss typing and telemetry-schema assertions
//!   under a time budget; exit 1 on failure, writes nothing;
//! * `--topology <spec>` — run the grid on a declared fault-capable
//!   two-level fat tree (exit 2 on a bad spec).

use std::fmt::Write as _;
use std::time::Instant;

use osmosis_bench::{print_table, scale_from_args, topology_from_args};
use osmosis_core::experiments::fdl_study::{
    run_with, FdlStudy, FdlStudyOptions, StudyFault, OPTIONS,
};
use osmosis_core::Scale;
use osmosis_fabric::multistage::BufferTech;
use osmosis_fabric::TopologySpec;
use osmosis_sim::json::Value;
use osmosis_telemetry::export::{meta_record, summary_record};
use osmosis_telemetry::{
    fdl_drop_record, fdl_occupancy_record, fdl_recirculation_record, validate_jsonl, Decomposition,
    MetricsRegistry, RunMeta,
};

/// Wall-clock budget for the whole smoke battery on a loaded runner.
const SMOKE_BUDGET_S: f64 = 240.0;

fn run_study(scale: Scale, opts: &FdlStudyOptions) -> FdlStudy {
    match run_with(scale, 0xFD1, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(2);
        }
    }
}

fn study_rows(study: &FdlStudy) -> Vec<Vec<String>> {
    study
        .points
        .iter()
        .map(|p| {
            let fdl = |name: &str| {
                p.report
                    .extra(name)
                    .map_or_else(|| "-".to_string(), |v| format!("{v:.0}"))
            };
            vec![
                p.option.name.to_string(),
                format!("{:.2}", p.load),
                format!("{:.0}", p.burst),
                p.fault.label().to_string(),
                format!("{:.3}", p.report.throughput),
                format!("{:.2}", p.report.mean_delay),
                format!("{}", p.report.dropped),
                fdl("fdl_drops_dead_line"),
                fdl("fdl_recirculations"),
                format!("{:016x}", p.report.fingerprint()),
            ]
        })
        .collect()
}

fn snapshot(study: &FdlStudy, scale: Scale) -> String {
    let entries: Vec<Value> = study
        .points
        .iter()
        .map(|p| {
            let mut fields = vec![
                ("option".into(), Value::str(p.option.name)),
                ("load".into(), Value::f64(p.load)),
                ("burst".into(), Value::f64(p.burst)),
                ("fault".into(), Value::str(p.fault.label())),
                ("buffer_cells".into(), Value::u64(p.buffer_cells as u64)),
                ("throughput".into(), Value::f64(p.report.throughput)),
                ("mean_delay".into(), Value::f64(p.report.mean_delay)),
                ("dropped".into(), Value::u64(p.report.dropped)),
            ];
            for name in [
                "fdl_drops_total",
                "fdl_drops_dead_line",
                "fdl_recirculations",
                "fdl_underflow_stalls",
            ] {
                if let Some(v) = p.report.extra(name) {
                    fields.push((name.into(), Value::f64(v)));
                }
            }
            Value::Obj(fields)
        })
        .collect();
    Value::Obj(vec![
        ("bench".into(), Value::str("fdl-buffering")),
        (
            "scale".into(),
            Value::str(if scale == Scale::Quick {
                "quick"
            } else {
                "full"
            }),
        ),
        ("radix".into(), Value::u64(study.radix as u64)),
        ("hosts".into(), Value::u64(study.hosts as u64)),
        ("link_delay".into(), Value::u64(study.link_delay)),
        ("points".into(), Value::Arr(entries)),
    ])
    .encode()
}

/// The CI smoke battery. Every check prints a line; any failure exits 1.
fn smoke(audit: bool, topology: Option<TopologySpec>) {
    let t0 = Instant::now();
    let mut failed = false;
    let mut check = |name: &str, ok: bool| {
        println!("smoke: {name} ({})", if ok { "ok" } else { "FAILED" });
        failed |= !ok;
    };

    // 1. Same-seed grid is bit-identical, and audited runs are clean.
    let opts = FdlStudyOptions { audit, topology };
    let a = run_study(Scale::Quick, &opts);
    let b = run_study(Scale::Quick, &opts);
    check(
        "same-seed study bit-identical",
        !a.points.is_empty()
            && a.points.len() == b.points.len()
            && a.points
                .iter()
                .zip(b.points.iter())
                .all(|(x, y)| x.report.fingerprint() == y.report.fingerprint()),
    );
    if audit {
        check(
            "audit battery clean",
            a.audit_violations == 0 && b.audit_violations == 0,
        );
    }

    // 2. The buffer options actually separate: same cell, different
    //    technology, different fingerprint.
    let cell = |study: &FdlStudy, tech: BufferTech| {
        study
            .points
            .iter()
            .find(|p| {
                p.option.tech == tech
                    && p.option.name != "opt1-in+out"
                    && p.option.name != "opt2-output"
                    && p.fault == StudyFault::None
            })
            .map(|p| p.report.fingerprint())
    };
    check(
        "electronic and FDL input stages produce distinct runs",
        match (cell(&a, BufferTech::Electronic), cell(&a, BufferTech::Fdl)) {
            (Some(e), Some(f)) => e != f,
            _ => false,
        },
    );

    // 3. Dead delay lines surface as typed dead-line losses on the FDL
    //    option and leave every electronic option untouched.
    let fdl_hit = a.points.iter().any(|p| {
        p.option.tech == BufferTech::Fdl
            && p.fault == StudyFault::DelayLinesDead
            && p.report.extra("fdl_drops_dead_line").unwrap_or(0.0) > 0.0
    });
    let electronic_clean = a.points.iter().all(|p| {
        p.option.tech == BufferTech::Electronic
            && p.fault == StudyFault::DelayLinesDead
            && p.report.dropped == 0
            || p.fault != StudyFault::DelayLinesDead
            || p.option.tech != BufferTech::Electronic
    });
    check(
        "dead delay lines hit only the FDL option",
        fdl_hit && electronic_clean,
    );

    // 4. Telemetry: the FDL record types round-trip through the JSONL
    //    schema validator, derived from a faulted FDL leg's extras.
    let leg = a
        .points
        .iter()
        .find(|p| p.option.tech == BufferTech::Fdl && p.fault == StudyFault::DelayLinesDead)
        .expect("grid contains a faulted FDL leg");
    let meta = RunMeta {
        seed: 0xFD1,
        ports: a.hosts,
        warmup_slots: 0,
        measure_slots: 0,
        sample_every: 0,
        snapshot_every: 0,
    };
    let mut doc = String::new();
    let _ = writeln!(doc, "{}", meta_record(0, "fdl_study", &meta).encode());
    let _ = writeln!(
        doc,
        "{}",
        fdl_occupancy_record(0, 0, 0, 0, leg.buffer_cells as u64).encode()
    );
    let drops = leg.report.extra("fdl_drops_dead_line").unwrap_or(0.0) as u64;
    for i in 0..drops.min(3) {
        let _ = writeln!(doc, "{}", fdl_drop_record(0, i, 0, "dead_line").encode());
    }
    let recirc = leg.report.extra("fdl_recirculations").unwrap_or(0.0) as u64;
    let _ = writeln!(
        doc,
        "{}",
        fdl_recirculation_record(0, 0, 0, recirc.min(9)).encode()
    );
    let _ = writeln!(
        doc,
        "{}",
        summary_record(
            0,
            &leg.report,
            &MetricsRegistry::new(),
            &Decomposition::default()
        )
        .encode()
    );
    match validate_jsonl(&doc) {
        Ok(stats) => check(
            "FDL records validate as JSONL",
            stats.fdl_occupancies == 1
                && stats.fdl_drops == drops.min(3)
                && stats.fdl_drops > 0
                && stats.fdl_recirculations == 1,
        ),
        Err(e) => check(&format!("FDL records validate as JSONL: {e}"), false),
    }

    let elapsed = t0.elapsed().as_secs_f64();
    check(
        &format!("within {SMOKE_BUDGET_S} s budget ({elapsed:.1} s)"),
        elapsed <= SMOKE_BUDGET_S,
    );
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let audit = std::env::args().any(|a| a == "--audit");
    let topology = topology_from_args();
    if std::env::args().any(|a| a == "--smoke") {
        smoke(audit, topology);
        return;
    }

    let scale = scale_from_args();
    let opts = FdlStudyOptions { audit, topology };
    let study = run_study(scale, &opts);
    print_table(
        &format!(
            "Fig. 2 rerun with FDL option: radix {} ({} hosts), {} options",
            study.radix,
            study.hosts,
            OPTIONS.len()
        ),
        &[
            "option",
            "load",
            "burst",
            "fault",
            "throughput",
            "mean delay",
            "dropped",
            "dead-line",
            "recirc",
            "fingerprint",
        ],
        &study_rows(&study),
    );
    if audit {
        println!("audit violations: {}", study.audit_violations);
    }

    // The snapshot carries the scale it ran at: the committed file is
    // the full-scale grid, `--quick` rewrites a test-scale stand-in.
    let json = snapshot(&study, scale);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fdl.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
