//! SVII commercialization study: fabric-level $/Gb/s and the optical
//! integration factor needed for cost parity with electronics.

use osmosis_analysis::cost::{tco_per_port, CostModel};
use osmosis_analysis::power::PowerModel;
use osmosis_bench::print_table;

fn main() {
    let pm = PowerModel::circa_2005();
    let mut rows = Vec::new();
    for factor in [1.0f64, 2.0, 4.0, 8.0] {
        let m = CostModel::integrated(factor);
        let osmosis = m.fabric_cost_per_gbps(m.osmosis_port(), 2048, 3, 96.0);
        let electronic = m.fabric_cost_per_gbps(m.electronic_port(), 2048, 5, 96.0);
        rows.push(vec![
            format!("{factor:.0}x"),
            format!("${:.0}", m.osmosis_port()),
            format!("${:.0}", m.electronic_port()),
            format!("${:.2}/Gb/s", osmosis),
            format!("${:.2}/Gb/s", electronic),
            if osmosis <= electronic {
                "OSMOSIS"
            } else {
                "electronic"
            }
            .to_string(),
        ]);
    }
    print_table(
        "SVII: cost per bandwidth, 2048-port fabric (3 OSMOSIS vs 5 electronic stages)",
        &[
            "integration",
            "OSMOSIS port",
            "electronic port",
            "OSMOSIS fabric",
            "electronic fabric",
            "cheaper",
        ],
        &rows,
    );
    let m = CostModel::discrete_2005();
    println!(
        "\nparity integration factor vs 5-stage high-end fabric: {:.1}x",
        m.parity_integration_factor(3, 5)
    );
    println!(
        "parity vs 9-stage commodity fabric: {:.1}x",
        m.parity_integration_factor(3, 9)
    );
    let o_tco = tco_per_port(3_000.0, pm.hybrid_port_power_w(96.0, 256.0), 5.0, 0.10);
    let e_tco = tco_per_port(3_000.0, pm.cmos_port_power_w(96.0), 5.0, 0.10);
    println!(
        "\n5-year TCO per port at equal capital: OSMOSIS ${o_tco:.0} vs electronic ${e_tco:.0}"
    );
    println!("\n\"To reach this cost point, a further integration of the optical components");
    println!("is an essential first step\" (SVII) - the model quantifies how far: single-");
    println!("digit integration factors suffice, because OSMOSIS already saves stages.");
}
