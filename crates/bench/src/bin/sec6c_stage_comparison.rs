//! Regenerates the SVI.C comparison: 3 OSMOSIS stages vs. 5 high-end
//! electronic vs. 9 commodity stages for the 2048-port fabric.

use osmosis_bench::print_table;
use osmosis_core::experiments::sec6c;

fn main() {
    let rows = sec6c::run();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let c = &r.comparison;
            vec![
                c.alt.name.to_string(),
                c.alt.radix.to_string(),
                c.stages.to_string(),
                c.switch_count.to_string(),
                c.oeo_layers.to_string(),
                format!("{:.0}", c.path_latency_ns),
                format!("{:.1}", r.model_power_w / 1_000.0),
            ]
        })
        .collect();
    print_table(
        "SVI.C: 2048-port fabric alternatives",
        &[
            "technology",
            "radix",
            "stages",
            "switches",
            "OEO layers",
            "path latency (ns)",
            "power (kW)",
        ],
        &table,
    );
    println!("\nOSMOSIS needs 3 stages (vs 5 / 9) and saves two OEO layers vs the");
    println!("high-end electronic fat tree - fewer conversions, less latency, less power.");
}
