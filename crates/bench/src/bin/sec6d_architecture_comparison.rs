//! Regenerates SVI.D as one table: OSMOSIS vs. every switch architecture
//! the paper compares against, on the Table 1 axes.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::sec6d;

fn main() {
    let scale = scale_from_args();
    let rows = sec6d::run(scale, 0x6D);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.2}", r.unloaded_delay),
                format!("{:.3}", r.saturated_throughput),
                format!("{:.1}%", r.reorder_fraction * 100.0),
                if r.blocks_or_drops { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "SVI.D: switch architecture comparison ({} ports)",
            scale.ports()
        ),
        &[
            "architecture",
            "unloaded delay (cycles)",
            "thr @98%",
            "reordered @70%",
            "blocks?",
        ],
        &table,
    );
    println!("\nOnly OSMOSIS (and the unbuildable ideal OQ switch) combines low latency,");
    println!(">95% sustained throughput, zero reordering and zero loss - SVI.D's argument.");
}
