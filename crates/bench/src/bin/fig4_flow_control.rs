//! Regenerates the Figs. 3-4 flow-control experiment: deterministic FC
//! RTT, buffer-sizing law, and fabric losslessness under hotspot
//! overload.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::fig4;

fn main() {
    let scale = scale_from_args();
    let r = fig4::run(scale, 0xF164);
    print_table(
        "Figs. 3-4: scheduler-relayed remote flow control",
        &["metric", "value"],
        &[
            vec!["link delay (slots)".into(), r.link_delay.to_string()],
            vec![
                "buffer sizing rule (cells)".into(),
                r.buffer_rule.to_string(),
            ],
            vec!["FC RTT min (slots)".into(), r.relay.fc_rtt_min.to_string()],
            vec!["FC RTT max (slots)".into(), r.relay.fc_rtt_max.to_string()],
            vec![
                "relay-loop throughput".into(),
                format!("{:.4}", r.relay.throughput),
            ],
            vec!["idle cells inserted".into(), r.relay.idle_cells.to_string()],
            vec![
                "hotspot fabric: delivered".into(),
                r.hotspot.delivered.to_string(),
            ],
            vec![
                "hotspot fabric: reordered".into(),
                r.hotspot.reordered.to_string(),
            ],
            vec![
                "hotspot fabric: peak buffer occupancy".into(),
                format!(
                    "{} / {} capacity",
                    r.hotspot.max_queue_depth, r.fabric_buffer
                ),
            ],
        ],
    );
    assert_eq!(r.relay.fc_rtt_min, r.relay.fc_rtt_max, "deterministic RTT");
    println!("\nThe FC loop RTT is constant (deterministic), buffers never overflow, and");
    println!("no cell is dropped even with one egress overloaded 16x - Table 1's");
    println!("losslessness requirement via the Fig. 4 relay scheme.");
}
