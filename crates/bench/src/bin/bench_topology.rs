//! Topology-compiler performance snapshot: wall-clock expansion time and
//! simulation slot rate at 2048 / 8192 / 32768 ports, written to
//! `BENCH_topology.json` at the repo root for drift tracking.
//!
//! Modes:
//!
//! * default — measure and rewrite the snapshot;
//! * `--smoke` — measure the two 32768-port expansions only and fail
//!   (exit 1) if either exceeds the CI time budget; writes nothing.

use std::time::Instant;

use osmosis_bench::print_table;
use osmosis_core::experiments::fig1::CELL_NS;
use osmosis_fabric::{CompiledFabric, EngineConfig, ExpandedFabric, TopologySpec};
use osmosis_sim::json::Value;
use osmosis_sim::SeedSequence;
use osmosis_traffic::BernoulliUniform;

/// Per-expansion CI budget for the 32K instances, generous enough for a
/// loaded shared runner (release builds expand these in well under a
/// second).
const SMOKE_BUDGET_S: f64 = 30.0;

struct Measurement {
    spec: TopologySpec,
    hosts: u64,
    switches: u64,
    expand_ms: f64,
    slot_rate: Option<f64>,
}

fn measure(spec: TopologySpec, sim_slots: u64) -> Measurement {
    let t0 = Instant::now();
    let fab = match ExpandedFabric::expand(spec) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("expand {spec} failed: {e}");
            std::process::exit(1);
        }
    };
    let expand_ms = t0.elapsed().as_secs_f64() * 1e3;
    let hosts = fab.hosts.len() as u64;
    let switches = fab.switches.len() as u64;
    let slot_rate = (sim_slots > 0).then(|| {
        let mut sim = CompiledFabric::over(fab);
        let mut tr = BernoulliUniform::new(hosts as usize, 0.1, &SeedSequence::new(0xBE2C));
        let t1 = Instant::now();
        let _ = sim.run(&mut tr, &EngineConfig::new(0, sim_slots));
        sim_slots as f64 / t1.elapsed().as_secs_f64()
    });
    Measurement {
        spec,
        hosts,
        switches,
        expand_ms,
        slot_rate,
    }
}

fn snapshot(points: &[Measurement]) -> String {
    let entries: Vec<Value> = points
        .iter()
        .map(|m| {
            Value::Obj(vec![
                ("spec".into(), Value::str(m.spec.to_string())),
                ("hosts".into(), Value::u64(m.hosts)),
                ("switches".into(), Value::u64(m.switches)),
                ("expand_ms".into(), Value::f64(m.expand_ms)),
                (
                    "slot_rate_per_s".into(),
                    m.slot_rate.map_or(Value::Null, Value::f64),
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("bench".into(), Value::str("topology-compiler")),
        ("cell_ns".into(), Value::f64(CELL_NS)),
        ("points".into(), Value::Arr(entries)),
    ])
    .encode()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // The CI gate: both 32768-port families must expand inside the
        // budget on a cold runner.
        let mut failed = false;
        for spec in [
            TopologySpec::fat_tree(8, 7),
            TopologySpec::dragonfly(64, 64),
        ] {
            let m = measure(spec, 0);
            let ok = m.expand_ms / 1e3 <= SMOKE_BUDGET_S;
            println!(
                "smoke: {} -> {} hosts, {} switches, expanded in {:.1} ms ({})",
                m.spec,
                m.hosts,
                m.switches,
                m.expand_ms,
                if ok { "ok" } else { "OVER BUDGET" }
            );
            if m.hosts < 32_768 {
                println!("smoke: {} reaches only {} hosts", m.spec, m.hosts);
                failed = true;
            }
            failed |= !ok;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    // The snapshot ladder: exact 2048 / 8192 / 32768-port instances.
    let points = vec![
        measure(TopologySpec::two_level(64), 2_000),
        measure(TopologySpec::fat_tree(32, 3), 500),
        measure(TopologySpec::fat_tree(8, 7), 100),
        measure(TopologySpec::dragonfly(64, 64), 100),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|m| {
            vec![
                m.spec.to_string(),
                format!("{}", m.hosts),
                format!("{}", m.switches),
                format!("{:.2}", m.expand_ms),
                m.slot_rate
                    .map_or_else(|| "-".to_string(), |r| format!("{r:.0}")),
            ]
        })
        .collect();
    print_table(
        "Topology compiler: expansion time and simulation slot rate",
        &["topology", "hosts", "switches", "expand (ms)", "slots/s"],
        &rows,
    );
    let json = snapshot(&points);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_topology.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
