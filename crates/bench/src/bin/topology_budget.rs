//! Fig. 1 rerun beyond 2048 ports: compile declarative topology specs
//! into expanded fabrics and score stage counts against the 500 ns
//! latency budget at 8192 and 32768 ports — one invocation covers both.
//!
//! Override the built-in ladder with repeatable `--topology <spec>`
//! flags using the spec grammar, e.g.:
//!
//! ```text
//! cargo run --release -p osmosis-bench --bin topology_budget -- \
//!     --topology fat-tree:radix=64,levels=3 \
//!     --topology dragonfly:radix=64,groups=64
//! ```

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::topology_budget::{full_mesh_max_ports, ladder, run, BUDGET_NS};
use osmosis_core::Scale;
use osmosis_fabric::TopologySpec;

/// Repeatable `--topology <spec>` flags, parsed through the spec grammar.
fn topologies_from_args() -> Vec<TopologySpec> {
    let args: Vec<String> = std::env::args().collect();
    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--topology" {
            let Some(text) = args.get(i + 1) else {
                eprintln!("--topology needs a spec argument");
                std::process::exit(2);
            };
            match text.parse::<TopologySpec>() {
                Ok(s) => specs.push(s),
                Err(e) => {
                    eprintln!("bad --topology {text}: {e}");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    specs
}

fn show(title: &str, specs: &[TopologySpec], cable_m: f64, sim_limit: u64) {
    let pts = match run(specs, cable_m, sim_limit, 0x7090) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("expansion failed: {e}");
            std::process::exit(1);
        }
    };
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.spec.to_string(),
                format!("{}", p.hosts),
                format!("{}", p.switches),
                format!("{}", p.links),
                format!("{}", p.stages),
                format!("{:.0}", p.analytic_ns),
                p.simulated_ns
                    .map_or_else(|| "-".to_string(), |s| format!("{s:.0}")),
                if p.fits_budget { "yes" } else { "NO" }.to_string(),
                format!("{:016x}", p.fingerprint),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "topology",
            "hosts",
            "switches",
            "links",
            "stages",
            "model (ns)",
            "sim (ns)",
            "fits 500 ns?",
            "fingerprint",
        ],
        &rows,
    );
}

fn main() {
    let scale = scale_from_args();
    let cable_m = 25.0; // the §V machine-room cable length
    let sim_limit = match scale {
        Scale::Quick => 0,
        Scale::Full => 4_096,
    };
    let custom = topologies_from_args();
    if custom.is_empty() {
        for ports in [8_192u64, 32_768] {
            let specs = match ladder(ports) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ladder({ports}) failed: {e}");
                    std::process::exit(1);
                }
            };
            show(
                &format!(
                    "Fig. 1 rerun at {ports} ports, {cable_m} m cables, {BUDGET_NS} ns budget"
                ),
                &specs,
                cable_m,
                sim_limit,
            );
        }
    } else {
        show(
            &format!("Latency budget for requested topologies, {cable_m} m cables"),
            &custom,
            cable_m,
            sim_limit,
        );
    }
    println!(
        "\nA radix-64 full mesh tops out at {} ports -- flat topologies cannot",
        full_mesh_max_ports(64)
    );
    println!("reach these scales at all (the sec. VI.C argument); stage count is the");
    println!("currency: commodity-radix fat trees blow the budget well before 32K ports.");
}
