//! Regenerates the SVI.B / Fig. 9 latency budget: the ~1200 ns FPGA
//! demonstrator, its ASIC mapping, and the scheduler partition.

use osmosis_bench::print_table;
use osmosis_core::experiments::fig9;

fn main() {
    let r = fig9::run();
    let rows: Vec<Vec<String>> = r
        .fpga_items
        .iter()
        .zip(&r.asic_items)
        .map(|(f, a)| {
            vec![
                f.name.to_string(),
                format!("{}", f.latency),
                format!("{}", a.latency),
            ]
        })
        .collect();
    print_table(
        "SVI.B: demonstrator latency budget, FPGA prototype -> ASIC mapping",
        &["item", "FPGA", "ASIC (4x logic, 10x shorter control fiber)"],
        &rows,
    );
    println!("\ntotal: FPGA {} -> ASIC {}", r.fpga_total, r.asic_total);
    println!(
        "scheduler partition: {} FPGAs ({} crossing ns on critical path) -> {} ASICs ({} ns)",
        r.fpga_partition.chips,
        r.fpga_partition.crossing_total().as_ns_f64(),
        r.asic_partition.chips,
        r.asic_partition.crossing_total().as_ns_f64(),
    );
}
