//! Regenerates Fig. 10: OSNR penalty vs. SOA input power for DPSK and NRZ
//! at BER 1e-6 and 1e-10.

use osmosis_bench::print_table;
use osmosis_core::experiments::fig10;

fn main() {
    let r = fig10::run();
    // Print the four curves at the paper's axis points (0..20 dBm).
    let powers: Vec<f64> = (0..=10).map(|i| i as f64 * 2.0).collect();
    let mut rows = Vec::new();
    for p in &powers {
        let mut row = vec![format!("{p:.0}")];
        for c in &r.curves {
            let pen = c
                .points
                .iter()
                .min_by(|a, b| (a.0 - p).abs().partial_cmp(&(b.0 - p).abs()).unwrap())
                .unwrap()
                .1;
            row.push(if pen > 9.9 {
                ">10".to_string()
            } else {
                format!("{pen:.2}")
            });
        }
        rows.push(row);
    }
    print_table(
        "Fig. 10: OSNR penalty (dB) vs. SOA input power (dBm)",
        &[
            "P_in (dBm)",
            "NRZ 1e-6",
            "NRZ 1e-10",
            "DPSK 1e-6",
            "DPSK 1e-10",
        ],
        &rows,
    );
    println!("\n1 dB-penalty points:");
    for c in &r.curves {
        println!(
            "  {:?} @ BER {:.0e}: {:.2} dBm",
            c.modulation, c.ber, c.power_at_1db
        );
    }
    println!(
        "\nDPSK loading improvement at 1 dB penalty: {:.1} dB (paper: 14 dB)",
        r.improvement_db
    );
    println!(
        "DPSK OSNR advantage at any BER: {:.1} dB (paper: 3 dB)",
        r.osnr_advantage_db
    );
}
