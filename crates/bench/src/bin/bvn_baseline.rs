//! Ablation A4: the load-balanced Birkhoff-von Neumann baseline (SVI.D) -
//! scalable, but N/2 unloaded latency and out-of-order delivery.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::ablations::bvn_baseline;

fn main() {
    let scale = scale_from_args();
    let r = bvn_baseline(scale, 0xA4);
    print_table(
        &format!("A4: Birkhoff-von Neumann vs. OSMOSIS at {} ports", r.ports),
        &["metric", "BvN", "OSMOSIS (FLPPR, dual rx)"],
        &[
            vec![
                "unloaded latency (cycles)".into(),
                format!("{:.1} (≈N/2 = {})", r.unloaded_latency, r.ports / 2),
                format!("{:.2}", r.osmosis_unloaded_latency),
            ],
            vec![
                "reordering at 70% load".into(),
                format!("{:.1}% of cells", r.reorder_fraction * 100.0),
                "0".into(),
            ],
        ],
    );
    println!("\nBvN scales without a central scheduler but pays N/2 cycles of unloaded");
    println!("latency and reorders packets - both disqualifying for HPC (SVI.D).");
}
