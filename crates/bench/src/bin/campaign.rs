//! Crash-safe sharded campaign runner (`osmosis-campaign`), driven end
//! to end: the scenario cross-product of the default campaign spec is
//! split into shards, each run in a supervised worker *process* with
//! resumable checkpoints, and folded into one summary with bounded
//! memory.
//!
//! Modes:
//!
//! * default — run the campaign, print the summary table, and rewrite
//!   the `BENCH_campaign.json` snapshot at the repo root;
//! * `--smoke` — the CI resilience gate: run a poisoned campaign clean,
//!   run it again SIGKILLed at 50% completion, corrupt one checkpoint
//!   log the way a crash would, resume, and fail (exit 1) unless the
//!   resumed fingerprint is bit-identical and the poison shard is
//!   quarantined in both manifests — all inside a wall-clock budget;
//! * `--worker` — internal: run one shard and exit (the supervisor
//!   spawns this binary on itself).
//!
//! Flags: `--quick` (test scale), `--shards N`, `--workers N`,
//! `--dir D` (campaign directory; default under the system temp dir),
//! `--resume` (keep existing state in `--dir` instead of wiping it),
//! `--kill-after F` (abort the supervisor once fraction `F` of shards
//! completed — exits 124, leaving resumable state), `--poison S` (add
//! shard `S` to the deliberate-failure quarantine list), `--topology
//! <spec>` (replace the spec's topology axis; repeatable), and
//! `--progress`.

use std::path::PathBuf;
use std::time::Instant;

use osmosis_bench::{print_table, scale_from_args, topologies_from_args};
use osmosis_campaign::shard::paths;
use osmosis_campaign::{
    run_campaign, run_shard, CampaignError, CampaignOptions, CampaignReport, CampaignSpec,
    WorkerRequest,
};
use osmosis_core::experiments::campaign::default_spec;
use osmosis_sim::json::Value;

/// Wall-clock budget for the whole smoke battery on a loaded runner.
const SMOKE_BUDGET_S: f64 = 120.0;

const CAMPAIGN_SEED: u64 = 0xCA3B;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs an argument");
            std::process::exit(2);
        })
    })
}

fn parse_or_die<T: std::str::FromStr>(flag: &str, text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bad {flag} value: {text}");
        std::process::exit(2);
    })
}

/// Worker mode: run one shard of the campaign in `--dir` and exit with
/// the worker status convention (0 ok, 3 poison, 1 anything else).
fn worker_main(args: &[String]) -> ! {
    let dir = PathBuf::from(flag_value(args, "--dir").unwrap_or_else(|| {
        eprintln!("--worker needs --dir");
        std::process::exit(2);
    }));
    let shard: usize = parse_or_die(
        "--shard",
        &flag_value(args, "--shard").unwrap_or_else(|| {
            eprintln!("--worker needs --shard");
            std::process::exit(2);
        }),
    );
    let shards: usize = parse_or_die(
        "--shards",
        &flag_value(args, "--shards").unwrap_or_else(|| {
            eprintln!("--worker needs --shards");
            std::process::exit(2);
        }),
    );
    match run_shard(&dir, shard, shards) {
        Ok(_) => std::process::exit(0),
        Err(CampaignError::Poisoned { .. }) => std::process::exit(3),
        Err(e) => {
            eprintln!("worker shard {shard}: {e}");
            std::process::exit(1);
        }
    }
}

/// The spawn hook: this very binary, re-invoked in `--worker` mode.
fn launcher(req: &WorkerRequest) -> std::process::Command {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot resolve current executable: {e}");
        std::process::exit(1);
    });
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--worker")
        .arg("--dir")
        .arg(&req.dir)
        .arg("--shard")
        .arg(req.shard.to_string())
        .arg("--shards")
        .arg(req.shards.to_string());
    cmd
}

fn run_or_die(
    dir: &std::path::Path,
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> CampaignReport {
    match run_campaign(dir, spec, opts, launcher) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    }
}

fn wipe(dir: &std::path::Path) {
    std::fs::remove_dir_all(dir).ok();
}

/// The CI resilience gate. Exercises the full graceful-degradation
/// contract in one battery; any violated bar exits 1.
fn smoke(spec: &CampaignSpec, opts: &CampaignOptions, base: &std::path::Path) -> ! {
    let t0 = Instant::now();
    let mut spec = spec.clone();
    let poison = 2usize.min(opts.shards - 1);
    if !spec.poison_shards.contains(&poison) {
        spec.poison_shards.push(poison);
    }

    // Leg 1: uninterrupted reference run (poison shard quarantined).
    let dir_clean = base.join("clean");
    wipe(&dir_clean);
    let clean = run_or_die(&dir_clean, &spec, opts);
    let quarantined: Vec<usize> = clean.quarantined.iter().map(|q| q.shard).collect();
    println!(
        "smoke: clean run fingerprint {:016x}, {} points, quarantined {:?}",
        clean.fingerprint, clean.points_done, quarantined
    );
    if quarantined != vec![poison] {
        println!("smoke: FAIL - expected exactly shard {poison} quarantined");
        std::process::exit(1);
    }

    // Leg 2: the same campaign, SIGKILLed at 50% of shards complete.
    let dir_victim = base.join("victim");
    wipe(&dir_victim);
    let mut interrupted_opts = opts.clone();
    interrupted_opts.interrupt_after = Some(opts.shards.div_ceil(2));
    let killed = run_or_die(&dir_victim, &spec, &interrupted_opts);
    if !killed.interrupted {
        println!("smoke: FAIL - interrupt_after did not fire");
        std::process::exit(1);
    }
    println!(
        "smoke: interrupted after {} of {} shards; workers SIGKILLed",
        killed.completed.len(),
        opts.shards
    );

    // Corrupt one surviving checkpoint log the way a crash torn
    // mid-append would, and drop its summary so the resume must
    // re-derive that shard from the damaged log.
    let victim_shard = (0..opts.shards)
        .find(|&s| s != poison && paths::shard_log(&dir_victim, s).exists())
        .unwrap_or_else(|| {
            println!("smoke: FAIL - no checkpoint log survived the interruption");
            std::process::exit(1);
        });
    let log = paths::shard_log(&dir_victim, victim_shard);
    let bytes = std::fs::read(&log).unwrap_or_else(|e| {
        println!("smoke: FAIL - read {}: {e}", log.display());
        std::process::exit(1);
    });
    let cut = bytes.len().saturating_sub(5);
    if std::fs::write(&log, &bytes[..cut]).is_err() {
        println!("smoke: FAIL - cannot corrupt {}", log.display());
        std::process::exit(1);
    }
    std::fs::remove_file(paths::shard_summary(&dir_victim, victim_shard)).ok();
    println!("smoke: corrupted checkpoint log of shard {victim_shard} (torn trailing record)");

    // Leg 3: resume. Must reproduce the clean fingerprint bit for bit.
    let resumed = run_or_die(&dir_victim, &spec, opts);
    let resumed_quarantine: Vec<usize> = resumed.quarantined.iter().map(|q| q.shard).collect();
    println!(
        "smoke: resumed fingerprint {:016x} ({} restored, {} completed, quarantined {:?})",
        resumed.fingerprint,
        resumed.restored.len(),
        resumed.completed.len(),
        resumed_quarantine
    );
    let mut failed = false;
    if resumed.fingerprint != clean.fingerprint {
        println!(
            "smoke: FAIL - resumed fingerprint {:016x} != clean {:016x}",
            resumed.fingerprint, clean.fingerprint
        );
        failed = true;
    }
    if resumed.points_done != clean.points_done || resumed.delivered != clean.delivered {
        println!("smoke: FAIL - resumed counts diverged from the clean run");
        failed = true;
    }
    if resumed_quarantine != vec![poison] {
        println!("smoke: FAIL - quarantine list diverged after resume");
        failed = true;
    }
    for dir in [&dir_clean, &dir_victim] {
        let manifest = std::fs::read_to_string(paths::manifest(dir)).unwrap_or_default();
        if !manifest.contains("\"status\":\"quarantined\"") || !manifest.contains("\"reason\"") {
            println!(
                "smoke: FAIL - manifest in {} does not name the quarantined shard",
                dir.display()
            );
            failed = true;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if elapsed > SMOKE_BUDGET_S {
        println!("smoke: FAIL - battery took {elapsed:.1}s, budget {SMOKE_BUDGET_S}s");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    wipe(&dir_clean);
    wipe(&dir_victim);
    println!("smoke: SIGKILL + corrupt checkpoint + resume reproduced the campaign bit for bit ({elapsed:.1}s)");
    std::process::exit(0);
}

fn snapshot(report: &CampaignReport, spec: &CampaignSpec, wall_s: f64, resume_s: f64) -> String {
    Value::Obj(vec![
        ("bench".into(), Value::str("campaign-runner")),
        ("key".into(), Value::u64(report.key)),
        ("shards".into(), Value::u64(report.shards as u64)),
        ("points".into(), Value::u64(report.points)),
        (
            "slots_per_point".into(),
            Value::u64(spec.warmup + spec.measure),
        ),
        ("attempts".into(), Value::u64(report.attempts)),
        ("wall_s".into(), Value::f64(wall_s)),
        (
            "points_per_s".into(),
            Value::f64(report.points_done as f64 / wall_s.max(1e-9)),
        ),
        ("resume_wall_s".into(), Value::f64(resume_s)),
        ("fingerprint".into(), Value::u64(report.fingerprint)),
    ])
    .encode()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--worker") {
        worker_main(&args);
    }

    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let scale = if smoke_mode {
        osmosis_core::Scale::Quick
    } else {
        scale_from_args()
    };
    let mut spec = default_spec(scale, CAMPAIGN_SEED);
    let declared = topologies_from_args();
    if !declared.is_empty() {
        spec.topologies = declared.into_iter().map(Some).collect();
    }
    if let Some(s) = flag_value(&args, "--poison") {
        spec.poison_shards.push(parse_or_die("--poison", &s));
    }

    // Pacing only — none of this reaches a fingerprint. Don't spawn more
    // workers than cores: oversubscribed workers stretch per-point wall
    // time until the heartbeat watchdog mistakes contention for a hang.
    // The widened heartbeat tolerates the slowest full-scale points
    // (FDL-buffered fabric legs at high burst) on a loaded runner.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let opts = CampaignOptions {
        shards: flag_value(&args, "--shards").map_or(8, |s| parse_or_die("--shards", &s)),
        workers: flag_value(&args, "--workers")
            .map_or(4.min(cores), |s| parse_or_die("--workers", &s)),
        heartbeat_timeout_ms: 120_000,
        interrupt_after: None,
        progress: args.iter().any(|a| a == "--progress"),
        ..Default::default()
    };
    if opts.shards == 0 || opts.workers == 0 {
        eprintln!("--shards and --workers must both be >= 1");
        std::process::exit(2);
    }

    let dir = flag_value(&args, "--dir").map_or_else(
        || std::env::temp_dir().join(format!("osmosis-campaign-{}", std::process::id())),
        PathBuf::from,
    );
    if smoke_mode {
        smoke(&spec, &opts, &dir);
    }

    let resume = args.iter().any(|a| a == "--resume");
    if !resume {
        wipe(&dir);
    }

    let t0 = Instant::now();
    let mut run_opts = opts.clone();
    if let Some(f) = flag_value(&args, "--kill-after") {
        let frac: f64 = parse_or_die("--kill-after", &f);
        run_opts.interrupt_after = Some(((frac * opts.shards as f64).ceil() as usize).max(1));
    }
    let report = run_or_die(&dir, &spec, &run_opts);
    let wall_s = t0.elapsed().as_secs_f64();
    if report.interrupted {
        println!(
            "campaign interrupted after {} of {} shards; resumable state in {}",
            report.completed.len() + report.restored.len(),
            report.shards,
            dir.display()
        );
        std::process::exit(124);
    }

    // A second supervised pass over the finished directory measures pure
    // resume overhead: every shard restores from its summary.
    let t1 = Instant::now();
    let resumed = run_or_die(&dir, &spec, &opts);
    let resume_s = t1.elapsed().as_secs_f64();
    if resumed.fingerprint != report.fingerprint {
        eprintln!(
            "resume drifted: {:016x} != {:016x}",
            resumed.fingerprint, report.fingerprint
        );
        std::process::exit(1);
    }

    let mut rows = vec![
        vec!["campaign key".into(), format!("{:016x}", report.key)],
        vec!["scenario points".into(), report.points.to_string()],
        vec!["points completed".into(), report.points_done.to_string()],
        vec![
            "shards (completed/quarantined)".into(),
            format!(
                "{} ({}/{})",
                report.shards,
                report.completed.len() + report.restored.len(),
                report.quarantined.len()
            ),
        ],
        vec!["worker attempts".into(), report.attempts.to_string()],
        vec!["cells delivered".into(), report.delivered.to_string()],
        vec!["cells dropped".into(), report.dropped.to_string()],
        vec![
            "campaign fingerprint".into(),
            format!("{:016x}", report.fingerprint),
        ],
        vec!["wall clock".into(), format!("{wall_s:.2} s")],
        vec![
            "resume overhead (all restored)".into(),
            format!("{resume_s:.2} s"),
        ],
    ];
    for q in &report.quarantined {
        rows.push(vec![
            format!("quarantined shard {}", q.shard),
            format!("{} attempts: {}", q.attempts, q.reason),
        ]);
    }
    print_table(
        "Crash-safe sharded campaign (supervised worker processes)",
        &["metric", "value"],
        &rows,
    );

    let json = snapshot(&report, &spec, wall_s, resume_s);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
