//! Regenerates Table 1: key HPC fabric requirements vs. what the
//! reproduction measures.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::table1;

fn main() {
    let scale = scale_from_args();
    let rows = table1::run(scale, 0xA11);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.requirement.to_string(),
                r.target.clone(),
                r.measured.clone(),
                if r.pass { "PASS" } else { "FAIL" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: key HPC fabric requirements",
        &["requirement", "paper target", "measured", "status"],
        &table,
    );
    assert!(rows.iter().all(|r| r.pass), "a Table 1 requirement failed");
}
