//! Regenerates the SIV.C reliability tiers: raw optical BER -> post-FEC ->
//! post-retransmission, plus a Monte-Carlo reliable-link run through the
//! real (272,256,3) codec.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::sec4c;
use osmosis_core::Scale;

fn main() {
    let scale = scale_from_args();
    let cells = if scale == Scale::Quick { 1_000 } else { 20_000 };
    let r = sec4c::run(cells, 0x4C);
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|b| {
            vec![
                format!("{:.1e}", b.raw_ber),
                format!("{:.2e}", b.fec_ber),
                format!("{:.2e}", b.retx_ber),
                format!("{:.6}", b.transmissions),
            ]
        })
        .collect();
    print_table(
        "SIV.C: two-tier reliability (272,256,3) FEC + hop-by-hop retransmission",
        &[
            "raw BER",
            "user BER (FEC only)",
            "user BER (FEC+retx)",
            "tx per block",
        ],
        &rows,
    );
    println!(
        "\ncoding overhead: {:.2}% (paper: 6.25%)",
        r.overhead * 100.0
    );
    println!("paper targets: FEC < 1e-17 at raw 1e-10 .. 1e-12; +retx < 1e-21  -- both hold");
    println!(
        "\nMonte-Carlo reliable link at raw BER 1e-5: {}/{} cells delivered, \
         {} FEC-corrected, {} retransmissions, {} undetected corruptions, goodput {:.3}",
        r.link_run.delivered,
        r.link_run.offered,
        r.link_run.fec_corrected_cells,
        r.link_run.retransmissions,
        r.link_run.undetected_corruptions,
        r.link_run.goodput,
    );
}
