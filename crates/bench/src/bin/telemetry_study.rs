//! Latency-decomposition study: the Fig. 7 delay-vs-load curve with each
//! point's mean delay split into stacked per-component segments — VOQ
//! queueing, request→grant control path, crossbar transfer, and egress
//! residence — measured by the telemetry plane's cell-lifecycle spans.
//!
//! Flags: `--quick` runs at test scale; `--smoke` is `--quick` plus hard
//! pass/fail acceptance bars (segment sums must reconcile with the
//! engine's mean delay to 1e-9, and the emitted JSONL must pass schema
//! validation — this is the CI entry point); `--telemetry <path.jsonl>`
//! writes the stream to `path` instead of a temporary file.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::latency_decomposition::{self, DecompositionPoint};
use osmosis_core::Scale;
use osmosis_telemetry::TelemetrySink;
use std::path::PathBuf;

fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

fn print_arm(points: &[DecompositionPoint], receivers: usize) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.load),
                format!("{:.3}", p.throughput),
                format!("{:.3}", p.mean_delay),
                format!("{:.3}", p.queueing),
                format!("{:.3}", p.request_grant),
                format!("{:.3}", p.crossbar),
                format!("{:.3}", p.egress),
                format!("{:.1e}", p.reconciliation_error),
            ]
        })
        .collect();
    print_table(
        &format!("Delay decomposition, {receivers} receiver(s) per port"),
        &[
            "load",
            "thr",
            "delay",
            "queueing",
            "req-grant",
            "crossbar",
            "egress",
            "recon err",
        ],
        &rows,
    );
    // Stacked composition of the highest-load point, as a text chart.
    if let Some(p) = points.last() {
        let total = p.mean_delay.max(f64::MIN_POSITIVE);
        println!(
            "  composition at load {:.3} (delay {:.2} cycles):",
            p.load, p.mean_delay
        );
        for (name, v) in [
            ("queueing", p.queueing),
            ("req-grant", p.request_grant),
            ("crossbar", p.crossbar),
            ("egress", p.egress),
        ] {
            println!("    {name:<9} {:>6.2} |{}", v, bar(v / total, 40));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let telemetry = args
        .iter()
        .position(|a| a == "--telemetry")
        .map(|i| match args.get(i + 1) {
            Some(path) => PathBuf::from(path),
            None => {
                eprintln!("--telemetry needs a .jsonl path argument");
                std::process::exit(2);
            }
        });
    let scale = if smoke {
        Scale::Quick
    } else {
        scale_from_args()
    };
    let seed = 0x7E1E;
    let path = telemetry.unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "osmosis-telemetry-study-{}.jsonl",
            std::process::id()
        ))
    });

    let mut sink = TelemetrySink::new()
        .with_label("telemetry_study")
        .stream_to_path(&path)
        .unwrap_or_else(|e| {
            eprintln!("cannot open telemetry stream {}: {e}", path.display());
            std::process::exit(1);
        });
    let single = latency_decomposition::run_with_sink(scale, seed, 1, &mut sink);
    let dual = latency_decomposition::run_with_sink(scale, seed, 2, &mut sink);
    if let Err(e) = sink.finish_stream() {
        eprintln!("{e}");
        std::process::exit(1);
    }

    print_arm(&single, 1);
    println!();
    print_arm(&dual, 2);

    // Validate the emitted stream end to end — the study's own output is
    // its first consumer.
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read back telemetry file {}: {e}", path.display());
        std::process::exit(1);
    });
    let stats = match osmosis_telemetry::validate_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("telemetry file failed schema validation: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "\ntelemetry: {} -> {} runs, {} snapshots, {} spans (schema valid)",
        path.display(),
        stats.metas,
        stats.snapshots,
        stats.spans
    );

    // Acceptance bars — always checked; --smoke exists so CI runs them
    // at quick scale.
    let runs = (single.len() + dual.len()) as u64;
    assert_eq!(stats.metas, runs, "one meta record per engine run");
    assert_eq!(stats.summaries, runs, "one summary record per engine run");
    for p in single.iter().chain(dual.iter()) {
        assert!(p.cells > 0, "no measured cells at load {}", p.load);
        assert!(
            p.reconciliation_error < 1e-9,
            "segment sum {} diverged from engine mean delay {} at load {} ({} rx)",
            p.segment_sum(),
            p.mean_delay,
            p.load,
            p.receivers
        );
    }
    // The decomposition must explain the load-dependent growth: at the
    // top load the queueing+egress share dominates the fixed floors.
    let top = dual.last().unwrap();
    let floor = top.request_grant + top.crossbar;
    assert!(
        top.mean_delay > floor,
        "delay {} not above the fixed floors {}",
        top.mean_delay,
        floor
    );

    println!("\nThe fixed floors (request-grant, crossbar) are load-independent; all delay");
    println!("growth with load lands in VOQ queueing and egress residence - with the dual");
    println!("receiver draining egress contention, exactly the paper's Fig. 7 argument.");
    if smoke {
        println!("smoke: all telemetry acceptance checks passed");
    }
}
