//! Regenerates the SI power argument: CMOS power grows with the data
//! rate, SOA bias does not; control power follows the packet rate.

use osmosis_analysis::power::PowerModel;
use osmosis_bench::print_table;

fn main() {
    let m = PowerModel::circa_2005();
    let rates = [2.5, 10.0, 20.0, 40.0, 80.0, 160.0, 200.0];
    let rows: Vec<Vec<String>> = rates
        .iter()
        .map(|&r| {
            vec![
                format!("{r:.0}"),
                format!("{:.2}", m.cmos_port_power_w(r)),
                format!("{:.2}", m.optical_port_power_w(r)),
                format!("{:.2}", m.control_port_power_w(r, 256.0)),
                format!("{:.2}", m.hybrid_port_power_w(r, 256.0)),
            ]
        })
        .collect();
    print_table(
        "SI: per-port switching power vs. line rate (W)",
        &["Gb/s", "CMOS", "optical (SOA)", "control", "hybrid total"],
        &rows,
    );
    println!(
        "\ncrossover: optics cheaper than CMOS above {:.1} Gb/s",
        m.crossover_gbps()
    );
    println!("The optical datapath is flat in the data rate; only the control function");
    println!("(proportional to the packet rate) grows - the paper's SI power argument.");
}
