//! Ablation A1: FLPPR pipeline depth K - delay and throughput vs. load.

use osmosis_bench::{print_table, scale_from_args};
use osmosis_core::experiments::ablations::flppr_depth;

fn main() {
    let scale = scale_from_args();
    let pts = flppr_depth(scale, 0xA1);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.depth.to_string(),
                format!("{:.2}", p.load),
                format!("{:.2}", p.delay),
                format!("{:.3}", p.throughput),
            ]
        })
        .collect();
    print_table(
        "A1: FLPPR depth ablation (uniform Bernoulli traffic)",
        &[
            "depth K",
            "offered load",
            "mean delay (cycles)",
            "throughput",
        ],
        &rows,
    );
    println!("\nDepth 1 (a single one-iteration matcher) loses throughput near saturation;");
    println!("depth log2(N) recovers it while keeping the 1-cycle low-load grant latency.");
}
