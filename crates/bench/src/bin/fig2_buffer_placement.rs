//! Regenerates Fig. 2's comparison: buffer placement options around the
//! optical crossbar.
//!
//! Flags:
//!
//! * `--quick` — test scale.
//! * `--topology <spec>` — run the comparison on a declared two-level
//!   topology instead of the figure's default (the spec's placement and
//!   buffer-sizing fields are the experiment's own axes and are
//!   ignored).

use osmosis_bench::{print_table, scale_from_args, topology_from_args};
use osmosis_core::experiments::fig2;

fn main() {
    let scale = scale_from_args();
    let spec = topology_from_args().unwrap_or_else(|| fig2::default_topology(scale));
    let rows = fig2::run_on(&spec, scale, 0xF162);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.placement),
                r.oeo_per_stage.to_string(),
                format!("{:.2}", r.light_load_latency),
                format!("{:.2}", r.moderate_load_latency),
                format!("{:.3}", r.moderate_throughput),
                r.buffer_cells_needed.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 2: buffer placement options ({spec})"),
        &[
            "placement",
            "OEO/stage",
            "latency @5% (cycles)",
            "latency @60%",
            "thr @60%",
            "buffer cells",
        ],
        &table,
    );
    println!("\nOption 3 (input-only) minimizes OEO conversions AND request/grant latency;");
    println!("its cost is the RTT-sized input buffer - the paper's choice.");
}
