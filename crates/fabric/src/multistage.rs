//! Slotted simulation of a two-level fat-tree fabric built from
//! input-buffered switches with credit flow control — the architecture of
//! §IV with buffer-placement option 3 (and option 1 for the Fig. 2
//! comparison).
//!
//! Every switch is an input-buffered crossbar with its own independent
//! round-robin iterative scheduler (the multistage-scalability argument of
//! §IV: per-stage buffers let the schedulers run independently). The
//! inter-switch links carry fixed-size cells with a configurable flight
//! time; the downstream input buffers are finite and protected by a
//! credit loop with a deterministic RTT — the paper's scheduler-relayed
//! remote flow control (Fig. 4) travels on existing channels, so its
//! timing is exactly this credit loop. Losslessness is asserted, not just
//! measured: a cell arriving at a full buffer panics the simulation.

use crate::topology::TwoLevelFatTree;
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::stats::Histogram;
use osmosis_switch::Cell;
use osmosis_traffic::{SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Buffer placement per stage (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Option 1: buffers at inputs *and* outputs of every stage. Simple
    /// flow control, but twice the OEO conversions.
    InputAndOutput,
    /// Option 2: output buffers only — the request/grant protocol crosses
    /// the long upstream cable, adding a round trip to every scheduling
    /// decision.
    OutputOnly,
    /// Option 3 (the paper's choice): input buffers only; request/grant
    /// stays inside the switch, the buffers absorb the upstream RTT.
    InputOnly,
}

impl Placement {
    /// OEO conversion points per stage (the §IV.A cost argument).
    pub fn oeo_per_stage(self) -> u32 {
        match self {
            Placement::InputAndOutput => 2,
            Placement::OutputOnly | Placement::InputOnly => 1,
        }
    }
}

/// Fabric configuration.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Switch radix (two-level fat tree: k²/2 hosts).
    pub radix: usize,
    /// One-way link flight time in cell slots (host↔leaf and leaf↔spine).
    pub link_delay: u64,
    /// Input-buffer capacity per switch input port, in cells. The credit
    /// loop RTT is 2·link_delay(+1); smaller buffers throttle, but can
    /// never lose a cell.
    pub buffer_cells: usize,
    /// Matching iterations per switch per slot.
    pub iterations: usize,
    /// Buffer placement (Fig. 2 option).
    pub placement: Placement,
}

impl FabricConfig {
    /// A small OSMOSIS-style fabric: radix-8 (32 hosts), 2-slot links,
    /// buffers sized for the credit RTT, option 3.
    pub fn small(radix: usize, link_delay: u64) -> Self {
        FabricConfig {
            radix,
            link_delay,
            buffer_cells: (2 * link_delay + 2) as usize,
            iterations: 3,
            placement: Placement::InputOnly,
        }
    }
}

/// Fabric run results.
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Offered load per host.
    pub offered_load: f64,
    /// Carried throughput per host.
    pub throughput: f64,
    /// Mean end-to-end latency in slots (host NIC → host NIC).
    pub mean_latency: f64,
    /// 99th percentile latency, when resolvable.
    pub p99_latency: Option<f64>,
    /// Cells injected/delivered in the measurement window.
    pub injected: u64,
    /// Cells delivered in the measurement window.
    pub delivered: u64,
    /// Out-of-order deliveries (must be 0).
    pub reordered: u64,
    /// Peak input-buffer occupancy seen at any switch input.
    pub max_buffer_occupancy: usize,
    /// Latency histogram (slots).
    pub latency_hist: Histogram,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeId {
    Leaf(usize),
    Spine(usize),
}

/// Where a switch output port leads.
#[derive(Debug, Clone, Copy)]
enum Downstream {
    /// A host NIC (sink; drains one cell per slot by construction).
    Host(usize),
    /// Another switch's input port (credit-controlled).
    Switch(NodeId, usize),
}

/// Where a switch input port receives from (for credit returns).
#[derive(Debug, Clone, Copy)]
enum Upstream {
    Host(usize),
    Switch(NodeId, usize),
}

struct SwitchNode {
    /// Per (input, output) VOQ; each entry carries the slot at which the
    /// cell becomes schedulable (later than its arrival only under
    /// placement option 2, where requests cross the long cable to reach
    /// the scheduler).
    voq: Vec<VecDeque<(u64, Cell)>>,
    /// Total occupancy per input port (for the losslessness assertion).
    input_occupancy: Vec<usize>,
    /// Option-1 egress buffers.
    egress: Vec<VecDeque<Cell>>,
    /// Send credits per output port (usize::MAX for host sinks).
    credits: Vec<usize>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    downstream: Vec<Downstream>,
    upstream: Vec<Upstream>,
}

impl SwitchNode {
    fn new(ports: usize, downstream: Vec<Downstream>, upstream: Vec<Upstream>, buffer: usize) -> Self {
        let credits = downstream
            .iter()
            .map(|d| match d {
                Downstream::Host(_) => usize::MAX,
                Downstream::Switch(..) => buffer,
            })
            .collect();
        SwitchNode {
            voq: (0..ports * ports).map(|_| VecDeque::new()).collect(),
            input_occupancy: vec![0; ports],
            egress: (0..ports).map(|_| VecDeque::new()).collect(),
            credits,
            grant_arb: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
            accept_arb: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
            downstream,
            upstream,
        }
    }
}

/// The fabric simulator.
pub struct FatTreeFabric {
    cfg: FabricConfig,
    topo: TwoLevelFatTree,
    leaves: Vec<SwitchNode>,
    spines: Vec<SwitchNode>,
    /// Host injection queues (the source VOQs; unbounded).
    host_queues: Vec<VecDeque<Cell>>,
    /// Credits a host holds toward its leaf input buffer.
    host_credits: Vec<usize>,
    /// Cells in flight: (arrival slot, destination node+port or host).
    cell_flights: VecDeque<(u64, CellDest, Cell)>,
    /// Credits in flight back to (node, output port) or host.
    credit_flights: VecDeque<(u64, CreditDest)>,
    stamper: SequenceStamper,
    next_id: u64,
}

#[derive(Debug, Clone, Copy)]
enum CellDest {
    SwitchIn(NodeId, usize),
    Host(usize),
}

#[derive(Debug, Clone, Copy)]
enum CreditDest {
    SwitchOut(NodeId, usize),
    Host(usize),
}

impl FatTreeFabric {
    /// Build the fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        assert!(cfg.link_delay >= 1, "links need at least one slot of flight");
        assert!(cfg.buffer_cells >= 1);
        let topo = TwoLevelFatTree::new(cfg.radix);
        let k = cfg.radix;
        let half = k / 2;

        let leaves = (0..topo.leaves())
            .map(|l| {
                let downstream = (0..k)
                    .map(|p| {
                        if p < half {
                            Downstream::Host(l * half + p)
                        } else {
                            // Up port toward spine p−half; our input there
                            // is port l.
                            Downstream::Switch(NodeId::Spine(p - half), l)
                        }
                    })
                    .collect();
                let upstream = (0..k)
                    .map(|p| {
                        if p < half {
                            Upstream::Host(l * half + p)
                        } else {
                            // Spine p−half sends to us from its output l.
                            Upstream::Switch(NodeId::Spine(p - half), l)
                        }
                    })
                    .collect();
                SwitchNode::new(k, downstream, upstream, cfg.buffer_cells)
            })
            .collect();

        let spines = (0..topo.spines())
            .map(|s| {
                // Spine port l ↔ leaf l (leaf's up port half+s).
                let downstream = (0..k)
                    .map(|l| Downstream::Switch(NodeId::Leaf(l), half + s))
                    .collect();
                let upstream = (0..k)
                    .map(|l| Upstream::Switch(NodeId::Leaf(l), half + s))
                    .collect();
                SwitchNode::new(k, downstream, upstream, cfg.buffer_cells)
            })
            .collect();

        FatTreeFabric {
            cfg,
            topo,
            leaves,
            spines,
            host_queues: (0..topo.hosts()).map(|_| VecDeque::new()).collect(),
            host_credits: vec![cfg.buffer_cells; topo.hosts()],
            cell_flights: VecDeque::new(),
            credit_flights: VecDeque::new(),
            stamper: SequenceStamper::new(),
            next_id: 0,
        }
    }

    /// Topology descriptor.
    pub fn topology(&self) -> TwoLevelFatTree {
        self.topo
    }

    fn node(&mut self, id: NodeId) -> &mut SwitchNode {
        match id {
            NodeId::Leaf(l) => &mut self.leaves[l],
            NodeId::Spine(s) => &mut self.spines[s],
        }
    }

    /// Output port a cell takes at the given switch.
    fn route(&self, id: NodeId, cell: &Cell) -> usize {
        match id {
            NodeId::Leaf(l) => {
                let dest_leaf = self.topo.leaf_of(cell.dst);
                if dest_leaf == l {
                    self.topo.down_port_of(cell.dst)
                } else {
                    self.topo.up_port(self.topo.spine_of_flow(cell.src, cell.dst))
                }
            }
            NodeId::Spine(_) => self.topo.leaf_of(cell.dst),
        }
    }

    /// Run traffic through the fabric.
    pub fn run(
        &mut self,
        traffic: &mut dyn TrafficGen,
        warmup_slots: u64,
        measure_slots: u64,
    ) -> FabricReport {
        assert_eq!(traffic.ports(), self.topo.hosts());
        let total = warmup_slots + measure_slots;
        let d = self.cfg.link_delay;
        let hosts = self.topo.hosts();
        let option2_extra = if self.cfg.placement == Placement::OutputOnly {
            2 * d
        } else {
            0
        };

        let buffer_cells = self.cfg.buffer_cells;
        let mut latency_hist = Histogram::new(1.0, 65_536);
        let mut checker = SequenceChecker::new();
        let (mut injected, mut delivered) = (0u64, 0u64);
        let mut max_occ = 0usize;
        let mut arrivals = Vec::with_capacity(hosts);
        let node_ids: Vec<NodeId> = (0..self.topo.leaves())
            .map(NodeId::Leaf)
            .chain((0..self.topo.spines()).map(NodeId::Spine))
            .collect();
        let ports = self.cfg.radix;
        let mut requesters = BitSet::new(ports);
        let mut grants_to_input: Vec<BitSet> =
            (0..ports).map(|_| BitSet::new(ports)).collect();

        for t in 0..total {
            let measuring = t >= warmup_slots;

            // --- Cell arrivals from links.
            while self.cell_flights.front().is_some_and(|&(at, _, _)| at == t) {
                let (_, dest, cell) = self.cell_flights.pop_front().unwrap();
                match dest {
                    CellDest::Host(h) => {
                        debug_assert_eq!(cell.dst, h);
                        checker.record(cell.src, cell.dst, cell.seq);
                        if measuring {
                            delivered += 1;
                            if cell.inject_slot >= warmup_slots {
                                latency_hist.record((t - cell.inject_slot) as f64);
                            }
                        }
                    }
                    CellDest::SwitchIn(id, port) => {
                        let out = self.route(id, &cell);
                        let node = self.node(id);
                        node.input_occupancy[port] += 1;
                        assert!(
                            node.input_occupancy[port] <= buffer_cells,
                            "input buffer overflow at {id:?} port {port}: \
                             credit flow control violated"
                        );
                        max_occ = max_occ.max(node.input_occupancy[port]);
                        // A cell arriving in slot t is schedulable at t+1
                        // (the local request/grant cycle); option 2 adds a
                        // control RTT on top.
                        node.voq[port * ports + out]
                            .push_back((t + 1 + option2_extra, cell));
                    }
                }
            }

            // --- Credit returns.
            while self
                .credit_flights
                .front()
                .is_some_and(|&(at, _)| at == t)
            {
                let (_, dest) = self.credit_flights.pop_front().unwrap();
                match dest {
                    CreditDest::Host(h) => self.host_credits[h] += 1,
                    CreditDest::SwitchOut(id, port) => {
                        let node = self.node(id);
                        node.credits[port] += 1;
                    }
                }
            }

            // --- Each switch computes a matching and forwards cells.
            for &id in &node_ids {
                // Option 1: egress buffers transmit first (a cell matched
                // in slot t departs the stage in slot t+1), gated by
                // downstream credits.
                if self.cfg.placement == Placement::InputAndOutput {
                    for o in 0..ports {
                        let (send, dest) = {
                            let node = match id {
                                NodeId::Leaf(l) => &mut self.leaves[l],
                                NodeId::Spine(s) => &mut self.spines[s],
                            };
                            if node.egress[o].is_empty() {
                                continue;
                            }
                            let is_switch =
                                matches!(node.downstream[o], Downstream::Switch(..));
                            if is_switch && node.credits[o] == 0 {
                                continue;
                            }
                            let cell = node.egress[o].pop_front().unwrap();
                            if is_switch {
                                node.credits[o] -= 1;
                            }
                            (cell, node.downstream[o])
                        };
                        let dest = match dest {
                            Downstream::Host(h) => CellDest::Host(h),
                            Downstream::Switch(nid, port) => {
                                CellDest::SwitchIn(nid, port)
                            }
                        };
                        self.cell_flights.push_back((t + d, dest, send));
                    }
                }

                // Matching (iterative RR grant/accept) on the node.
                let mut matched_pairs: Vec<(usize, usize)> = Vec::new();
                {
                    let needs_credit_at_match =
                        self.cfg.placement != Placement::InputAndOutput;
                    let node = match id {
                        NodeId::Leaf(l) => &mut self.leaves[l],
                        NodeId::Spine(s) => &mut self.spines[s],
                    };
                    let mut in_matched = vec![false; ports];
                    let mut out_matched = vec![false; ports];
                    for _ in 0..self.cfg.iterations {
                        for g in grants_to_input.iter_mut() {
                            g.clear_all();
                        }
                        let mut any = false;
                        for o in 0..ports {
                            if out_matched[o] {
                                continue;
                            }
                            if needs_credit_at_match && node.credits[o] == 0 {
                                continue;
                            }
                            requesters.clear_all();
                            let mut have = false;
                            for i in 0..ports {
                                if in_matched[i] {
                                    continue;
                                }
                                let q = &node.voq[i * ports + o];
                                if q.front().is_some_and(|&(ready, _)| ready <= t) {
                                    requesters.set(i);
                                    have = true;
                                }
                            }
                            if !have {
                                continue;
                            }
                            if let Some(i) = node.grant_arb[o].arbitrate(&requesters)
                            {
                                grants_to_input[i].set(o);
                                any = true;
                            }
                        }
                        if !any {
                            break;
                        }
                        for i in 0..ports {
                            if in_matched[i] || grants_to_input[i].is_empty() {
                                continue;
                            }
                            if let Some(o) =
                                node.accept_arb[i].arbitrate(&grants_to_input[i])
                            {
                                in_matched[i] = true;
                                out_matched[o] = true;
                                node.grant_arb[o].advance_past(i);
                                node.accept_arb[i].advance_past(o);
                                matched_pairs.push((i, o));
                            }
                        }
                    }
                }

                // Execute the matching: move cells out of the input
                // buffers, return credits upstream.
                for &(i, o) in &matched_pairs {
                    let (cell, upstream, to_egress, dest) = {
                        let node = match id {
                            NodeId::Leaf(l) => &mut self.leaves[l],
                            NodeId::Spine(s) => &mut self.spines[s],
                        };
                        let (_, mut cell) = node.voq[i * ports + o]
                            .pop_front()
                            .expect("matched pair without a cell");
                        cell.grant_slot = t;
                        node.input_occupancy[i] -= 1;
                        let to_egress =
                            self.cfg.placement == Placement::InputAndOutput;
                        if !to_egress {
                            debug_assert!(node.credits[o] >= 1);
                            if let Downstream::Switch(..) = node.downstream[o] {
                                node.credits[o] -= 1;
                            }
                        }
                        (cell, node.upstream[i], to_egress, node.downstream[o])
                    };
                    // Credit back to whoever feeds this input port.
                    match upstream {
                        Upstream::Host(h) => self
                            .credit_flights
                            .push_back((t + d, CreditDest::Host(h))),
                        Upstream::Switch(up_id, up_port) => self.credit_flights.push_back((
                            t + d,
                            CreditDest::SwitchOut(up_id, up_port),
                        )),
                    }
                    if to_egress {
                        let node = match id {
                            NodeId::Leaf(l) => &mut self.leaves[l],
                            NodeId::Spine(s) => &mut self.spines[s],
                        };
                        node.egress[o].push_back(cell);
                    } else {
                        let dest = match dest {
                            Downstream::Host(h) => CellDest::Host(h),
                            Downstream::Switch(nid, port) => {
                                CellDest::SwitchIn(nid, port)
                            }
                        };
                        self.cell_flights.push_back((t + d, dest, cell));
                    }
                }
            }

            // --- Hosts inject one cell per slot when they hold a credit.
            for h in 0..hosts {
                if self.host_credits[h] > 0 {
                    if let Some(cell) = self.host_queues[h].pop_front() {
                        self.host_credits[h] -= 1;
                        let leaf = self.topo.leaf_of(h);
                        let port = self.topo.down_port_of(h);
                        self.cell_flights.push_back((
                            t + d,
                            CellDest::SwitchIn(NodeId::Leaf(leaf), port),
                            cell,
                        ));
                    }
                }
            }

            // --- New traffic.
            arrivals.clear();
            traffic.arrivals(t, &mut arrivals);
            for a in &arrivals {
                let seq = self.stamper.stamp(a.src, a.dst);
                let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, t);
                self.next_id += 1;
                if measuring {
                    injected += 1;
                }
                self.host_queues[a.src].push_back(cell);
            }
        }

        let denom = measure_slots as f64 * hosts as f64;
        FabricReport {
            offered_load: injected as f64 / denom,
            throughput: delivered as f64 / denom,
            mean_latency: latency_hist.mean(),
            p99_latency: latency_hist.quantile(0.99),
            injected,
            delivered,
            reordered: checker.reordered(),
            max_buffer_occupancy: max_occ,
            latency_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::{BernoulliUniform, Hotspot};

    fn run_fabric(cfg: FabricConfig, load: f64, seed: u64) -> FabricReport {
        let mut fab = FatTreeFabric::new(cfg);
        let mut tr =
            BernoulliUniform::new(fab.topology().hosts(), load, &SeedSequence::new(seed));
        fab.run(&mut tr, 1_000, 8_000)
    }

    #[test]
    fn idle_fabric_stays_idle() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.0, 1);
        assert_eq!(r.injected, 0);
        assert_eq!(r.delivered, 0);
    }

    #[test]
    fn light_load_flows_lossless_in_order() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.2, 2);
        assert!((r.throughput - 0.2).abs() < 0.02, "thr {}", r.throughput);
        assert_eq!(r.reordered, 0, "per-flow order via stable spine hashing");
        assert!(r.max_buffer_occupancy <= 6, "occ {}", r.max_buffer_occupancy);
    }

    #[test]
    fn unloaded_latency_decomposes_into_hops() {
        // Inter-leaf: 1 (inject) + 4 links + 3 scheduling cycles = 4d+4;
        // intra-leaf (prob = (k/2−1)/(k²/2)·…≈1/8 incl. self): 2d+2.
        // At radix 8 the destination is under the same leaf with
        // probability 4/32, so the mix is 0.875·(4d+4) + 0.125·(2d+2).
        let d = 3u64;
        let r = run_fabric(FabricConfig::small(8, d), 0.02, 3);
        let inter = (4 * d + 4) as f64;
        let intra = (2 * d + 2) as f64;
        let expect = 0.875 * inter + 0.125 * intra;
        assert!(
            (r.mean_latency - expect).abs() < 1.5,
            "latency {} vs ≈{expect}",
            r.mean_latency
        );
    }

    #[test]
    fn moderate_load_sustains_throughput() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.7, 4);
        assert!(
            (r.throughput - 0.7).abs() < 0.04,
            "thr {} vs 0.7",
            r.throughput
        );
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn hotspot_overload_is_lossless() {
        // Every host sends half its traffic to host 0: output 0 is
        // overloaded, backpressure propagates, nothing is ever dropped
        // (the assertion inside the sim would panic on overflow).
        let cfg = FabricConfig::small(8, 2);
        let mut fab = FatTreeFabric::new(cfg);
        let hosts = fab.topology().hosts();
        let mut tr = Hotspot::new(hosts, 0.5, 0, 0.5, &SeedSequence::new(5));
        let r = fab.run(&mut tr, 1_000, 8_000);
        assert_eq!(r.reordered, 0);
        assert!(
            r.max_buffer_occupancy <= cfg.buffer_cells,
            "credits bound the buffers"
        );
        // The hot egress drains at its full line rate (1/hosts of the
        // aggregate); port-level backpressure lets congestion spread into
        // the shared buffers (tree saturation), so aggregate throughput
        // sits well below offered load — but strictly above the hot
        // port's own rate, and nothing is ever lost.
        let hot_rate = 1.0 / fab.topology().hosts() as f64;
        assert!(r.throughput > hot_rate, "throughput {}", r.throughput);
    }

    #[test]
    fn tiny_buffers_throttle_but_never_drop() {
        // Buffer below the credit RTT: goodput drops, losslessness holds.
        let mut cfg = FabricConfig::small(8, 4);
        cfg.buffer_cells = 2; // RTT is 2·4 = 8 slots
        let r = run_fabric(cfg, 0.9, 6);
        assert!(r.throughput < 0.6, "throttled: {}", r.throughput);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn rtt_sized_buffers_sustain_full_rate() {
        // Load chosen below the static-flow-hash imbalance point: with
        // k/2 = 4 uplinks per leaf and random per-flow spine hashing, the
        // worst uplink carries noticeably more than the average, so the
        // fabric saturates before the hosts do (cf. the ECMP-imbalance
        // literature). 0.72 keeps every link under 1.0 with margin.
        let mut cfg = FabricConfig::small(8, 4);
        cfg.buffer_cells = (2 * cfg.link_delay + 2) as usize;
        let r = run_fabric(cfg, 0.72, 7);
        assert!(
            (r.throughput - 0.72).abs() < 0.04,
            "thr {} at RTT-sized buffers",
            r.throughput
        );
    }

    #[test]
    fn placement_option1_adds_a_stage_of_latency() {
        let mut cfg3 = FabricConfig::small(8, 2);
        cfg3.placement = Placement::InputOnly;
        let mut cfg1 = cfg3;
        cfg1.placement = Placement::InputAndOutput;
        let r3 = run_fabric(cfg3, 0.1, 8);
        let r1 = run_fabric(cfg1, 0.1, 8);
        assert!(
            r1.mean_latency > r3.mean_latency + 2.0,
            "option 1 {} vs option 3 {}",
            r1.mean_latency,
            r3.mean_latency
        );
        assert_eq!(Placement::InputAndOutput.oeo_per_stage(), 2);
        assert_eq!(Placement::InputOnly.oeo_per_stage(), 1);
    }

    #[test]
    fn placement_option2_pays_control_rtt_per_stage() {
        let mut cfg3 = FabricConfig::small(8, 3);
        cfg3.placement = Placement::InputOnly;
        let mut cfg2 = cfg3;
        cfg2.placement = Placement::OutputOnly;
        let r3 = run_fabric(cfg3, 0.1, 9);
        let r2 = run_fabric(cfg2, 0.1, 9);
        // Each of the 3 stages adds ≈ 2·d of request/grant flight.
        assert!(
            r2.mean_latency > r3.mean_latency + 4.0,
            "option 2 {} vs option 3 {}",
            r2.mean_latency,
            r3.mean_latency
        );
    }

    #[test]
    fn fabric_is_deterministic() {
        let a = run_fabric(FabricConfig::small(8, 2), 0.5, 11);
        let b = run_fabric(FabricConfig::small(8, 2), 0.5, 11);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mean_latency, b.mean_latency);
    }
}
