//! Slotted simulation of a two-level fat-tree fabric built from
//! input-buffered switches with credit flow control — the architecture of
//! §IV with buffer-placement option 3 (and option 1 for the Fig. 2
//! comparison).
//!
//! Every switch is an input-buffered crossbar with its own independent
//! round-robin iterative scheduler (the multistage-scalability argument of
//! §IV: per-stage buffers let the schedulers run independently). The
//! inter-switch links carry fixed-size cells with a configurable flight
//! time; the downstream input buffers are finite and protected by a
//! credit loop with a deterministic RTT — the paper's scheduler-relayed
//! remote flow control (Fig. 4) travels on existing channels, so its
//! timing is exactly this credit loop. Losslessness is asserted, not just
//! measured: a cell arriving at a full buffer panics the simulation.
//!
//! The fabric runs on the shared engine through the `CellSwitch` hooks
//! (link/credit arrivals and switch matchings in `arbitrate`, host
//! injection in `deliver`, new traffic in `admit`) and reports the
//! unified [`EngineReport`]: end-to-end latency lands in
//! `mean_delay`/`delay_hist`, peak input-buffer occupancy in
//! `max_queue_depth`. Host credit stalls are emitted as
//! `TraceEvent::CreditStall` for trace consumers.

use crate::topology::TwoLevelFatTree;
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_switch::driven::{run_switch, CellSwitch};
use osmosis_switch::Cell;
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Buffer placement per stage (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Option 1: buffers at inputs *and* outputs of every stage. Simple
    /// flow control, but twice the OEO conversions.
    InputAndOutput,
    /// Option 2: output buffers only — the request/grant protocol crosses
    /// the long upstream cable, adding a round trip to every scheduling
    /// decision.
    OutputOnly,
    /// Option 3 (the paper's choice): input buffers only; request/grant
    /// stays inside the switch, the buffers absorb the upstream RTT.
    InputOnly,
}

impl Placement {
    /// OEO conversion points per stage (the §IV.A cost argument).
    pub fn oeo_per_stage(self) -> u32 {
        match self {
            Placement::InputAndOutput => 2,
            Placement::OutputOnly | Placement::InputOnly => 1,
        }
    }
}

/// Fabric configuration.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Switch radix (two-level fat tree: k²/2 hosts).
    pub radix: usize,
    /// One-way link flight time in cell slots (host↔leaf and leaf↔spine).
    pub link_delay: u64,
    /// Input-buffer capacity per switch input port, in cells. The credit
    /// loop RTT is 2·link_delay(+1); smaller buffers throttle, but can
    /// never lose a cell.
    pub buffer_cells: usize,
    /// Matching iterations per switch per slot.
    pub iterations: usize,
    /// Buffer placement (Fig. 2 option).
    pub placement: Placement,
}

impl FabricConfig {
    /// A small OSMOSIS-style fabric: radix-8 (32 hosts), 2-slot links,
    /// buffers sized for the credit RTT, option 3.
    pub fn small(radix: usize, link_delay: u64) -> Self {
        FabricConfig {
            radix,
            link_delay,
            buffer_cells: (2 * link_delay + 2) as usize,
            iterations: 3,
            placement: Placement::InputOnly,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeId {
    Leaf(usize),
    Spine(usize),
}

/// Where a switch output port leads.
#[derive(Debug, Clone, Copy)]
enum Downstream {
    /// A host NIC (sink; drains one cell per slot by construction).
    Host(usize),
    /// Another switch's input port (credit-controlled).
    Switch(NodeId, usize),
}

/// Where a switch input port receives from (for credit returns).
#[derive(Debug, Clone, Copy)]
enum Upstream {
    Host(usize),
    Switch(NodeId, usize),
}

struct SwitchNode {
    /// Per (input, output) VOQ; each entry carries the slot at which the
    /// cell becomes schedulable (later than its arrival only under
    /// placement option 2, where requests cross the long cable to reach
    /// the scheduler).
    voq: Vec<VecDeque<(u64, Cell)>>,
    /// Total occupancy per input port (for the losslessness assertion).
    input_occupancy: Vec<usize>,
    /// Option-1 egress buffers.
    egress: Vec<VecDeque<Cell>>,
    /// Send credits per output port (usize::MAX for host sinks).
    credits: Vec<usize>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    downstream: Vec<Downstream>,
    upstream: Vec<Upstream>,
}

impl SwitchNode {
    fn new(
        ports: usize,
        downstream: Vec<Downstream>,
        upstream: Vec<Upstream>,
        buffer: usize,
    ) -> Self {
        let credits = downstream
            .iter()
            .map(|d| match d {
                Downstream::Host(_) => usize::MAX,
                Downstream::Switch(..) => buffer,
            })
            .collect();
        SwitchNode {
            voq: (0..ports * ports).map(|_| VecDeque::new()).collect(),
            input_occupancy: vec![0; ports],
            egress: (0..ports).map(|_| VecDeque::new()).collect(),
            credits,
            grant_arb: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
            accept_arb: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
            downstream,
            upstream,
        }
    }

    fn reset_credits(&mut self, buffer: usize) {
        for (c, d) in self.credits.iter_mut().zip(self.downstream.iter()) {
            *c = match d {
                Downstream::Host(_) => usize::MAX,
                Downstream::Switch(..) => buffer,
            };
        }
    }
}

/// The fabric simulator.
pub struct FatTreeFabric {
    cfg: FabricConfig,
    topo: TwoLevelFatTree,
    leaves: Vec<SwitchNode>,
    spines: Vec<SwitchNode>,
    /// Host injection queues (the source VOQs; unbounded).
    host_queues: Vec<VecDeque<Cell>>,
    /// Credits a host holds toward its leaf input buffer.
    host_credits: Vec<usize>,
    /// Cells in flight: (arrival slot, destination node+port or host).
    cell_flights: VecDeque<(u64, CellDest, Cell)>,
    /// Credits in flight back to (node, output port) or host.
    credit_flights: VecDeque<(u64, CreditDest)>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    node_ids: Vec<NodeId>,
    requesters: BitSet,
    grants_to_input: Vec<BitSet>,
}

#[derive(Debug, Clone, Copy)]
enum CellDest {
    SwitchIn(NodeId, usize),
    Host(usize),
}

#[derive(Debug, Clone, Copy)]
enum CreditDest {
    SwitchOut(NodeId, usize),
    Host(usize),
}

impl FatTreeFabric {
    /// Build the fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        assert!(
            cfg.link_delay >= 1,
            "links need at least one slot of flight"
        );
        assert!(cfg.buffer_cells >= 1);
        let topo = TwoLevelFatTree::new(cfg.radix);
        let k = cfg.radix;
        let half = k / 2;

        let leaves = (0..topo.leaves())
            .map(|l| {
                let downstream = (0..k)
                    .map(|p| {
                        if p < half {
                            Downstream::Host(l * half + p)
                        } else {
                            // Up port toward spine p−half; our input there
                            // is port l.
                            Downstream::Switch(NodeId::Spine(p - half), l)
                        }
                    })
                    .collect();
                let upstream = (0..k)
                    .map(|p| {
                        if p < half {
                            Upstream::Host(l * half + p)
                        } else {
                            // Spine p−half sends to us from its output l.
                            Upstream::Switch(NodeId::Spine(p - half), l)
                        }
                    })
                    .collect();
                SwitchNode::new(k, downstream, upstream, cfg.buffer_cells)
            })
            .collect();

        let spines = (0..topo.spines())
            .map(|s| {
                // Spine port l ↔ leaf l (leaf's up port half+s).
                let downstream = (0..k)
                    .map(|l| Downstream::Switch(NodeId::Leaf(l), half + s))
                    .collect();
                let upstream = (0..k)
                    .map(|l| Upstream::Switch(NodeId::Leaf(l), half + s))
                    .collect();
                SwitchNode::new(k, downstream, upstream, cfg.buffer_cells)
            })
            .collect();

        let node_ids = (0..topo.leaves())
            .map(NodeId::Leaf)
            .chain((0..topo.spines()).map(NodeId::Spine))
            .collect();

        FatTreeFabric {
            cfg,
            topo,
            leaves,
            spines,
            host_queues: (0..topo.hosts()).map(|_| VecDeque::new()).collect(),
            host_credits: vec![cfg.buffer_cells; topo.hosts()],
            cell_flights: VecDeque::new(),
            credit_flights: VecDeque::new(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            node_ids,
            requesters: BitSet::new(k),
            grants_to_input: (0..k).map(|_| BitSet::new(k)).collect(),
        }
    }

    /// Topology descriptor.
    pub fn topology(&self) -> TwoLevelFatTree {
        self.topo
    }

    fn node(&mut self, id: NodeId) -> &mut SwitchNode {
        match id {
            NodeId::Leaf(l) => &mut self.leaves[l],
            NodeId::Spine(s) => &mut self.spines[s],
        }
    }

    /// Output port a cell takes at the given switch.
    fn route(&self, id: NodeId, cell: &Cell) -> usize {
        match id {
            NodeId::Leaf(l) => {
                let dest_leaf = self.topo.leaf_of(cell.dst);
                if dest_leaf == l {
                    self.topo.down_port_of(cell.dst)
                } else {
                    self.topo
                        .up_port(self.topo.spine_of_flow(cell.src, cell.dst))
                }
            }
            NodeId::Spine(_) => self.topo.leaf_of(cell.dst),
        }
    }

    /// Run traffic through the fabric on the shared engine.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for FatTreeFabric {
    fn ports(&self) -> usize {
        self.topo.hosts()
    }

    fn configure(&mut self, cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
        // An engine-level buffer override re-arms every credit loop; only
        // meaningful on a fabric that has not run yet (queues empty).
        if let Some(b) = cfg.buffer_cells {
            if b != self.cfg.buffer_cells {
                assert!(b >= 1);
                self.cfg.buffer_cells = b;
                for node in self.leaves.iter_mut().chain(self.spines.iter_mut()) {
                    node.reset_credits(b);
                }
                self.host_credits.iter_mut().for_each(|c| *c = b);
            }
        }
    }

    fn arbitrate<T: TraceSink>(&mut self, t: u64, obs: &mut Observer<'_, T>) {
        let d = self.cfg.link_delay;
        let ports = self.cfg.radix;
        let buffer_cells = self.cfg.buffer_cells;
        let option2_extra = if self.cfg.placement == Placement::OutputOnly {
            2 * d
        } else {
            0
        };

        // --- Cell arrivals from links.
        while self.cell_flights.front().is_some_and(|&(at, _, _)| at == t) {
            let (_, dest, cell) = self.cell_flights.pop_front().unwrap();
            match dest {
                CellDest::Host(h) => {
                    debug_assert_eq!(cell.dst, h);
                    self.checker.record(cell.src, cell.dst, cell.seq);
                    obs.cell_delivered(h, cell.inject_slot);
                }
                CellDest::SwitchIn(id, port) => {
                    let out = self.route(id, &cell);
                    let node = self.node(id);
                    node.input_occupancy[port] += 1;
                    assert!(
                        node.input_occupancy[port] <= buffer_cells,
                        "input buffer overflow at {id:?} port {port}: \
                         credit flow control violated"
                    );
                    obs.note_queue_depth(node.input_occupancy[port]);
                    // A cell arriving in slot t is schedulable at t+1
                    // (the local request/grant cycle); option 2 adds a
                    // control RTT on top.
                    node.voq[port * ports + out].push_back((t + 1 + option2_extra, cell));
                }
            }
        }

        // --- Credit returns.
        while self.credit_flights.front().is_some_and(|&(at, _)| at == t) {
            let (_, dest) = self.credit_flights.pop_front().unwrap();
            match dest {
                CreditDest::Host(h) => self.host_credits[h] += 1,
                CreditDest::SwitchOut(id, port) => {
                    let node = self.node(id);
                    node.credits[port] += 1;
                }
            }
        }

        // --- Each switch computes a matching and forwards cells.
        for idx in 0..self.node_ids.len() {
            let id = self.node_ids[idx];
            // Option 1: egress buffers transmit first (a cell matched in
            // slot t departs the stage in slot t+1), gated by downstream
            // credits.
            if self.cfg.placement == Placement::InputAndOutput {
                for o in 0..ports {
                    let (send, dest) = {
                        let node = match id {
                            NodeId::Leaf(l) => &mut self.leaves[l],
                            NodeId::Spine(s) => &mut self.spines[s],
                        };
                        if node.egress[o].is_empty() {
                            continue;
                        }
                        let is_switch = matches!(node.downstream[o], Downstream::Switch(..));
                        if is_switch && node.credits[o] == 0 {
                            continue;
                        }
                        let cell = node.egress[o].pop_front().unwrap();
                        if is_switch {
                            node.credits[o] -= 1;
                        }
                        (cell, node.downstream[o])
                    };
                    let dest = match dest {
                        Downstream::Host(h) => CellDest::Host(h),
                        Downstream::Switch(nid, port) => CellDest::SwitchIn(nid, port),
                    };
                    self.cell_flights.push_back((t + d, dest, send));
                }
            }

            // Matching (iterative RR grant/accept) on the node.
            let mut matched_pairs: Vec<(usize, usize)> = Vec::new();
            {
                let needs_credit_at_match = self.cfg.placement != Placement::InputAndOutput;
                let node = match id {
                    NodeId::Leaf(l) => &mut self.leaves[l],
                    NodeId::Spine(s) => &mut self.spines[s],
                };
                let mut in_matched = vec![false; ports];
                let mut out_matched = vec![false; ports];
                for _ in 0..self.cfg.iterations {
                    for g in self.grants_to_input.iter_mut() {
                        g.clear_all();
                    }
                    let mut any = false;
                    for (o, &o_matched) in out_matched.iter().enumerate() {
                        if o_matched {
                            continue;
                        }
                        if needs_credit_at_match && node.credits[o] == 0 {
                            continue;
                        }
                        self.requesters.clear_all();
                        let mut have = false;
                        for (i, &i_matched) in in_matched.iter().enumerate() {
                            if i_matched {
                                continue;
                            }
                            let q = &node.voq[i * ports + o];
                            if q.front().is_some_and(|&(ready, _)| ready <= t) {
                                self.requesters.set(i);
                                have = true;
                            }
                        }
                        if !have {
                            continue;
                        }
                        if let Some(i) = node.grant_arb[o].arbitrate(&self.requesters) {
                            self.grants_to_input[i].set(o);
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                    for (i, i_matched) in in_matched.iter_mut().enumerate() {
                        if *i_matched || self.grants_to_input[i].is_empty() {
                            continue;
                        }
                        if let Some(o) = node.accept_arb[i].arbitrate(&self.grants_to_input[i]) {
                            *i_matched = true;
                            out_matched[o] = true;
                            node.grant_arb[o].advance_past(i);
                            node.accept_arb[i].advance_past(o);
                            matched_pairs.push((i, o));
                        }
                    }
                }
            }

            // Execute the matching: move cells out of the input buffers,
            // return credits upstream.
            for &(i, o) in &matched_pairs {
                let (cell, upstream, to_egress, dest) = {
                    let node = match id {
                        NodeId::Leaf(l) => &mut self.leaves[l],
                        NodeId::Spine(s) => &mut self.spines[s],
                    };
                    let (_, mut cell) = node.voq[i * ports + o]
                        .pop_front()
                        .expect("matched pair without a cell");
                    cell.grant_slot = t;
                    node.input_occupancy[i] -= 1;
                    let to_egress = self.cfg.placement == Placement::InputAndOutput;
                    if !to_egress {
                        debug_assert!(node.credits[o] >= 1);
                        if let Downstream::Switch(..) = node.downstream[o] {
                            node.credits[o] -= 1;
                        }
                    }
                    (cell, node.upstream[i], to_egress, node.downstream[o])
                };
                // Credit back to whoever feeds this input port.
                match upstream {
                    Upstream::Host(h) => {
                        self.credit_flights.push_back((t + d, CreditDest::Host(h)))
                    }
                    Upstream::Switch(up_id, up_port) => self
                        .credit_flights
                        .push_back((t + d, CreditDest::SwitchOut(up_id, up_port))),
                }
                if to_egress {
                    let node = match id {
                        NodeId::Leaf(l) => &mut self.leaves[l],
                        NodeId::Spine(s) => &mut self.spines[s],
                    };
                    node.egress[o].push_back(cell);
                } else {
                    let dest = match dest {
                        Downstream::Host(h) => CellDest::Host(h),
                        Downstream::Switch(nid, port) => CellDest::SwitchIn(nid, port),
                    };
                    self.cell_flights.push_back((t + d, dest, cell));
                }
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, t: u64, obs: &mut Observer<'_, T>) {
        // --- Hosts inject one cell per slot when they hold a credit.
        let d = self.cfg.link_delay;
        for h in 0..self.topo.hosts() {
            if self.host_credits[h] > 0 {
                if let Some(cell) = self.host_queues[h].pop_front() {
                    self.host_credits[h] -= 1;
                    let leaf = self.topo.leaf_of(h);
                    let port = self.topo.down_port_of(h);
                    self.cell_flights.push_back((
                        t + d,
                        CellDest::SwitchIn(NodeId::Leaf(leaf), port),
                        cell,
                    ));
                }
            } else if !self.host_queues[h].is_empty() {
                obs.credit_stall(self.topo.leaf_of(h), self.topo.down_port_of(h));
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            self.host_queues[a.src].push_back(cell);
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::{BernoulliUniform, Hotspot};

    fn run_fabric(cfg: FabricConfig, load: f64, seed: u64) -> EngineReport {
        let mut fab = FatTreeFabric::new(cfg);
        let mut tr = BernoulliUniform::new(fab.topology().hosts(), load, &SeedSequence::new(seed));
        fab.run(&mut tr, &EngineConfig::new(1_000, 8_000))
    }

    #[test]
    fn idle_fabric_stays_idle() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.0, 1);
        assert_eq!(r.injected, 0);
        assert_eq!(r.delivered, 0);
    }

    #[test]
    fn light_load_flows_lossless_in_order() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.2, 2);
        assert!((r.throughput - 0.2).abs() < 0.02, "thr {}", r.throughput);
        assert_eq!(r.reordered, 0, "per-flow order via stable spine hashing");
        assert!(r.max_queue_depth <= 6, "occ {}", r.max_queue_depth);
    }

    #[test]
    fn unloaded_latency_decomposes_into_hops() {
        // Inter-leaf: 1 (inject) + 4 links + 3 scheduling cycles = 4d+4;
        // intra-leaf (prob = (k/2−1)/(k²/2)·…≈1/8 incl. self): 2d+2.
        // At radix 8 the destination is under the same leaf with
        // probability 4/32, so the mix is 0.875·(4d+4) + 0.125·(2d+2).
        let d = 3u64;
        let r = run_fabric(FabricConfig::small(8, d), 0.02, 3);
        let inter = (4 * d + 4) as f64;
        let intra = (2 * d + 2) as f64;
        let expect = 0.875 * inter + 0.125 * intra;
        assert!(
            (r.mean_delay - expect).abs() < 1.5,
            "latency {} vs ≈{expect}",
            r.mean_delay
        );
    }

    #[test]
    fn moderate_load_sustains_throughput() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.7, 4);
        assert!(
            (r.throughput - 0.7).abs() < 0.04,
            "thr {} vs 0.7",
            r.throughput
        );
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn hotspot_overload_is_lossless() {
        // Every host sends half its traffic to host 0: output 0 is
        // overloaded, backpressure propagates, nothing is ever dropped
        // (the assertion inside the sim would panic on overflow).
        let cfg = FabricConfig::small(8, 2);
        let mut fab = FatTreeFabric::new(cfg);
        let hosts = fab.topology().hosts();
        let mut tr = Hotspot::new(hosts, 0.5, 0, 0.5, &SeedSequence::new(5));
        let r = fab.run(&mut tr, &EngineConfig::new(1_000, 8_000));
        assert_eq!(r.reordered, 0);
        assert!(
            r.max_queue_depth <= cfg.buffer_cells,
            "credits bound the buffers"
        );
        // The hot egress drains at its full line rate (1/hosts of the
        // aggregate); port-level backpressure lets congestion spread into
        // the shared buffers (tree saturation), so aggregate throughput
        // sits well below offered load — but strictly above the hot
        // port's own rate, and nothing is ever lost.
        let hot_rate = 1.0 / fab.topology().hosts() as f64;
        assert!(r.throughput > hot_rate, "throughput {}", r.throughput);
    }

    #[test]
    fn tiny_buffers_throttle_but_never_drop() {
        // Buffer below the credit RTT: goodput drops, losslessness holds.
        let mut cfg = FabricConfig::small(8, 4);
        cfg.buffer_cells = 2; // RTT is 2·4 = 8 slots
        let r = run_fabric(cfg, 0.9, 6);
        assert!(r.throughput < 0.6, "throttled: {}", r.throughput);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn rtt_sized_buffers_sustain_full_rate() {
        // Load chosen below the static-flow-hash imbalance point: with
        // k/2 = 4 uplinks per leaf and random per-flow spine hashing, the
        // worst uplink carries noticeably more than the average, so the
        // fabric saturates before the hosts do (cf. the ECMP-imbalance
        // literature). 0.72 keeps every link under 1.0 with margin.
        let mut cfg = FabricConfig::small(8, 4);
        cfg.buffer_cells = (2 * cfg.link_delay + 2) as usize;
        let r = run_fabric(cfg, 0.72, 7);
        assert!(
            (r.throughput - 0.72).abs() < 0.04,
            "thr {} at RTT-sized buffers",
            r.throughput
        );
    }

    #[test]
    fn engine_buffer_override_rearms_the_credit_loop() {
        // EngineConfig::with_buffer_cells reaches the fabric's credit
        // loops: a 2-cell override on an RTT=8 fabric throttles exactly
        // like building it with tiny buffers.
        let cfg = FabricConfig::small(8, 4);
        let mut fab = FatTreeFabric::new(cfg);
        let mut tr = BernoulliUniform::new(fab.topology().hosts(), 0.9, &SeedSequence::new(6));
        let r = fab.run(
            &mut tr,
            &EngineConfig::new(1_000, 8_000).with_buffer_cells(2),
        );
        assert!(r.throughput < 0.6, "throttled: {}", r.throughput);
        assert!(r.max_queue_depth <= 2, "occ {}", r.max_queue_depth);
    }

    #[test]
    fn placement_option1_adds_a_stage_of_latency() {
        let mut cfg3 = FabricConfig::small(8, 2);
        cfg3.placement = Placement::InputOnly;
        let mut cfg1 = cfg3;
        cfg1.placement = Placement::InputAndOutput;
        let r3 = run_fabric(cfg3, 0.1, 8);
        let r1 = run_fabric(cfg1, 0.1, 8);
        assert!(
            r1.mean_delay > r3.mean_delay + 2.0,
            "option 1 {} vs option 3 {}",
            r1.mean_delay,
            r3.mean_delay
        );
        assert_eq!(Placement::InputAndOutput.oeo_per_stage(), 2);
        assert_eq!(Placement::InputOnly.oeo_per_stage(), 1);
    }

    #[test]
    fn placement_option2_pays_control_rtt_per_stage() {
        let mut cfg3 = FabricConfig::small(8, 3);
        cfg3.placement = Placement::InputOnly;
        let mut cfg2 = cfg3;
        cfg2.placement = Placement::OutputOnly;
        let r3 = run_fabric(cfg3, 0.1, 9);
        let r2 = run_fabric(cfg2, 0.1, 9);
        // Each of the 3 stages adds ≈ 2·d of request/grant flight.
        assert!(
            r2.mean_delay > r3.mean_delay + 4.0,
            "option 2 {} vs option 3 {}",
            r2.mean_delay,
            r3.mean_delay
        );
    }

    #[test]
    fn fabric_is_deterministic() {
        let a = run_fabric(FabricConfig::small(8, 2), 0.5, 11);
        let b = run_fabric(FabricConfig::small(8, 2), 0.5, 11);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
