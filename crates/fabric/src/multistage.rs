//! Slotted simulation of a two-level fat-tree fabric built from
//! input-buffered switches with credit flow control — the architecture of
//! §IV with buffer-placement option 3 (and option 1 for the Fig. 2
//! comparison).
//!
//! Every switch is an input-buffered crossbar with its own independent
//! round-robin iterative scheduler (the multistage-scalability argument of
//! §IV: per-stage buffers let the schedulers run independently). The
//! inter-switch links carry fixed-size cells with a configurable flight
//! time; the downstream input buffers are finite and protected by a
//! credit loop with a deterministic RTT — the paper's scheduler-relayed
//! remote flow control (Fig. 4) travels on existing channels, so its
//! timing is exactly this credit loop. Losslessness is asserted, not just
//! measured: a cell arriving at a full buffer panics the simulation.
//!
//! The fabric runs on the shared engine through the `CellSwitch` hooks
//! (link/credit arrivals and switch matchings in `arbitrate`, host
//! injection in `deliver`, new traffic in `admit`) and reports the
//! unified [`EngineReport`]: end-to-end latency lands in
//! `mean_delay`/`delay_hist`, peak input-buffer occupancy in
//! `max_queue_depth`. Host credit stalls are emitted as
//! `TraceEvent::CreditStall` for trace consumers.

use crate::expand::{ExpandedFabric, Peer};
use crate::ids::{EntityId, HostId, SwitchId};
use crate::spec::{TopologyError, TopologySpec};
use crate::topology::TwoLevelFatTree;
use osmosis_fdl::FdlBufferPlane;
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::audit::{CreditLedger, DropReason};
use osmosis_sim::buffer::{BufferLossReason, BufferPlane, BufferStats, ElectronicVoq};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_switch::driven::{run_switch, CellSwitch};
use osmosis_switch::Cell;
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Buffer placement per stage (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Option 1: buffers at inputs *and* outputs of every stage. Simple
    /// flow control, but twice the OEO conversions.
    InputAndOutput,
    /// Option 2: output buffers only — the request/grant protocol crosses
    /// the long upstream cable, adding a round trip to every scheduling
    /// decision.
    OutputOnly,
    /// Option 3 (the paper's choice): input buffers only; request/grant
    /// stays inside the switch, the buffers absorb the upstream RTT.
    InputOnly,
}

impl Placement {
    /// OEO conversion points per stage (the §IV.A cost argument).
    pub fn oeo_per_stage(self) -> u32 {
        match self {
            Placement::InputAndOutput => 2,
            Placement::OutputOnly | Placement::InputOnly => 1,
        }
    }
}

/// The technology realizing each switch's per-stage input buffers — the
/// fourth axis the FDL study adds to the Fig. 2 placement argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferTech {
    /// Electronic virtual output queues (the paper's premise: every
    /// buffered stage pays an OEO conversion). Lossless by credit flow
    /// control; the default, proven zero-cost against the pinned
    /// fingerprints.
    Electronic,
    /// Emulated optical fiber-delay-line queues (`osmosis-fdl`): cells
    /// stay in fiber, recirculating through a Tang-style delay-line
    /// bank per input. FIFO per input (head-of-line blocking across
    /// outputs), typed losses under delay-line faults. Supported with
    /// [`Placement::InputOnly`] only.
    Fdl,
}

impl BufferTech {
    /// Short stable label (campaign axes, bench tables, JSON).
    pub fn name(self) -> &'static str {
        match self {
            BufferTech::Electronic => "electronic",
            BufferTech::Fdl => "fdl",
        }
    }
}

/// Fabric configuration.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Switch radix (two-level fat tree: k²/2 hosts).
    pub radix: usize,
    /// One-way link flight time in cell slots (host↔leaf and leaf↔spine).
    pub link_delay: u64,
    /// Input-buffer capacity per switch input port, in cells. The credit
    /// loop RTT is 2·link_delay(+1); smaller buffers throttle, but can
    /// never lose a cell.
    pub buffer_cells: usize,
    /// Matching iterations per switch per slot.
    pub iterations: usize,
    /// Buffer placement (Fig. 2 option).
    pub placement: Placement,
    /// Input-buffer technology: electronic VOQs (default) or emulated
    /// optical fiber-delay-line queues.
    pub buffer_tech: BufferTech,
}

impl FabricConfig {
    /// A small OSMOSIS-style fabric: radix-8 (32 hosts), 2-slot links,
    /// buffers sized for the credit RTT, option 3, electronic buffers.
    pub fn small(radix: usize, link_delay: u64) -> Self {
        FabricConfig {
            radix,
            link_delay,
            buffer_cells: (2 * link_delay + 2) as usize,
            iterations: 3,
            placement: Placement::InputOnly,
            buffer_tech: BufferTech::Electronic,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeId {
    Leaf(usize),
    Spine(usize),
}

/// Where a switch output port leads.
#[derive(Debug, Clone, Copy)]
enum Downstream {
    /// A host NIC (sink; drains one cell per slot by construction).
    Host(usize),
    /// Another switch's input port (credit-controlled).
    Switch(NodeId, usize),
}

/// Where a switch input port receives from (for credit returns).
#[derive(Debug, Clone, Copy)]
enum Upstream {
    Host(usize),
    Switch(NodeId, usize),
}

struct SwitchNode {
    /// Per-switch input buffering behind the pluggable plane seam:
    /// electronic VOQs (the pre-seam semantics, bit-identical) or an
    /// emulated optical FDL queue per input. Each stored entry carries
    /// the slot at which the cell becomes schedulable (later than its
    /// arrival only under placement option 2, where requests cross the
    /// long cable to reach the scheduler).
    buffers: Box<dyn BufferPlane<Cell>>,
    /// Option-1 egress buffers.
    egress: Vec<VecDeque<Cell>>,
    /// Send credits per output port (usize::MAX for host sinks).
    credits: Vec<usize>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    downstream: Vec<Downstream>,
    upstream: Vec<Upstream>,
}

impl SwitchNode {
    fn new(
        ports: usize,
        downstream: Vec<Downstream>,
        upstream: Vec<Upstream>,
        buffer: usize,
        tech: BufferTech,
    ) -> Self {
        let credits = downstream
            .iter()
            .map(|d| match d {
                Downstream::Host(_) => usize::MAX,
                Downstream::Switch(..) => buffer,
            })
            .collect();
        let buffers: Box<dyn BufferPlane<Cell>> = match tech {
            BufferTech::Electronic => Box::new(ElectronicVoq::new(ports)),
            // A balanced bank of `buffer` delay lines per input emulates
            // a queue of exactly `buffer` cells — the same capacity the
            // credit loop protects.
            BufferTech::Fdl => Box::new(FdlBufferPlane::new(ports, buffer)),
        };
        SwitchNode {
            buffers,
            egress: (0..ports).map(|_| VecDeque::new()).collect(),
            credits,
            grant_arb: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
            accept_arb: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
            downstream,
            upstream,
        }
    }

    fn reset_credits(&mut self, buffer: usize) {
        for (c, d) in self.credits.iter_mut().zip(self.downstream.iter()) {
            *c = match d {
                Downstream::Host(_) => usize::MAX,
                Downstream::Switch(..) => buffer,
            };
        }
    }
}

/// The fabric simulator.
pub struct FatTreeFabric {
    cfg: FabricConfig,
    topo: TwoLevelFatTree,
    /// The expanded graph the wiring tables and host attachments were
    /// compiled from (stage 0 = leaves, stage 1 = spines, in id order).
    graph: ExpandedFabric,
    leaves: Vec<SwitchNode>,
    spines: Vec<SwitchNode>,
    /// Host injection queues (the source VOQs; unbounded).
    host_queues: Vec<VecDeque<Cell>>,
    /// Credits a host holds toward its leaf input buffer.
    host_credits: Vec<usize>,
    /// Cells in flight: (arrival slot, destination node+port or host).
    cell_flights: VecDeque<(u64, CellDest, Cell)>,
    /// Credits in flight back to (node, output port) or host.
    credit_flights: VecDeque<(u64, CreditDest)>,
    /// Per-spine health under an attached fault plane (all true without
    /// one). A dead spine is a dead wavelength plane: leaves stop
    /// granting toward it and new flows re-hash onto the survivors.
    spine_ok: Vec<bool>,
    /// Cells corrupted on a link, re-arriving after the hop-by-hop NACK +
    /// resend round trip (constant 2·link_delay, so this queue stays
    /// FIFO-by-due like `cell_flights`).
    retransmit_flights: VecDeque<(u64, CellDest, Cell)>,
    /// Credits whose return was lost, recovered by the periodic credit
    /// audit (constant link_delay + resync period; FIFO-by-due).
    resync_credit_flights: VecDeque<(u64, CreditDest)>,
    /// Per-link go-back-N stall: until this slot, every arrival on the
    /// link is discarded and resent behind the corrupted cell, keeping
    /// per-link (hence per-flow) delivery order across retransmissions.
    link_stall: Vec<u64>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    node_ids: Vec<NodeId>,
    requesters: BitSet,
    grants_to_input: Vec<BitSet>,
    /// Per-node matching scratch, sized to the widest node and cleared
    /// for every (node, slot) pass.
    in_matched: Vec<bool>,
    out_matched: Vec<bool>,
    matched_pairs: Vec<(usize, usize)>,
}

#[derive(Debug, Clone, Copy)]
enum CellDest {
    SwitchIn(NodeId, usize),
    Host(usize),
}

#[derive(Debug, Clone, Copy)]
enum CreditDest {
    SwitchOut(NodeId, usize),
    Host(usize),
}

impl FatTreeFabric {
    /// Build the fabric. Panics on an invalid configuration; use
    /// [`try_new`](Self::try_new) where the configuration comes from
    /// external input (sweep grids, checkpoints, CLI flags).
    pub fn new(cfg: FabricConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(fab) => fab,
            // lint:allow(panic-free): documented panic contract of the
            // infallible constructor; `try_new` is the checked form
            Err(e) => panic!("{e}"),
        }
    }

    /// Build the fabric, rejecting invalid configurations with a typed
    /// error instead of a panic. The wiring tables are read off the
    /// compiled expansion of the equivalent [`TopologySpec::two_level`]
    /// spec, not recomputed from closed forms — the simulator consumes
    /// exactly the graph the topology compiler produces.
    pub fn try_new(cfg: FabricConfig) -> Result<Self, TopologyError> {
        // FDL buffering models the paper's option 3 only: the delay-line
        // bank quantizes schedulability to its shortest (one-slot) line,
        // which matches the local request/grant cycle of input-only
        // placement but cannot represent option 2's per-cell control RTT
        // or option 1's egress stage.
        if cfg.buffer_tech == BufferTech::Fdl && cfg.placement != Placement::InputOnly {
            return Err(TopologyError::UnsupportedPlacement {
                placement: cfg.placement,
            });
        }
        let spec = TopologySpec {
            placement: cfg.placement,
            iterations: cfg.iterations,
            ..TopologySpec::two_level(cfg.radix)
                .with_link_delay(cfg.link_delay)
                .with_buffer_cells(cfg.buffer_cells)
        };
        let graph = ExpandedFabric::expand(spec)?;
        let topo = TwoLevelFatTree::try_new(cfg.radix)?;
        let k = cfg.radix;
        let leaf_count = topo.leaves();

        // Switch ids are stage-major: 0..k leaves, then the spines.
        let node_of = |sw: SwitchId| -> NodeId {
            if sw.index() < leaf_count {
                NodeId::Leaf(sw.index())
            } else {
                NodeId::Spine(sw.index() - leaf_count)
            }
        };
        let build = |sw: SwitchId| -> SwitchNode {
            let mut downstream = Vec::with_capacity(k);
            let mut upstream = Vec::with_capacity(k);
            for local in 0..k {
                match graph.ports[graph.port_id(sw, local as u32)].peer {
                    Peer::Host(h) => {
                        downstream.push(Downstream::Host(h.index()));
                        upstream.push(Upstream::Host(h.index()));
                    }
                    // Cables are full duplex: the far port both receives
                    // our cells and returns our credits.
                    Peer::Port(far) => {
                        let far = graph.ports[far];
                        downstream
                            .push(Downstream::Switch(node_of(far.switch), far.local as usize));
                        upstream.push(Upstream::Switch(node_of(far.switch), far.local as usize));
                    }
                    // lint:allow(panic-free): a 2-plane 2-level expansion
                    // uses every port; an unconnected one is a compiler bug
                    Peer::Unconnected => panic!("unwired port in a two-level expansion"),
                }
            }
            SwitchNode::new(k, downstream, upstream, cfg.buffer_cells, cfg.buffer_tech)
        };

        let leaves = (0..leaf_count)
            .map(|l| build(SwitchId::from_index(l)))
            .collect();
        let spines = (0..topo.spines())
            .map(|s| build(SwitchId::from_index(leaf_count + s)))
            .collect();

        let node_ids = (0..topo.leaves())
            .map(NodeId::Leaf)
            .chain((0..topo.spines()).map(NodeId::Spine))
            .collect();

        Ok(FatTreeFabric {
            cfg,
            topo,
            graph,
            leaves,
            spines,
            host_queues: (0..topo.hosts()).map(|_| VecDeque::new()).collect(),
            host_credits: vec![cfg.buffer_cells; topo.hosts()],
            cell_flights: VecDeque::new(),
            credit_flights: VecDeque::new(),
            spine_ok: vec![true; topo.spines()],
            retransmit_flights: VecDeque::new(),
            resync_credit_flights: VecDeque::new(),
            link_stall: vec![0; topo.leaves() + topo.spines() + topo.hosts()],
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            node_ids,
            requesters: BitSet::new(k),
            grants_to_input: (0..k).map(|_| BitSet::new(k)).collect(),
            in_matched: vec![false; k],
            out_matched: vec![false; k],
            matched_pairs: Vec::with_capacity(k),
        })
    }

    /// Topology descriptor.
    pub fn topology(&self) -> TwoLevelFatTree {
        self.topo
    }

    /// The expanded graph the simulator was compiled from.
    pub fn expanded(&self) -> &ExpandedFabric {
        &self.graph
    }

    fn node(&mut self, id: NodeId) -> &mut SwitchNode {
        match id {
            NodeId::Leaf(l) => &mut self.leaves[l],
            NodeId::Spine(s) => &mut self.spines[s],
        }
    }

    /// Output port a cell takes at the given switch: the expanded
    /// graph's host attachment drives every descent; the ascent picks a
    /// spine through [`pick_spine`](Self::pick_spine) so a dead plane
    /// re-hashes flows (the healthy case agrees with
    /// [`ExpandedFabric::route`], which the tests pin).
    fn route(&self, id: NodeId, cell: &Cell) -> usize {
        let (dst_sw, dst_port) = self.graph.host_attach(HostId::from_index(cell.dst));
        match id {
            NodeId::Leaf(l) => {
                if dst_sw.index() == l {
                    dst_port as usize
                } else {
                    self.topo.up_port(self.pick_spine(cell.src, cell.dst))
                }
            }
            // Spine port l is cabled to leaf l: descend to the
            // destination's edge switch.
            NodeId::Spine(_) => dst_sw.index(),
        }
    }

    /// The spine carrying (src, dst): the stable flow hash, re-hashed
    /// across the surviving planes when the hashed one is down. The
    /// second-level hash uses a different key ordering so a dead plane's
    /// flows spread over all survivors instead of piling onto one
    /// neighbour. With every plane dead the cell stalls (losslessly)
    /// toward its nominal spine until one heals.
    fn pick_spine(&self, src: usize, dst: usize) -> usize {
        let s0 = self.topo.spine_of_flow(src, dst);
        if self.spine_ok[s0] {
            return s0;
        }
        let healthy = self.spine_ok.iter().filter(|&&ok| ok).count();
        if healthy == 0 {
            return s0;
        }
        let pick = self.topo.spine_of_flow(dst + self.topo.hosts(), src) % healthy;
        self.spine_ok
            .iter()
            .enumerate()
            .filter(|&(_, &ok)| ok)
            .nth(pick)
            .map(|(s, _)| s)
            // pick < healthy by construction; fall back to the nominal
            // spine (lossless stall) rather than panic if that ever
            // stops holding.
            .unwrap_or(s0)
    }

    /// Global node index: leaves first, then spines (the fault plane's
    /// and the audit plane's node keying).
    fn node_index(&self, id: NodeId) -> usize {
        match id {
            NodeId::Leaf(l) => l,
            NodeId::Spine(s) => self.topo.leaves() + s,
        }
    }

    /// Snapshot every credit-controlled link's ledger for the audit
    /// plane. Taken at the top of `arbitrate`, where the conservation
    /// sum is quiescent: every state transition (credit consumed ↔ cell
    /// in flight ↔ buffer occupancy ↔ credit in flight) happens
    /// atomically inside the arbitrate/deliver phases.
    fn report_credit_ledgers<T: TraceSink>(&mut self, obs: &mut Observer<'_, T>) {
        use std::collections::BTreeMap;
        // One pass over the flight queues, binned by receiving link.
        let mut cells_to: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for &(_, dest, _) in self
            .cell_flights
            .iter()
            .chain(self.retransmit_flights.iter())
        {
            if let CellDest::SwitchIn(id, p) = dest {
                *cells_to.entry((self.node_index(id), p)).or_insert(0) += 1;
            }
        }
        let mut credits_to_out: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        let mut credits_to_host: BTreeMap<usize, u64> = BTreeMap::new();
        for &(_, dest) in self
            .credit_flights
            .iter()
            .chain(self.resync_credit_flights.iter())
        {
            match dest {
                CreditDest::SwitchOut(id, port) => {
                    *credits_to_out
                        .entry((self.node_index(id), port))
                        .or_insert(0) += 1;
                }
                CreditDest::Host(h) => *credits_to_host.entry(h).or_insert(0) += 1,
            }
        }
        let capacity = self.cfg.buffer_cells as u64;
        let ports = self.cfg.radix;
        for idx in 0..self.node_ids.len() {
            let id = self.node_ids[idx];
            for p in 0..ports {
                let (upstream, occupancy) = {
                    let node = match id {
                        NodeId::Leaf(l) => &self.leaves[l],
                        NodeId::Spine(s) => &self.spines[s],
                    };
                    (node.upstream[p], node.buffers.occupancy(p) as u64)
                };
                let (held, credits_in_flight) = match upstream {
                    Upstream::Host(h) => (
                        self.host_credits[h] as u64,
                        credits_to_host.get(&h).copied().unwrap_or(0),
                    ),
                    Upstream::Switch(uid, uo) => {
                        let up = match uid {
                            NodeId::Leaf(l) => &self.leaves[l],
                            NodeId::Spine(s) => &self.spines[s],
                        };
                        if up.credits[uo] == usize::MAX {
                            // Host-facing output: not credit-controlled.
                            continue;
                        }
                        (
                            up.credits[uo] as u64,
                            credits_to_out
                                .get(&(self.node_index(uid), uo))
                                .copied()
                                .unwrap_or(0),
                        )
                    }
                };
                let cells_in_flight = cells_to.get(&(idx, p)).copied().unwrap_or(0);
                obs.audit_credit_link(
                    idx,
                    p,
                    CreditLedger {
                        held,
                        in_flight: credits_in_flight + cells_in_flight,
                        occupancy,
                        capacity,
                    },
                );
            }
        }
    }

    /// Snapshot every FDL queue's cell-conservation ledger for the audit
    /// plane (`pushed == popped + dropped + resident` per input queue).
    /// Queue keying is `node_index · radix + input`. Electronic planes
    /// keep no per-queue ledgers and report nothing here, so audited
    /// electronic runs stay bit-identical to the pre-seam code.
    fn report_fdl_ledgers<T: TraceSink>(&mut self, obs: &mut Observer<'_, T>) {
        let ports = self.cfg.radix;
        for idx in 0..self.node_ids.len() {
            let id = self.node_ids[idx];
            for p in 0..ports {
                let ledger = {
                    let node = match id {
                        NodeId::Leaf(l) => &self.leaves[l],
                        NodeId::Spine(s) => &self.spines[s],
                    };
                    node.buffers.queue_ledger(p)
                };
                if let Some((pushed, popped, dropped, resident)) = ledger {
                    obs.audit_fdl_ledger(idx * ports + p, pushed, popped, dropped, resident);
                }
            }
        }
    }

    /// The link index a cell traverses to reach `dest` — the receiving
    /// endpoint's global index (leaves, then spines, then hosts) — used
    /// as the `FaultView::cell_corrupted` key.
    fn link_of(&self, dest: CellDest) -> usize {
        match dest {
            CellDest::SwitchIn(NodeId::Leaf(l), _) => l,
            CellDest::SwitchIn(NodeId::Spine(s), _) => self.topo.leaves() + s,
            CellDest::Host(h) => self.topo.leaves() + self.topo.spines() + h,
        }
    }

    /// Cells currently inside the fabric (host queues, switch buffers,
    /// links, retransmission round trips). With `injected == delivered +
    /// resident_cells()` after a faulted run, no cell was lost.
    pub fn resident_cells(&self) -> u64 {
        let mut n = self.cell_flights.len() + self.retransmit_flights.len();
        n += self.host_queues.iter().map(|q| q.len()).sum::<usize>();
        for node in self.leaves.iter().chain(self.spines.iter()) {
            n += node.buffers.total();
            n += node.egress.iter().map(|q| q.len()).sum::<usize>();
        }
        n as u64
    }

    /// Run traffic through the fabric on the shared engine.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }

    /// Run traffic under a fault plane. A vacuous view (empty plan)
    /// leaves the run bit-identical to [`run`](Self::run).
    pub fn run_faulted(
        &mut self,
        traffic: &mut dyn TrafficGen,
        cfg: &EngineConfig,
        faults: &mut dyn osmosis_sim::FaultView,
    ) -> EngineReport {
        osmosis_switch::run_switch_faulted(self, traffic, cfg, faults)
    }
}

impl CellSwitch for FatTreeFabric {
    fn ports(&self) -> usize {
        self.topo.hosts()
    }

    fn configure(&mut self, cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
        self.spine_ok.iter_mut().for_each(|ok| *ok = true);
        self.retransmit_flights.clear();
        self.resync_credit_flights.clear();
        self.link_stall.iter_mut().for_each(|s| *s = 0);
        // An engine-level buffer override re-arms every credit loop; only
        // meaningful on a fabric that has not run yet (queues empty).
        if let Some(b) = cfg.buffer_cells {
            if b != self.cfg.buffer_cells {
                assert!(b >= 1);
                self.cfg.buffer_cells = b;
                for node in self.leaves.iter_mut().chain(self.spines.iter_mut()) {
                    node.reset_credits(b);
                    node.buffers.reconfigure(b);
                }
                self.host_credits.iter_mut().for_each(|c| *c = b);
            }
        }
    }

    fn arbitrate<T: TraceSink>(&mut self, t: u64, obs: &mut Observer<'_, T>) {
        let d = self.cfg.link_delay;
        let ports = self.cfg.radix;
        let half = ports / 2;
        let buffer_cells = self.cfg.buffer_cells;
        let option2_extra = if self.cfg.placement == Placement::OutputOnly {
            2 * d
        } else {
            0
        };
        let faults_on = obs.faults_attached();
        // Credit-audit period: a lost credit is recovered after the
        // downstream's next occupancy audit (a few credit RTTs), not
        // instantly — the degraded mode throttles, but never deadlocks.
        let resync = 4 * (2 * d + 1);
        // The invariant auditor sees every credit loop's ledger here, at
        // the top of the slot, where the conservation sum is quiescent.
        if obs.audit_attached() {
            self.report_credit_ledgers(obs);
            if self.cfg.buffer_tech == BufferTech::Fdl {
                self.report_fdl_ledgers(obs);
            }
        }
        if faults_on {
            for s in 0..self.spine_ok.len() {
                self.spine_ok[s] = !obs.fault_plane_down(s);
            }
            // Delay-line health. The fault plane keys lines globally as
            // (node_index · radix + input) · lines_per_queue + local; the
            // plane itself uses the node-local index. A dead line accepts
            // no new cells (its contents still emerge), so the affected
            // input runs at reduced guaranteed capacity.
            if self.cfg.buffer_tech == BufferTech::Fdl {
                for idx in 0..self.node_ids.len() {
                    let id = self.node_ids[idx];
                    let lpq = self.node(id).buffers.lines_per_queue();
                    for p in 0..ports {
                        for l in 0..lpq {
                            let dead = obs.fault_delay_line_dead((idx * ports + p) * lpq + l);
                            self.node(id).buffers.set_line_dead(p * lpq + l, dead);
                        }
                    }
                }
            }
        }
        // Start-of-slot buffer tick: delay-line emergences become visible
        // before this slot's arrivals and matching (no-op for electronic
        // planes).
        for idx in 0..self.node_ids.len() {
            let id = self.node_ids[idx];
            self.node(id).buffers.tick(t);
        }

        // --- Cell arrivals from links. The retransmission path drains
        // first: a resent cell is older than anything still in the
        // primary flight queue for the same link, and go-back-N order
        // requires it to be accepted first.
        for pass in 0..2 {
            loop {
                let popped = {
                    let q = if pass == 0 {
                        &mut self.retransmit_flights
                    } else {
                        &mut self.cell_flights
                    };
                    if q.front().is_some_and(|&(at, _, _)| at == t) {
                        q.pop_front()
                    } else {
                        None
                    }
                };
                let Some((_, dest, cell)) = popped else { break };
                if faults_on {
                    let link = self.link_of(dest);
                    if t < self.link_stall[link] {
                        // Go-back-N: a predecessor on this link is mid
                        // retransmission, so this cell is out of sequence
                        // at the receiver — discard and resend it behind
                        // the predecessor, extending the stall so cells
                        // behind *it* queue up in order too.
                        obs.cell_retransmitted(link);
                        self.link_stall[link] = t + 2 * d;
                        self.retransmit_flights.push_back((t + 2 * d, dest, cell));
                        continue;
                    }
                    if obs.fault_cell_corrupted(link) {
                        // Detected-uncorrectable arrival: NACK upstream
                        // and resend — one extra link RTT, no loss. The
                        // sender's credit stays consumed, so buffer
                        // accounting holds across the round trip.
                        obs.cell_retransmitted(link);
                        self.link_stall[link] = t + 2 * d;
                        self.retransmit_flights.push_back((t + 2 * d, dest, cell));
                        continue;
                    }
                }
                match dest {
                    CellDest::Host(h) => {
                        debug_assert_eq!(cell.dst, h);
                        self.checker.record(cell.src, cell.dst, cell.seq);
                        obs.cell_delivered_flow(h, cell.inject_slot, cell.src, cell.seq);
                    }
                    CellDest::SwitchIn(id, port) => {
                        let out = self.route(id, &cell);
                        let node = self.node(id);
                        // A cell arriving in slot t is schedulable at t+1
                        // (the local request/grant cycle); option 2 adds a
                        // control RTT on top.
                        node.buffers.push(t, port, out, t + 1 + option2_extra, cell);
                        let occ = node.buffers.occupancy(port);
                        assert!(
                            occ <= buffer_cells,
                            "input buffer overflow at {id:?} port {port}: \
                             credit flow control violated"
                        );
                        obs.note_queue_depth(occ);
                    }
                }
            }
        }

        // --- Credit returns (normal loop, then audit-recovered credits).
        while let Some(&(at, dest)) = self.credit_flights.front() {
            if at != t {
                break;
            }
            self.credit_flights.pop_front();
            match dest {
                CreditDest::Host(h) => self.host_credits[h] += 1,
                CreditDest::SwitchOut(id, port) => {
                    let node = self.node(id);
                    node.credits[port] += 1;
                }
            }
        }
        while let Some(&(at, dest)) = self.resync_credit_flights.front() {
            if at != t {
                break;
            }
            self.resync_credit_flights.pop_front();
            match dest {
                CreditDest::Host(h) => self.host_credits[h] += 1,
                CreditDest::SwitchOut(id, port) => {
                    let node = self.node(id);
                    node.credits[port] += 1;
                }
            }
        }

        // --- Each switch computes a matching and forwards cells.
        for idx in 0..self.node_ids.len() {
            let id = self.node_ids[idx];
            // A dead wavelength plane switches nothing: its buffered
            // cells stall (losslessly — upstream credits stay consumed)
            // until the plane heals. Leaves stop feeding it below.
            if faults_on {
                if let NodeId::Spine(s) = id {
                    if !self.spine_ok[s] {
                        continue;
                    }
                }
            }
            // Option 1: egress buffers transmit first (a cell matched in
            // slot t departs the stage in slot t+1), gated by downstream
            // credits.
            if self.cfg.placement == Placement::InputAndOutput {
                for o in 0..ports {
                    let (send, dest) = {
                        let node = match id {
                            NodeId::Leaf(l) => &mut self.leaves[l],
                            NodeId::Spine(s) => &mut self.spines[s],
                        };
                        let is_switch = matches!(node.downstream[o], Downstream::Switch(..));
                        if is_switch && node.credits[o] == 0 {
                            continue;
                        }
                        let Some(cell) = node.egress[o].pop_front() else {
                            continue;
                        };
                        if is_switch {
                            node.credits[o] -= 1;
                        }
                        (cell, node.downstream[o])
                    };
                    let dest = match dest {
                        Downstream::Host(h) => CellDest::Host(h),
                        Downstream::Switch(nid, port) => CellDest::SwitchIn(nid, port),
                    };
                    self.cell_flights.push_back((t + d, dest, send));
                }
            }

            // Matching (iterative RR grant/accept) on the node.
            self.matched_pairs.clear();
            {
                let needs_credit_at_match = self.cfg.placement != Placement::InputAndOutput;
                let node = match id {
                    NodeId::Leaf(l) => &mut self.leaves[l],
                    NodeId::Spine(s) => &mut self.spines[s],
                };
                self.in_matched.fill(false);
                self.out_matched.fill(false);
                for _ in 0..self.cfg.iterations {
                    for g in self.grants_to_input.iter_mut() {
                        g.clear_all();
                    }
                    let mut any = false;
                    for o in 0..ports {
                        if self.out_matched[o] {
                            continue;
                        }
                        // Leaf uplinks toward a dead spine are masked out
                        // of arbitration; queued cells wait for repair,
                        // new flows were already re-hashed at routing.
                        if faults_on
                            && matches!(id, NodeId::Leaf(_))
                            && o >= half
                            && !self.spine_ok[o - half]
                        {
                            continue;
                        }
                        if needs_credit_at_match && node.credits[o] == 0 {
                            continue;
                        }
                        self.requesters.clear_all();
                        let mut have = false;
                        for i in 0..ports {
                            if self.in_matched[i] {
                                continue;
                            }
                            if node.buffers.ready(t, i, o) {
                                self.requesters.set(i);
                                have = true;
                            }
                        }
                        if !have {
                            continue;
                        }
                        if let Some(i) = node.grant_arb[o].arbitrate(&self.requesters) {
                            self.grants_to_input[i].set(o);
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                    for i in 0..ports {
                        if self.in_matched[i] || self.grants_to_input[i].is_empty() {
                            continue;
                        }
                        if let Some(o) = node.accept_arb[i].arbitrate(&self.grants_to_input[i]) {
                            self.in_matched[i] = true;
                            self.out_matched[o] = true;
                            node.grant_arb[o].advance_past(i);
                            node.accept_arb[i].advance_past(o);
                            self.matched_pairs.push((i, o));
                        }
                    }
                }
            }

            // Execute the matching: move cells out of the input buffers,
            // return credits upstream.
            for m in 0..self.matched_pairs.len() {
                let (i, o) = self.matched_pairs[m];
                let (cell, upstream, to_egress, dest) = {
                    let node = match id {
                        NodeId::Leaf(l) => &mut self.leaves[l],
                        NodeId::Spine(s) => &mut self.spines[s],
                    };
                    let mut cell = node
                        .buffers
                        .pop(t, i, o)
                        // lint:allow(panic-free): the per-node matching
                        // only grants (i, o) pairs the plane reported
                        // ready this slot
                        .expect("matched pair without a cell");
                    cell.grant_slot = t;
                    let to_egress = self.cfg.placement == Placement::InputAndOutput;
                    if !to_egress {
                        debug_assert!(node.credits[o] >= 1);
                        if let Downstream::Switch(..) = node.downstream[o] {
                            node.credits[o] -= 1;
                        }
                    }
                    (cell, node.upstream[i], to_egress, node.downstream[o])
                };
                // Credit back to whoever feeds this input port. Under a
                // credit-drop fault the return is lost on the wire and
                // recovered later by the periodic credit audit.
                let credit_dest = match upstream {
                    Upstream::Host(h) => CreditDest::Host(h),
                    Upstream::Switch(up_id, up_port) => CreditDest::SwitchOut(up_id, up_port),
                };
                let node_index = match id {
                    NodeId::Leaf(l) => l,
                    NodeId::Spine(s) => self.topo.leaves() + s,
                };
                if faults_on && obs.fault_credit_dropped(node_index, i) {
                    self.resync_credit_flights
                        .push_back((t + d + resync, credit_dest));
                } else {
                    self.credit_flights.push_back((t + d, credit_dest));
                }
                if to_egress {
                    let node = match id {
                        NodeId::Leaf(l) => &mut self.leaves[l],
                        NodeId::Spine(s) => &mut self.spines[s],
                    };
                    node.egress[o].push_back(cell);
                } else {
                    let dest = match dest {
                        Downstream::Host(h) => CellDest::Host(h),
                        Downstream::Switch(nid, port) => CellDest::SwitchIn(nid, port),
                    };
                    self.cell_flights.push_back((t + d, dest, cell));
                }
            }
        }

        // --- End of slot: each plane commits unserved emerged cells and
        // new arrivals back into storage (recirculation; no-op for
        // electronic planes) and surfaces what it could not keep. A lost
        // cell consumed its upstream credit at admission, so the credit
        // returns exactly as a served cell's would — subject to the same
        // credit-drop fault and audit resync.
        for idx in 0..self.node_ids.len() {
            let id = self.node_ids[idx];
            let losses = {
                let node = self.node(id);
                node.buffers.settle(t);
                node.buffers.take_losses()
            };
            for loss in losses {
                let upstream = match id {
                    NodeId::Leaf(l) => self.leaves[l].upstream[loss.input],
                    NodeId::Spine(s) => self.spines[s].upstream[loss.input],
                };
                let credit_dest = match upstream {
                    Upstream::Host(h) => CreditDest::Host(h),
                    Upstream::Switch(up_id, up_port) => CreditDest::SwitchOut(up_id, up_port),
                };
                if faults_on && obs.fault_credit_dropped(idx, loss.input) {
                    self.resync_credit_flights
                        .push_back((t + d + resync, credit_dest));
                } else {
                    self.credit_flights.push_back((t + d, credit_dest));
                }
                let reason = match loss.reason {
                    BufferLossReason::AdmissionFull => DropReason::BufferFull,
                    BufferLossReason::DeadLine => DropReason::FaultLoss,
                    BufferLossReason::NoFeasibleLine => DropReason::Other,
                };
                obs.cell_dropped_for(idx * ports + loss.input, reason);
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, t: u64, obs: &mut Observer<'_, T>) {
        // --- Hosts inject one cell per slot when they hold a credit.
        let d = self.cfg.link_delay;
        for h in 0..self.topo.hosts() {
            let (leaf, port) = self.graph.host_attach(HostId::from_index(h));
            if self.host_credits[h] > 0 {
                if let Some(cell) = self.host_queues[h].pop_front() {
                    self.host_credits[h] -= 1;
                    self.cell_flights.push_back((
                        t + d,
                        CellDest::SwitchIn(NodeId::Leaf(leaf.index()), port as usize),
                        cell,
                    ));
                }
            } else if !self.host_queues[h].is_empty() {
                obs.credit_stall(leaf.index(), port as usize);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            self.host_queues[a.src].push_back(cell);
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
        // FDL-only buffer-plane extras: electronic runs stay extra-free
        // so the pinned fingerprints are untouched by the plane seam.
        if self.cfg.buffer_tech == BufferTech::Fdl {
            let mut total = BufferStats::default();
            for node in self.leaves.iter().chain(self.spines.iter()) {
                let s = node.buffers.stats();
                total.dropped += s.dropped;
                total.dropped_admission += s.dropped_admission;
                total.dropped_dead_line += s.dropped_dead_line;
                total.recirculations += s.recirculations;
                total.underflow_stalls += s.underflow_stalls;
            }
            report.set_extra("fdl_drops_total", total.dropped as f64);
            report.set_extra("fdl_drops_admission", total.dropped_admission as f64);
            report.set_extra("fdl_drops_dead_line", total.dropped_dead_line as f64);
            report.set_extra("fdl_recirculations", total.recirculations as f64);
            report.set_extra("fdl_underflow_stalls", total.underflow_stalls as f64);
        }
    }

    fn resident_cells(&self) -> Option<u64> {
        Some(FatTreeFabric::resident_cells(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::{BernoulliUniform, Hotspot};

    fn run_fabric(cfg: FabricConfig, load: f64, seed: u64) -> EngineReport {
        let mut fab = FatTreeFabric::new(cfg);
        let mut tr = BernoulliUniform::new(fab.topology().hosts(), load, &SeedSequence::new(seed));
        fab.run(&mut tr, &EngineConfig::new(1_000, 8_000))
    }

    #[test]
    fn expansion_wiring_matches_hand_built_rule() {
        // The tables compiled from the expanded graph must equal the §V
        // closed forms: leaf l port p < k/2 faces host l·(k/2)+p; up
        // port k/2+s reaches spine s at input l; spine port l mirrors
        // leaf l's up port.
        let fab = FatTreeFabric::new(FabricConfig::small(8, 2));
        let (k, half) = (8usize, 4usize);
        for l in 0..fab.topo.leaves() {
            for p in 0..k {
                match fab.leaves[l].downstream[p] {
                    Downstream::Host(h) if p < half => assert_eq!(h, l * half + p),
                    Downstream::Switch(NodeId::Spine(s), port) if p >= half => {
                        assert_eq!(s, p - half);
                        assert_eq!(port, l);
                    }
                    other => panic!("leaf {l} port {p}: {other:?}"),
                }
                match fab.leaves[l].upstream[p] {
                    Upstream::Host(h) if p < half => assert_eq!(h, l * half + p),
                    Upstream::Switch(NodeId::Spine(s), port) if p >= half => {
                        assert_eq!(s, p - half);
                        assert_eq!(port, l);
                    }
                    other => panic!("leaf {l} port {p}: {other:?}"),
                }
            }
        }
        for s in 0..fab.topo.spines() {
            for l in 0..k {
                match fab.spines[s].downstream[l] {
                    Downstream::Switch(NodeId::Leaf(leaf), port) => {
                        assert_eq!(leaf, l);
                        assert_eq!(port, half + s);
                    }
                    other => panic!("spine {s} port {l}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected_with_typed_errors() {
        use crate::spec::TopologyError;
        let mut odd = FabricConfig::small(8, 2);
        odd.radix = 7;
        assert!(matches!(
            FatTreeFabric::try_new(odd),
            Err(TopologyError::InvalidRadix { .. })
        ));
        let mut frozen = FabricConfig::small(8, 2);
        frozen.link_delay = 0;
        assert!(matches!(
            FatTreeFabric::try_new(frozen),
            Err(TopologyError::ZeroLinkDelay)
        ));
        let mut bufferless = FabricConfig::small(8, 2);
        bufferless.buffer_cells = 0;
        assert!(matches!(
            FatTreeFabric::try_new(bufferless),
            Err(TopologyError::ZeroBuffer)
        ));
    }

    #[test]
    fn idle_fabric_stays_idle() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.0, 1);
        assert_eq!(r.injected, 0);
        assert_eq!(r.delivered, 0);
    }

    #[test]
    fn light_load_flows_lossless_in_order() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.2, 2);
        assert!((r.throughput - 0.2).abs() < 0.02, "thr {}", r.throughput);
        assert_eq!(r.reordered, 0, "per-flow order via stable spine hashing");
        assert!(r.max_queue_depth <= 6, "occ {}", r.max_queue_depth);
    }

    #[test]
    fn unloaded_latency_decomposes_into_hops() {
        // Inter-leaf: 1 (inject) + 4 links + 3 scheduling cycles = 4d+4;
        // intra-leaf (prob = (k/2−1)/(k²/2)·…≈1/8 incl. self): 2d+2.
        // At radix 8 the destination is under the same leaf with
        // probability 4/32, so the mix is 0.875·(4d+4) + 0.125·(2d+2).
        let d = 3u64;
        let r = run_fabric(FabricConfig::small(8, d), 0.02, 3);
        let inter = (4 * d + 4) as f64;
        let intra = (2 * d + 2) as f64;
        let expect = 0.875 * inter + 0.125 * intra;
        assert!(
            (r.mean_delay - expect).abs() < 1.5,
            "latency {} vs ≈{expect}",
            r.mean_delay
        );
    }

    #[test]
    fn moderate_load_sustains_throughput() {
        let r = run_fabric(FabricConfig::small(8, 2), 0.7, 4);
        assert!(
            (r.throughput - 0.7).abs() < 0.04,
            "thr {} vs 0.7",
            r.throughput
        );
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn hotspot_overload_is_lossless() {
        // Every host sends half its traffic to host 0: output 0 is
        // overloaded, backpressure propagates, nothing is ever dropped
        // (the assertion inside the sim would panic on overflow).
        let cfg = FabricConfig::small(8, 2);
        let mut fab = FatTreeFabric::new(cfg);
        let hosts = fab.topology().hosts();
        let mut tr = Hotspot::new(hosts, 0.5, 0, 0.5, &SeedSequence::new(5));
        let r = fab.run(&mut tr, &EngineConfig::new(1_000, 8_000));
        assert_eq!(r.reordered, 0);
        assert!(
            r.max_queue_depth <= cfg.buffer_cells,
            "credits bound the buffers"
        );
        // The hot egress drains at its full line rate (1/hosts of the
        // aggregate); port-level backpressure lets congestion spread into
        // the shared buffers (tree saturation), so aggregate throughput
        // sits well below offered load — but strictly above the hot
        // port's own rate, and nothing is ever lost.
        let hot_rate = 1.0 / fab.topology().hosts() as f64;
        assert!(r.throughput > hot_rate, "throughput {}", r.throughput);
    }

    #[test]
    fn tiny_buffers_throttle_but_never_drop() {
        // Buffer below the credit RTT: goodput drops, losslessness holds.
        let mut cfg = FabricConfig::small(8, 4);
        cfg.buffer_cells = 2; // RTT is 2·4 = 8 slots
        let r = run_fabric(cfg, 0.9, 6);
        assert!(r.throughput < 0.6, "throttled: {}", r.throughput);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn rtt_sized_buffers_sustain_full_rate() {
        // Load chosen below the static-flow-hash imbalance point: with
        // k/2 = 4 uplinks per leaf and random per-flow spine hashing, the
        // worst uplink carries noticeably more than the average, so the
        // fabric saturates before the hosts do (cf. the ECMP-imbalance
        // literature). 0.72 keeps every link under 1.0 with margin.
        let mut cfg = FabricConfig::small(8, 4);
        cfg.buffer_cells = (2 * cfg.link_delay + 2) as usize;
        let r = run_fabric(cfg, 0.72, 7);
        assert!(
            (r.throughput - 0.72).abs() < 0.04,
            "thr {} at RTT-sized buffers",
            r.throughput
        );
    }

    #[test]
    fn engine_buffer_override_rearms_the_credit_loop() {
        // EngineConfig::with_buffer_cells reaches the fabric's credit
        // loops: a 2-cell override on an RTT=8 fabric throttles exactly
        // like building it with tiny buffers.
        let cfg = FabricConfig::small(8, 4);
        let mut fab = FatTreeFabric::new(cfg);
        let mut tr = BernoulliUniform::new(fab.topology().hosts(), 0.9, &SeedSequence::new(6));
        let r = fab.run(
            &mut tr,
            &EngineConfig::new(1_000, 8_000).with_buffer_cells(2),
        );
        assert!(r.throughput < 0.6, "throttled: {}", r.throughput);
        assert!(r.max_queue_depth <= 2, "occ {}", r.max_queue_depth);
    }

    #[test]
    fn placement_option1_adds_a_stage_of_latency() {
        let mut cfg3 = FabricConfig::small(8, 2);
        cfg3.placement = Placement::InputOnly;
        let mut cfg1 = cfg3;
        cfg1.placement = Placement::InputAndOutput;
        let r3 = run_fabric(cfg3, 0.1, 8);
        let r1 = run_fabric(cfg1, 0.1, 8);
        assert!(
            r1.mean_delay > r3.mean_delay + 2.0,
            "option 1 {} vs option 3 {}",
            r1.mean_delay,
            r3.mean_delay
        );
        assert_eq!(Placement::InputAndOutput.oeo_per_stage(), 2);
        assert_eq!(Placement::InputOnly.oeo_per_stage(), 1);
    }

    #[test]
    fn placement_option2_pays_control_rtt_per_stage() {
        let mut cfg3 = FabricConfig::small(8, 3);
        cfg3.placement = Placement::InputOnly;
        let mut cfg2 = cfg3;
        cfg2.placement = Placement::OutputOnly;
        let r3 = run_fabric(cfg3, 0.1, 9);
        let r2 = run_fabric(cfg2, 0.1, 9);
        // Each of the 3 stages adds ≈ 2·d of request/grant flight.
        assert!(
            r2.mean_delay > r3.mean_delay + 4.0,
            "option 2 {} vs option 3 {}",
            r2.mean_delay,
            r3.mean_delay
        );
    }

    #[test]
    fn fdl_buffers_carry_load_losslessly() {
        // Clean FDL run: the credit loop bounds every input queue at the
        // plane's guaranteed capacity, so admission never refuses a cell
        // and the only behavioural difference from electronic VOQs is
        // head-of-line blocking (one FIFO per input, not per pair) plus
        // recirculation bookkeeping.
        let mut cfg = FabricConfig::small(8, 2);
        cfg.buffer_tech = BufferTech::Fdl;
        let r = run_fabric(cfg, 0.4, 31);
        assert_eq!(r.dropped, 0, "clean FDL runs are lossless");
        assert_eq!(r.reordered, 0);
        assert!((r.throughput - 0.4).abs() < 0.04, "thr {}", r.throughput);
        assert_eq!(r.extra("fdl_drops_total"), Some(0.0));
        assert_eq!(r.extra("fdl_underflow_stalls"), Some(0.0));
        assert!(
            r.extra("fdl_recirculations").unwrap() > 0.0,
            "unserved emerged cells re-enter the delay lines"
        );
    }

    #[test]
    fn fdl_mode_is_deterministic_and_distinct_from_electronic() {
        let mut cfg = FabricConfig::small(8, 2);
        cfg.buffer_tech = BufferTech::Fdl;
        let a = run_fabric(cfg, 0.5, 11);
        let b = run_fabric(cfg, 0.5, 11);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let e = run_fabric(FabricConfig::small(8, 2), 0.5, 11);
        assert_ne!(
            a.fingerprint(),
            e.fingerprint(),
            "per-input FIFO semantics differ from per-pair VOQs"
        );
    }

    #[test]
    fn fdl_requires_input_only_placement() {
        use crate::spec::TopologyError;
        let mut cfg = FabricConfig::small(8, 2);
        cfg.buffer_tech = BufferTech::Fdl;
        cfg.placement = Placement::OutputOnly;
        assert!(matches!(
            FatTreeFabric::try_new(cfg),
            Err(TopologyError::UnsupportedPlacement { .. })
        ));
        assert_eq!(BufferTech::Fdl.name(), "fdl");
        assert_eq!(BufferTech::Electronic.name(), "electronic");
    }

    #[test]
    fn fabric_is_deterministic() {
        let a = run_fabric(FabricConfig::small(8, 2), 0.5, 11);
        let b = run_fabric(FabricConfig::small(8, 2), 0.5, 11);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_plain_run() {
        use osmosis_faults::{FaultInjector, FaultPlan};
        let plain = run_fabric(FabricConfig::small(8, 2), 0.5, 11);
        let mut fab = FatTreeFabric::new(FabricConfig::small(8, 2));
        let hosts = fab.topology().hosts();
        let mut tr = BernoulliUniform::new(hosts, 0.5, &SeedSequence::new(11));
        let mut inj = FaultInjector::new(FaultPlan::new());
        let faulted = fab.run_faulted(&mut tr, &EngineConfig::new(1_000, 8_000), &mut inj);
        assert_eq!(plain.fingerprint(), faulted.fingerprint());
    }

    #[test]
    fn dead_wavelength_plane_reroutes_and_recovers() {
        use osmosis_faults::{FaultInjector, FaultKind, FaultPlan};
        // Kill one of the four spines for a window mid-run. Re-hashing
        // spreads its flows over the survivors; at 0.6 load the three
        // remaining uplinks per leaf (0.8 each) still carry everything.
        let cfg = FabricConfig::small(8, 2);
        let e = EngineConfig::new(0, 10_000).with_seed(21);
        let run = |plan: FaultPlan| {
            let mut fab = FatTreeFabric::new(cfg);
            let hosts = fab.topology().hosts();
            let mut tr = BernoulliUniform::new(hosts, 0.6, &SeedSequence::new(e.seed));
            let mut inj = FaultInjector::new(plan);
            let r = fab.run_faulted(&mut tr, &e, &mut inj);
            (r, fab.resident_cells())
        };
        let (nominal, _) = run(FaultPlan::new());
        let (degraded, resident) = run(FaultPlan::new().one_shot(
            FaultKind::WavelengthLoss { plane: 1 },
            2_000,
            Some(3_000),
        ));
        assert_eq!(degraded.dropped, 0, "re-routing is lossless");
        assert_eq!(
            degraded.injected,
            degraded.delivered + resident,
            "every cell delivered or still resident"
        );
        assert!(
            degraded.throughput > 0.9 * nominal.throughput,
            "one dead plane out of four barely dents 0.6 load: {} vs {}",
            degraded.throughput,
            nominal.throughput
        );
        assert_eq!(degraded.extra("faults_injected"), Some(1.0));
        assert_eq!(degraded.extra("faults_healed"), Some(1.0));
    }

    #[test]
    fn link_ber_burst_retransmits_hop_by_hop() {
        use osmosis_faults::{FaultInjector, FaultKind, FaultPlan, LINK_ANY};
        let cfg = FabricConfig::small(8, 2);
        let e = EngineConfig::new(0, 8_000).with_seed(23);
        let mut fab = FatTreeFabric::new(cfg);
        let hosts = fab.topology().hosts();
        let mut tr = BernoulliUniform::new(hosts, 0.4, &SeedSequence::new(e.seed));
        let plan = FaultPlan::new().permanent(
            FaultKind::LinkBerBurst {
                link: LINK_ANY,
                cell_error_prob: 0.05,
            },
            0,
        );
        let mut inj = FaultInjector::new(plan);
        let r = fab.run_faulted(&mut tr, &e, &mut inj);
        assert!(
            r.extra("fault_retransmits").unwrap() > 100.0,
            "corrupted hops were re-sent"
        );
        assert_eq!(r.dropped, 0);
        assert_eq!(
            r.reordered, 0,
            "go-back-N link stall preserves per-flow order"
        );
        assert_eq!(
            r.injected,
            r.delivered + fab.resident_cells(),
            "retransmission loses nothing"
        );
    }

    #[test]
    fn dropped_credits_throttle_but_recover_via_resync() {
        use osmosis_faults::{FaultInjector, FaultKind, FaultPlan};
        let cfg = FabricConfig::small(8, 2);
        let e = EngineConfig::new(0, 10_000).with_seed(25);
        let run = |plan: FaultPlan| {
            let mut fab = FatTreeFabric::new(cfg);
            let hosts = fab.topology().hosts();
            let mut tr = BernoulliUniform::new(hosts, 0.5, &SeedSequence::new(e.seed));
            let mut inj = FaultInjector::new(plan);
            let r = fab.run_faulted(&mut tr, &e, &mut inj);
            (r, fab.resident_cells())
        };
        let (faulted, resident) =
            run(FaultPlan::new().one_shot(FaultKind::CreditDrop { prob: 0.3 }, 1_000, Some(4_000)));
        assert!(faulted.extra("fault_credits_dropped").unwrap() > 100.0);
        assert_eq!(faulted.dropped, 0, "lost credits never lose cells");
        assert_eq!(
            faulted.injected,
            faulted.delivered + resident,
            "credit resync keeps the fabric flowing"
        );
        assert!(
            faulted.throughput > 0.4,
            "audit recovery bounds the throttling: {}",
            faulted.throughput
        );
    }
}
