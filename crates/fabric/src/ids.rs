//! Typed entity identifiers and dense arenas for expanded fabrics.
//!
//! The topology compiler ([`crate::expand`]) produces graphs with five
//! kinds of entities — stages, switches, ports, links and hosts — each
//! numbered densely from zero. Raw `usize` indices invite cross-kind
//! mix-ups (a port index silently used as a switch index); the newtypes
//! here make every table lookup kind-checked at compile time while
//! keeping the underlying representation a plain `u32`, small enough
//! that a 32K-port fabric's tables stay a few megabytes.
//!
//! [`EntityVec`] is the matching arena: a `Vec<V>` that can only be
//! indexed by its own key type, in the style of compiler IR id/arena
//! pairs.

use core::fmt;
use core::marker::PhantomData;

/// A dense `u32`-backed entity identifier.
///
/// Implemented by the id newtypes generated with [`entity_id!`]; used as
/// the key bound of [`EntityVec`].
pub trait EntityId: Copy + Ord {
    /// Construct the id with position `idx` in its arena.
    fn from_index(idx: usize) -> Self;
    /// The position of this id in its arena.
    fn index(self) -> usize;
}

/// Defines a `u32`-backed entity id newtype implementing [`EntityId`].
macro_rules! entity_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// The id with raw value `raw`.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw `u32` value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl EntityId for $name {
            fn from_index(idx: usize) -> Self {
                debug_assert!(idx <= u32::MAX as usize);
                $name(idx as u32)
            }

            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

entity_id!(
    /// A stage (level) of an expanded fabric: leaves are stage 0.
    StageId,
    "stage"
);
entity_id!(
    /// A switch of an expanded fabric, numbered stage-major.
    SwitchId,
    "sw"
);
entity_id!(
    /// A switch port: `switch.index() * radix + local`.
    PortId,
    "port"
);
entity_id!(
    /// A switch-to-switch cable of an expanded fabric.
    LinkId,
    "link"
);
entity_id!(
    /// An end host attached to a leaf-facing port.
    HostId,
    "host"
);

/// A dense arena indexable only by its key type `K`.
///
/// Pushing returns the id of the new slot; iteration yields `(id, &value)`
/// pairs in id order, so every walk over an arena is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityVec<K: EntityId, V> {
    items: Vec<V>,
    _key: PhantomData<K>,
}

impl<K: EntityId, V> EntityVec<K, V> {
    /// An empty arena.
    pub fn new() -> Self {
        EntityVec {
            items: Vec::new(),
            _key: PhantomData,
        }
    }

    /// An empty arena with room for `cap` entities.
    pub fn with_capacity(cap: usize) -> Self {
        EntityVec {
            items: Vec::with_capacity(cap),
            _key: PhantomData,
        }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the arena holds no entities.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Append `value`, returning its id.
    pub fn push(&mut self, value: V) -> K {
        let id = K::from_index(self.items.len());
        self.items.push(value);
        id
    }

    /// The value for `id`, or `None` when out of range.
    pub fn get(&self, id: K) -> Option<&V> {
        self.items.get(id.index())
    }

    /// The id that the next [`EntityVec::push`] will return.
    pub fn next_id(&self) -> K {
        K::from_index(self.items.len())
    }

    /// Iterate `(id, &value)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterate the ids in order.
    pub fn ids(&self) -> impl Iterator<Item = K> + use<K, V> {
        (0..self.items.len()).map(K::from_index)
    }

    /// Iterate the values in id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.items.iter()
    }
}

impl<K: EntityId, V> Default for EntityVec<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V> core::ops::Index<K> for EntityVec<K, V> {
    type Output = V;

    fn index(&self, id: K) -> &V {
        &self.items[id.index()]
    }
}

impl<K: EntityId, V> core::ops::IndexMut<K> for EntityVec<K, V> {
    fn index_mut(&mut self, id: K) -> &mut V {
        &mut self.items[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_format() {
        let s = SwitchId::from_index(17);
        assert_eq!(s.index(), 17);
        assert_eq!(s.raw(), 17);
        assert_eq!(format!("{s}"), "sw17");
        assert_eq!(format!("{:?}", PortId::new(3)), "port3");
    }

    #[test]
    fn entity_vec_push_and_index() {
        let mut v: EntityVec<HostId, u64> = EntityVec::new();
        assert!(v.is_empty());
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(v.len(), 2);
        assert_eq!(v[a], 10);
        assert_eq!(v[b], 20);
        v[b] = 21;
        assert_eq!(v[b], 21);
        assert_eq!(v.get(HostId::new(9)), None);
        assert_eq!(v.next_id(), HostId::new(2));
    }

    #[test]
    fn entity_vec_iteration_is_in_id_order() {
        let mut v: EntityVec<LinkId, char> = EntityVec::with_capacity(3);
        for c in ['a', 'b', 'c'] {
            v.push(c);
        }
        let pairs: Vec<_> = v.iter().map(|(k, &c)| (k.index(), c)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
        let ids: Vec<_> = v.ids().map(|k| k.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(v.values().count(), 3);
    }

    #[test]
    fn different_id_kinds_do_not_compare() {
        // Compile-time property: EntityVec<SwitchId, _> cannot be indexed
        // by a PortId. Checked here only by constructing both kinds.
        let s = SwitchId::new(1);
        let p = PortId::new(1);
        assert_eq!(s.raw(), p.raw());
    }
}
