//! Static link-load analysis for folded-Clos fabrics.
//!
//! Per-flow routing is deterministic (that is what preserves packet
//! order), so the expected load on every link under a given traffic
//! matrix can be computed *without simulation* by walking each flow's
//! [`MultiLevelClos::path`]. The worst link bounds the fabric's
//! saturation load: carried throughput cannot exceed
//! `1 / max_link_load` per unit of offered load.
//!
//! This analysis is how the repository found (and fixed) a real routing
//! defect: an under-mixed flow hash concentrated 4.3× the average load
//! on a few uplinks, capping a radix-4 six-level fabric at 11% — the
//! analyzer's prediction matched the simulator within 2%.

use crate::expand::{ExpandedFabric, Peer};
use crate::ids::{EntityId as _, HostId, PortId};
use crate::multilevel::MultiLevelClos;
use std::collections::BTreeMap;

/// A directed link in the fabric: between (level, switch) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    /// Source (level, switch).
    pub from: (u32, usize),
    /// Destination (level, switch).
    pub to: (u32, usize),
}

/// The computed load map.
#[derive(Debug, Clone)]
pub struct LoadMap {
    /// Expected load per link, in cells/slot at the given traffic matrix.
    pub loads: BTreeMap<Link, f64>,
    /// Mean over links that carry anything.
    pub mean: f64,
    /// The hottest link's load.
    pub max: f64,
    /// The hottest link.
    pub argmax: Option<Link>,
}

impl LoadMap {
    /// Max-to-mean imbalance ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        // lint:allow(float-eq): exact zero sentinel — an empty load map
        // divides by mean below, and 0.0 is the only value to guard
        if self.mean == 0.0 {
            1.0
        } else {
            self.max / self.mean
        }
    }

    /// Saturation offered-load estimate: the per-host load at which the
    /// hottest link reaches 1 cell/slot, given the map was computed at
    /// `offered` per host.
    pub fn saturation_load(&self, offered: f64) -> f64 {
        // lint:allow(float-eq): exact zero sentinel guarding the division
        if self.max == 0.0 {
            1.0
        } else {
            (offered / self.max).min(1.0)
        }
    }
}

/// Compute the load map for a uniform traffic matrix at `offered`
/// cells/slot per host (each host spreads its load evenly over all other
/// hosts).
pub fn uniform_load_map(topo: &MultiLevelClos, offered: f64) -> LoadMap {
    let hosts = topo.hosts();
    let per_flow = offered / (hosts - 1).max(1) as f64;
    let mut loads: BTreeMap<Link, f64> = BTreeMap::new();
    for src in 0..hosts {
        for dst in 0..hosts {
            if src == dst {
                continue;
            }
            let path = topo.path(src, dst);
            for w in path.windows(2) {
                *loads
                    .entry(Link {
                        from: w[0],
                        to: w[1],
                    })
                    .or_insert(0.0) += per_flow;
            }
        }
    }
    summarize(loads)
}

/// Compute the load map for an arbitrary traffic matrix
/// `rate[src][dst]` (cells/slot).
pub fn load_map(topo: &MultiLevelClos, rate: &[Vec<f64>]) -> LoadMap {
    let hosts = topo.hosts();
    assert_eq!(rate.len(), hosts);
    let mut loads: BTreeMap<Link, f64> = BTreeMap::new();
    for (src, row) in rate.iter().enumerate() {
        assert_eq!(row.len(), hosts);
        for (dst, &r) in row.iter().enumerate() {
            // lint:allow(float-eq): skip exactly-zero matrix entries —
            // near-zero rates must still contribute to link loads
            if src == dst || r == 0.0 {
                continue;
            }
            let path = topo.path(src, dst);
            for w in path.windows(2) {
                *loads
                    .entry(Link {
                        from: w[0],
                        to: w[1],
                    })
                    .or_insert(0.0) += r;
            }
        }
    }
    summarize(loads)
}

/// A load map over an [`ExpandedFabric`], keyed by the typed egress
/// port driving each cable direction — so it works for every topology
/// family the compiler expands, not just folded Clos.
#[derive(Debug, Clone)]
pub struct ExpandedLoadMap {
    /// Expected load per cable direction (keyed by the transmitting
    /// port), in cells/slot at the given traffic matrix.
    pub loads: BTreeMap<PortId, f64>,
    /// Mean over directions that carry anything.
    pub mean: f64,
    /// The hottest direction's load.
    pub max: f64,
    /// The hottest direction's transmitting port.
    pub argmax: Option<PortId>,
}

impl ExpandedLoadMap {
    /// Max-to-mean imbalance ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        // lint:allow(float-eq): exact zero sentinel guarding the division
        if self.mean == 0.0 {
            1.0
        } else {
            self.max / self.mean
        }
    }

    /// Saturation offered-load estimate, as [`LoadMap::saturation_load`].
    pub fn saturation_load(&self, offered: f64) -> f64 {
        // lint:allow(float-eq): exact zero sentinel guarding the division
        if self.max == 0.0 {
            1.0
        } else {
            (offered / self.max).min(1.0)
        }
    }
}

/// Compute the switch-to-switch link loads of an expanded fabric under
/// uniform traffic at `offered` cells/slot per host, by walking every
/// flow's route on the graph itself. Quadratic in hosts — meant for
/// analysis-scale instances, not the 32K-port ones.
pub fn expanded_uniform_load_map(fab: &ExpandedFabric, offered: f64) -> ExpandedLoadMap {
    let hosts = fab.hosts.len();
    let per_flow = offered / (hosts - 1).max(1) as f64;
    let mut loads: BTreeMap<PortId, f64> = BTreeMap::new();
    for src in 0..hosts {
        for dst in 0..hosts {
            if src == dst {
                continue;
            }
            let (s, d) = (HostId::from_index(src), HostId::from_index(dst));
            let (mut sw, mut in_port) = fab.host_attach(s);
            loop {
                let out = fab.route(sw, in_port, s, d);
                let pid = fab.port_id(sw, out);
                match fab.ports[pid].peer {
                    // Host delivery is the NIC's own link, not fabric
                    // cabling — same accounting as the Clos analyzer.
                    Peer::Host(_) | Peer::Unconnected => break,
                    Peer::Port(far) => {
                        *loads.entry(pid).or_insert(0.0) += per_flow;
                        sw = fab.ports[far].switch;
                        in_port = fab.ports[far].local;
                    }
                }
            }
        }
    }
    let (mut max, mut sum, mut argmax) = (0.0f64, 0.0f64, None);
    for (&p, &v) in &loads {
        sum += v;
        if v > max {
            max = v;
            argmax = Some(p);
        }
    }
    let mean = if loads.is_empty() {
        0.0
    } else {
        sum / loads.len() as f64
    };
    ExpandedLoadMap {
        loads,
        mean,
        max,
        argmax,
    }
}

fn summarize(loads: BTreeMap<Link, f64>) -> LoadMap {
    let (mut max, mut sum, mut argmax) = (0.0f64, 0.0f64, None);
    for (&l, &v) in &loads {
        sum += v;
        if v > max {
            max = v;
            argmax = Some(l);
        }
    }
    let mean = if loads.is_empty() {
        0.0
    } else {
        sum / loads.len() as f64
    };
    LoadMap {
        loads,
        mean,
        max,
        argmax,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_two_level_is_well_balanced() {
        let topo = MultiLevelClos::new(8, 2);
        let m = uniform_load_map(&topo, 1.0);
        assert!(m.max <= 1.4, "max link load {}", m.max);
        assert!(m.imbalance() < 1.8, "imbalance {}", m.imbalance());
    }

    #[test]
    fn deep_binary_tree_stays_routable_after_the_hash_fix() {
        // The regression this module was built to catch: with the raw FNV
        // low bit the 6-level radix-4 fabric saturated at 0.12; with the
        // mixed hash its worst link stays below 1.5× the mean.
        let topo = MultiLevelClos::new(4, 6);
        let m = uniform_load_map(&topo, 1.0);
        assert!(
            m.saturation_load(1.0) > 0.6,
            "saturation estimate {} — flow hash has regressed",
            m.saturation_load(1.0)
        );
    }

    #[test]
    fn saturation_estimate_matches_the_simulator() {
        use crate::multilevel::{MultiLevelConfig, MultiLevelFabric};
        use osmosis_sim::SeedSequence;
        use osmosis_traffic::BernoulliUniform;

        let topo = MultiLevelClos::new(4, 4);
        let est = uniform_load_map(&topo, 1.0).saturation_load(1.0);
        // Simulate well above the estimate: carried throughput should
        // flatten near the analytic ceiling (within 12%).
        let mut fab = MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2));
        let mut tr =
            BernoulliUniform::new(topo.hosts(), (est + 0.2).min(1.0), &SeedSequence::new(5));
        let r = fab.run(&mut tr, &osmosis_sim::EngineConfig::new(2_000, 10_000));
        assert!(
            (r.throughput - est).abs() < 0.12,
            "simulated {} vs analytic ceiling {est}",
            r.throughput
        );
    }

    #[test]
    fn hotspot_matrix_concentrates_on_the_last_hop() {
        let topo = MultiLevelClos::new(8, 2);
        let hosts = topo.hosts();
        let mut rate = vec![vec![0.0; hosts]; hosts];
        for row in rate.iter_mut().skip(1) {
            row[0] = 0.5;
        }
        let m = load_map(&topo, &rate);
        // The hottest links are those delivering into host 0's leaf
        // (intra-leaf flows traverse no switch-to-switch link, so only
        // the inter-leaf sources count: hosts − m of them, spread over
        // the m spine→leaf down-links by the flow hash).
        let hot = m.argmax.unwrap();
        assert_eq!(hot.to, (0, topo.leaf_of(0)));
        let inter_total = 0.5 * (hosts - topo.m()) as f64;
        let fair_share = inter_total / topo.m() as f64;
        assert!(
            m.max >= fair_share * 0.99 && m.max <= inter_total,
            "max {} vs fair share {fair_share}",
            m.max
        );
    }

    #[test]
    fn expanded_map_agrees_with_the_clos_analyzer() {
        // planes = 1 expansion routes exactly like MultiLevelClos, so
        // the per-direction load profile must match the legacy map's.
        use crate::spec::TopologySpec;
        let (radix, levels) = (4usize, 3u32);
        let topo = MultiLevelClos::new(radix, levels);
        let legacy = uniform_load_map(&topo, 1.0);
        let fab = ExpandedFabric::expand(TopologySpec::m_ary_fat_tree(radix, levels)).unwrap();
        let typed = expanded_uniform_load_map(&fab, 1.0);
        assert_eq!(typed.loads.len(), legacy.loads.len());
        assert!((typed.max - legacy.max).abs() < 1e-9);
        assert!((typed.mean - legacy.mean).abs() < 1e-9);
    }

    #[test]
    fn expanded_map_covers_all_families() {
        use crate::spec::TopologySpec;
        // A full mesh under uniform traffic is perfectly balanced.
        let mesh = ExpandedFabric::expand(TopologySpec::full_mesh(8, 5)).unwrap();
        let m = expanded_uniform_load_map(&mesh, 1.0);
        assert!(m.imbalance() < 1.01, "mesh imbalance {}", m.imbalance());
        // A dragonfly's flow-hashed global channels stay within a small
        // constant of the mean.
        let df = ExpandedFabric::expand(TopologySpec::dragonfly(8, 4)).unwrap();
        let d = expanded_uniform_load_map(&df, 1.0);
        assert!(d.max > 0.0);
        assert!(d.imbalance() < 3.0, "dragonfly imbalance {}", d.imbalance());
    }

    #[test]
    fn empty_matrix_is_trivially_balanced() {
        let topo = MultiLevelClos::new(4, 2);
        let hosts = topo.hosts();
        let rate = vec![vec![0.0; hosts]; hosts];
        let m = load_map(&topo, &rate);
        assert_eq!(m.max, 0.0);
        assert_eq!(m.imbalance(), 1.0);
        assert_eq!(m.saturation_load(0.3), 1.0);
    }
}
