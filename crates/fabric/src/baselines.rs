//! Fabric alternatives compared in §VI.C: OSMOSIS 64-port optical switches
//! vs. high-end 32-port electronic switches vs. 8–12-port commodity parts,
//! all building the same 2048-port, 12 GByte/s-per-port fabric.
//!
//! "Each stage contributes to latency and power consumption. Compared with
//! the high-end electronic solution, OSMOSIS saves two layers of OEO
//! conversions in the fat tree."

use crate::topology::{levels_for_ports, stages_for_levels};

/// The switch technology a fabric is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchTech {
    /// OSMOSIS hybrid opto-electronic switch (optical crossbar, electronic
    /// buffers/scheduler).
    OsmosisOptical,
    /// High-end electronic crossbar ASIC.
    HighEndElectronic,
    /// Commodity electronic switch chip.
    CommodityElectronic,
}

/// One §VI.C fabric alternative.
#[derive(Debug, Clone, Copy)]
pub struct FabricAlternative {
    /// Display name.
    pub name: &'static str,
    /// Technology.
    pub tech: SwitchTech,
    /// Switch radix at the target port rate.
    pub radix: usize,
    /// Per-stage traversal latency in nanoseconds (buffering + switching).
    pub stage_latency_ns: f64,
    /// Power per switch port in watts at the target rate.
    pub power_per_port_w: f64,
}

impl FabricAlternative {
    /// OSMOSIS: 64 ports per switch at 40 Gb/s; per-stage latency of a few
    /// hundred ns in ASIC form (§VI.B).
    pub fn osmosis() -> Self {
        FabricAlternative {
            name: "OSMOSIS 64-port optical",
            tech: SwitchTech::OsmosisOptical,
            radix: 64,
            stage_latency_ns: 150.0,
            power_per_port_w: 2.5,
        }
    }

    /// "We expect the highest possible electronic switch port count to be
    /// 32 ports for the IB 12x QDR rates."
    pub fn high_end_electronic() -> Self {
        FabricAlternative {
            name: "high-end electronic 32-port",
            tech: SwitchTech::HighEndElectronic,
            radix: 32,
            stage_latency_ns: 120.0,
            power_per_port_w: 4.0,
        }
    }

    /// "commodity parts will probably offer only 8 to 12 ports."
    pub fn commodity_electronic() -> Self {
        FabricAlternative {
            name: "commodity electronic 8-port",
            tech: SwitchTech::CommodityElectronic,
            radix: 8,
            stage_latency_ns: 100.0,
            power_per_port_w: 3.0,
        }
    }

    /// The three §VI.C contenders.
    pub fn contenders() -> [FabricAlternative; 3] {
        [
            Self::osmosis(),
            Self::high_end_electronic(),
            Self::commodity_electronic(),
        ]
    }
}

/// A fabric-level comparison for a given host count.
#[derive(Debug, Clone)]
pub struct FabricComparison {
    /// The alternative evaluated.
    pub alt: FabricAlternative,
    /// Fat-tree levels.
    pub levels: u32,
    /// Switch stages a packet traverses (2·levels − 1).
    pub stages: u32,
    /// Total switch chips/boxes in the fabric: (2L−1)·N/k.
    pub switch_count: u64,
    /// OEO conversion layers along a path (one per stage — the optical
    /// crossbar itself adds none).
    pub oeo_layers: u32,
    /// End-to-end switch-traversal latency, excluding cables (ns).
    pub path_latency_ns: f64,
    /// Total fabric power estimate (W): ports × switches × per-port power.
    pub fabric_power_w: f64,
}

/// Evaluate an alternative for `ports` hosts.
pub fn compare(alt: FabricAlternative, ports: u64) -> FabricComparison {
    let levels = levels_for_ports(alt.radix, ports);
    let stages = stages_for_levels(levels);
    let switch_count = stages as u64 * ports / alt.radix as u64;
    FabricComparison {
        alt,
        levels,
        stages,
        switch_count,
        oeo_layers: stages,
        path_latency_ns: stages as f64 * alt.stage_latency_ns,
        fabric_power_w: switch_count as f64 * alt.radix as f64 * alt.power_per_port_w,
    }
}

/// The full §VI.C table for the paper's 2048-port target.
pub fn section_6c_table() -> Vec<FabricComparison> {
    FabricAlternative::contenders()
        .into_iter()
        .map(|a| compare(a, 2048))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_match_paper() {
        let table = section_6c_table();
        assert_eq!(table[0].stages, 3, "OSMOSIS");
        assert_eq!(table[1].stages, 5, "high-end electronic");
        assert_eq!(table[2].stages, 9, "commodity");
    }

    #[test]
    fn oeo_savings_vs_high_end_is_two_layers() {
        let table = section_6c_table();
        assert_eq!(
            table[1].oeo_layers - table[0].oeo_layers,
            2,
            "OSMOSIS saves two layers of OEO conversions"
        );
    }

    #[test]
    fn switch_counts() {
        let table = section_6c_table();
        // OSMOSIS: 3 stages × 2048/64 = 96 switches (64 leaves + 32 spines).
        assert_eq!(table[0].switch_count, 96);
        // High-end: 5 × 2048/32 = 320.
        assert_eq!(table[1].switch_count, 320);
        // Commodity: 9 × 2048/8 = 2304.
        assert_eq!(table[2].switch_count, 2304);
    }

    #[test]
    fn latency_ordering_favors_fewer_stages() {
        let table = section_6c_table();
        assert!(table[0].path_latency_ns < table[1].path_latency_ns);
        assert!(table[1].path_latency_ns < table[2].path_latency_ns);
    }

    #[test]
    fn fabric_power_favors_osmosis() {
        // The §I power argument at the fabric level: more stages and more
        // per-port electronic power multiply out.
        let table = section_6c_table();
        assert!(
            table[0].fabric_power_w < table[1].fabric_power_w,
            "OSMOSIS {} W vs high-end {} W",
            table[0].fabric_power_w,
            table[1].fabric_power_w
        );
    }

    #[test]
    fn comparison_scales_with_ports() {
        let small = compare(FabricAlternative::osmosis(), 64);
        assert_eq!(small.stages, 1, "one switch suffices for 64 hosts");
        assert_eq!(small.switch_count, 1);
        let big = compare(FabricAlternative::osmosis(), 8192);
        assert_eq!(big.stages, 5);
    }
}
