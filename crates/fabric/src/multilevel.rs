//! Generalized L-level folded-Clos simulation — the §VI.C comparison in
//! motion.
//!
//! §VI.C argues by stage count: 2048 ports need 3 OSMOSIS stages but 5
//! high-end or 9 commodity electronic stages, and "each stage contributes
//! to latency and power consumption". The two-level simulator in
//! [`crate::multistage`] covers the OSMOSIS case; this module builds a
//! folded Clos of **any** depth from radix-k switches so fabrics of
//! different radix can be simulated at the *same* host count and their
//! latencies compared hop for hop.
//!
//! Construction (m = k/2): hosts = m^L, every level has m^(L−1) switches
//! of m down + m up ports (the top level uses only its down half).
//! Switch indices are (L−1)-digit base-m numbers; the up-edge from a
//! level-l switch X via up-port p leads to the level-(l+1) switch with
//! digit l of X replaced by p, whose down-port q = old digit l. A packet
//! ascends to the lowest common ancestor level (up-ports chosen by flow
//! hash, so per-flow order holds) and descends following the destination
//! digits. Links carry credits exactly as in the two-level model; the
//! losslessness assertion is the same.
//!
//! The simulator runs on the shared engine via the `CellSwitch` hooks
//! and reports the unified [`EngineReport`]; the stage count (2L−1) of
//! the simulated topology rides along as `extra("stages")`.

use crate::spec::TopologyError;
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_switch::driven::{run_switch, CellSwitch};
use osmosis_switch::Cell;
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::VecDeque;

/// Topology descriptor for an L-level folded Clos of radix-k switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiLevelClos {
    /// Switch radix (even, ≥ 4).
    pub radix: usize,
    /// Levels of switches.
    pub levels: u32,
}

impl MultiLevelClos {
    /// Build a descriptor. `radix` must be even ≥ 4, `levels ≥ 1`;
    /// panics otherwise — use [`try_new`](Self::try_new) where the
    /// parameters come from external input.
    pub fn new(radix: usize, levels: u32) -> Self {
        match Self::try_new(radix, levels) {
            Ok(t) => t,
            // lint:allow(panic-free): documented panic contract of the
            // infallible constructor; `try_new` is the checked form
            Err(e) => panic!("{e}"),
        }
    }

    /// Build a descriptor, rejecting bad parameters with a typed error.
    pub fn try_new(radix: usize, levels: u32) -> Result<Self, TopologyError> {
        if radix < 4 || !radix.is_multiple_of(2) {
            return Err(TopologyError::InvalidRadix {
                radix,
                min: 4,
                even: true,
            });
        }
        if !(1..=16).contains(&levels) {
            return Err(TopologyError::InvalidLevels { levels });
        }
        Ok(MultiLevelClos { radix, levels })
    }

    /// Down/up ports per switch (m = k/2).
    pub fn m(&self) -> usize {
        self.radix / 2
    }

    /// Host count: m^L.
    pub fn hosts(&self) -> usize {
        self.m().pow(self.levels)
    }

    /// Switches per level: m^(L−1).
    pub fn switches_per_level(&self) -> usize {
        self.m().pow(self.levels - 1)
    }

    /// Stages a packet traverses end to end: 2L−1.
    pub fn stages(&self) -> u32 {
        2 * self.levels - 1
    }

    /// Digit `pos` (base m) of a switch/leaf index.
    fn digit(&self, index: usize, pos: u32) -> usize {
        (index / self.m().pow(pos)) % self.m()
    }

    /// Replace digit `pos` of `index` with `value`.
    fn with_digit(&self, index: usize, pos: u32, value: usize) -> usize {
        let p = self.m().pow(pos);
        index - self.digit(index, pos) * p + value * p
    }

    /// Leaf switch of a host.
    pub fn leaf_of(&self, host: usize) -> usize {
        host / self.m()
    }

    /// Ascent height for a src→dst route: the number of up-hops needed
    /// (0 when both hosts share a leaf).
    pub fn ascent(&self, src: usize, dst: usize) -> u32 {
        let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
        if ls == ld {
            return 0;
        }
        let mut a = 0;
        for pos in 0..self.levels - 1 {
            if self.digit(ls, pos) != self.digit(ld, pos) {
                a = pos + 1;
            }
        }
        a
    }

    /// The full switch path a src→dst flow takes, as (level, switch
    /// index) pairs — pure topology, used by property tests and by
    /// anyone who wants to reason about link loads without running the
    /// simulator.
    pub fn path(&self, src: usize, dst: usize) -> Vec<(u32, usize)> {
        assert!(src < self.hosts() && dst < self.hosts());
        let a = self.ascent(src, dst);
        let mut sw = self.leaf_of(src);
        let mut out = vec![(0u32, sw)];
        for level in 0..a {
            let p = self.up_choice(src, dst, level);
            sw = self.with_digit(sw, level, p);
            out.push((level + 1, sw));
        }
        for level in (1..=a).rev() {
            let q = self.digit(self.leaf_of(dst), level - 1);
            sw = self.with_digit(sw, level - 1, q);
            out.push((level - 1, sw));
        }
        out
    }

    /// Deterministic per-flow up-port choice at ascent step `level` —
    /// the shared [`crate::spec::up_choice`] hash, single-sourced so the
    /// spec-expanded fabrics route identically.
    pub fn up_choice(&self, src: usize, dst: usize, level: u32) -> usize {
        crate::spec::up_choice(src, dst, level, self.m())
    }
}

/// Configuration for a multilevel fabric run.
#[derive(Debug, Clone, Copy)]
pub struct MultiLevelConfig {
    /// Topology.
    pub topo: MultiLevelClos,
    /// Link flight time in slots.
    pub link_delay: u64,
    /// Input-buffer capacity per switch input port.
    pub buffer_cells: usize,
    /// Matching iterations per switch per slot.
    pub iterations: usize,
}

impl MultiLevelConfig {
    /// RTT-sized buffers, 3 iterations.
    pub fn standard(topo: MultiLevelClos, link_delay: u64) -> Self {
        MultiLevelConfig {
            topo,
            link_delay,
            buffer_cells: (2 * link_delay + 2) as usize,
            iterations: 3,
        }
    }
}

/// Per-switch state: ports 0..m−1 down, m..2m−1 up. The wiring tables
/// (`down`, `up`) are read off the compiled expansion at construction —
/// `None` marks the unused up-side of the top level.
struct Node {
    voq: Vec<VecDeque<Cell>>,
    input_occupancy: Vec<usize>,
    credits: Vec<usize>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    /// Where each output port's cable leads.
    down: Vec<Option<Hop>>,
    /// Where each input port's credits return to.
    up: Vec<Option<CreditTo>>,
}

/// Destination of a sent cell.
#[derive(Debug, Clone, Copy)]
enum Hop {
    Host(usize),
    /// (level, switch, input port)
    Switch(u32, usize, usize),
}

/// The multilevel fabric simulator.
pub struct MultiLevelFabric {
    cfg: MultiLevelConfig,
    /// `nodes[level][switch]`.
    nodes: Vec<Vec<Node>>,
    host_queues: Vec<VecDeque<Cell>>,
    host_credits: Vec<usize>,
    cell_flights: VecDeque<(u64, Hop, Cell)>,
    credit_flights: VecDeque<(u64, CreditTo)>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    requesters: BitSet,
    grants_to_input: Vec<BitSet>,
    /// Per-switch matching scratch, cleared for every (level, switch).
    in_matched: Vec<bool>,
    out_matched: Vec<bool>,
    matched: Vec<(usize, usize)>,
}

#[derive(Debug, Clone, Copy)]
enum CreditTo {
    Host(usize),
    /// (level, switch, output port)
    Switch(u32, usize, usize),
}

impl MultiLevelFabric {
    /// Build the fabric.
    pub fn new(cfg: MultiLevelConfig) -> Self {
        assert!(cfg.link_delay >= 1);
        let t = cfg.topo;
        let ports = 2 * t.m();
        let width = t.switches_per_level();
        // The wiring is the 1-plane expansion of the same spec; reading
        // the tables off the compiled graph keeps this simulator and the
        // topology compiler in provable agreement (see the equivalence
        // test below).
        let expanded = match crate::expand::ExpandedFabric::expand(
            crate::spec::TopologySpec::m_ary_fat_tree(t.radix, t.levels),
        ) {
            Ok(fab) => fab,
            // lint:allow(panic-free): MultiLevelClos::new already
            // validated radix and levels; kept as the infallible
            // constructor's documented contract
            Err(e) => panic!("{e}"),
        };
        use crate::expand::Peer;
        use crate::ids::{EntityId, SwitchId};
        let nodes = (0..t.levels)
            .map(|level| {
                (0..width)
                    .map(|sw| {
                        let swid = SwitchId::from_index(level as usize * width + sw);
                        let mut down = Vec::with_capacity(ports);
                        let mut up = Vec::with_capacity(ports);
                        for local in 0..ports {
                            let peer = expanded.ports[expanded.port_id(swid, local as u32)].peer;
                            let far = match peer {
                                Peer::Host(h) => {
                                    down.push(Some(Hop::Host(h.index())));
                                    up.push(Some(CreditTo::Host(h.index())));
                                    continue;
                                }
                                Peer::Port(far) => far,
                                Peer::Unconnected => {
                                    down.push(None);
                                    up.push(None);
                                    continue;
                                }
                            };
                            let fsw = expanded.ports[far].switch;
                            let flevel = expanded.level_of(fsw);
                            let fpos = expanded.switches[fsw].pos as usize;
                            let flocal = expanded.ports[far].local as usize;
                            down.push(Some(Hop::Switch(flevel, fpos, flocal)));
                            up.push(Some(CreditTo::Switch(flevel, fpos, flocal)));
                        }
                        Node {
                            voq: (0..ports * ports).map(|_| VecDeque::new()).collect(),
                            input_occupancy: vec![0; ports],
                            credits: vec![cfg.buffer_cells; ports],
                            grant_arb: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
                            accept_arb: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
                            down,
                            up,
                        }
                    })
                    .collect()
            })
            .collect();
        MultiLevelFabric {
            cfg,
            nodes,
            host_queues: (0..t.hosts()).map(|_| VecDeque::new()).collect(),
            host_credits: vec![cfg.buffer_cells; t.hosts()],
            cell_flights: VecDeque::new(),
            credit_flights: VecDeque::new(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            requesters: BitSet::new(ports),
            grants_to_input: (0..ports).map(|_| BitSet::new(ports)).collect(),
            in_matched: vec![false; ports],
            out_matched: vec![false; ports],
            matched: Vec::new(),
        }
    }

    /// Topology.
    pub fn topology(&self) -> MultiLevelClos {
        self.cfg.topo
    }

    /// Output port a cell takes at (level, switch), given the input side
    /// it arrived on: cells arriving on an up-side input (≥ m) are
    /// descending and always continue down; cells arriving from a host or
    /// from below ascend until the lowest common ancestor level, then
    /// turn.
    fn route(&self, level: u32, switch: usize, in_port: usize, cell: &Cell) -> usize {
        let t = self.cfg.topo;
        let m = t.m();
        let descending = in_port >= m;
        if !descending && level < t.ascent(cell.src, cell.dst) {
            // Still ascending: up port by flow hash.
            return m + t.up_choice(cell.src, cell.dst, level);
        }
        if level == 0 {
            // At the destination leaf.
            debug_assert_eq!(switch, t.leaf_of(cell.dst));
            cell.dst % m
        } else {
            // Descending (or turning): down port = destination digit
            // (level−1).
            t.digit(t.leaf_of(cell.dst), level - 1)
        }
    }

    /// Where an output port of (level, switch) leads — the closed-form
    /// digit rule the expansion-derived tables are checked against.
    #[cfg(test)]
    fn downstream(&self, level: u32, switch: usize, port: usize) -> Hop {
        let t = self.cfg.topo;
        let m = t.m();
        if port < m {
            if level == 0 {
                Hop::Host(switch * m + port)
            } else {
                // Down edge: level-l switch Y down-port q → level l−1
                // switch X = Y[digit l−1 := q]... inverse of the up rule:
                // Y was reached from X via up-port p where Y = X[digit
                // l−1 := p]; conversely X = Y[digit l−1 := q] where q is
                // X's old digit — the down port *selects* that digit.
                let below = t.with_digit(switch, level - 1, port);
                // The receiving input port on X is the up port it used,
                // which is Y's digit (level−1).
                let in_port = m + t.digit(switch, level - 1);
                Hop::Switch(level - 1, below, in_port)
            }
        } else {
            // Up edge: to level+1, switch with digit `level` := p.
            let p = port - m;
            let above = t.with_digit(switch, level, p);
            let in_port = t.digit(switch, level); // our old digit
            Hop::Switch(level + 1, above, in_port)
        }
    }

    /// Where an input port's credits return to — closed form, kept as
    /// the test oracle for the expansion-derived tables.
    #[cfg(test)]
    fn upstream(&self, level: u32, switch: usize, in_port: usize) -> CreditTo {
        let t = self.cfg.topo;
        let m = t.m();
        if in_port < m {
            if level == 0 {
                CreditTo::Host(switch * m + in_port)
            } else {
                // Cells arriving on a down-side input of a level-l switch
                // came *up* from level l−1: input port q < m corresponds
                // to the lower switch X = self[digit l−1 := q]'s up port
                // (m + our digit l−1)... but by construction cells from
                // below arrive on input ports ≥ m? No: the up edge from X
                // (up port m+p) lands on the level-(l+1) switch's input
                // port equal to X's old digit — a *down-side* index.
                let below = t.with_digit(switch, level - 1, in_port);
                let out_port = m + t.digit(switch, level - 1);
                CreditTo::Switch(level - 1, below, out_port)
            }
        } else {
            // Inputs ≥ m receive from the level-(l+1) switch our up port
            // (in_port − m) leads to; it sent via its down port equal to
            // our digit at position `level`.
            let above = t.with_digit(switch, level, in_port - m);
            CreditTo::Switch(level + 1, above, t.digit(switch, level))
        }
    }

    /// Run traffic through the fabric on the shared engine. The stage
    /// count of the topology is reported as `extra("stages")`.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }
}

impl CellSwitch for MultiLevelFabric {
    fn ports(&self) -> usize {
        self.cfg.topo.hosts()
    }

    fn configure(&mut self, cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
        // Engine-level buffer override re-arms the credit loops (valid on
        // a fabric that has not run yet).
        if let Some(b) = cfg.buffer_cells {
            if b != self.cfg.buffer_cells {
                assert!(b >= 1);
                self.cfg.buffer_cells = b;
                for level in self.nodes.iter_mut() {
                    for node in level.iter_mut() {
                        node.credits.iter_mut().for_each(|c| *c = b);
                    }
                }
                self.host_credits.iter_mut().for_each(|c| *c = b);
            }
        }
    }

    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        let t = self.cfg.topo;
        let m = t.m();
        let ports = 2 * m;
        let d = self.cfg.link_delay;
        let buffer_cells = self.cfg.buffer_cells;

        // Cell arrivals.
        while self
            .cell_flights
            .front()
            .is_some_and(|&(at, _, _)| at == slot)
        {
            let Some((_, hop, cell)) = self.cell_flights.pop_front() else {
                break;
            };
            match hop {
                Hop::Host(h) => {
                    debug_assert_eq!(cell.dst, h);
                    self.checker.record(cell.src, cell.dst, cell.seq);
                    obs.cell_delivered_flow(h, cell.inject_slot, cell.src, cell.seq);
                }
                Hop::Switch(level, sw, in_port) => {
                    let out = self.route(level, sw, in_port, &cell);
                    let node = &mut self.nodes[level as usize][sw];
                    node.input_occupancy[in_port] += 1;
                    assert!(
                        node.input_occupancy[in_port] <= buffer_cells,
                        "buffer overflow at level {level} switch {sw} \
                         port {in_port}"
                    );
                    obs.note_queue_depth(node.input_occupancy[in_port]);
                    node.voq[in_port * ports + out].push_back(cell);
                }
            }
        }

        // Credit returns.
        while self
            .credit_flights
            .front()
            .is_some_and(|&(at, _)| at == slot)
        {
            let Some((_, credit)) = self.credit_flights.pop_front() else {
                break;
            };
            match credit {
                CreditTo::Host(h) => self.host_credits[h] += 1,
                CreditTo::Switch(level, sw, port) => {
                    self.nodes[level as usize][sw].credits[port] += 1;
                }
            }
        }

        // Matchings, level by level.
        for level in 0..t.levels {
            for sw in 0..t.switches_per_level() {
                self.matched.clear();
                {
                    let node = &mut self.nodes[level as usize][sw];
                    self.in_matched.fill(false);
                    self.out_matched.fill(false);
                    for _ in 0..self.cfg.iterations {
                        for g in self.grants_to_input.iter_mut() {
                            g.clear_all();
                        }
                        let mut any = false;
                        for o in 0..ports {
                            if self.out_matched[o] || node.credits[o] == 0 {
                                continue;
                            }
                            self.requesters.clear_all();
                            let mut have = false;
                            for i in 0..ports {
                                if !self.in_matched[i] && !node.voq[i * ports + o].is_empty() {
                                    self.requesters.set(i);
                                    have = true;
                                }
                            }
                            if !have {
                                continue;
                            }
                            if let Some(i) = node.grant_arb[o].arbitrate(&self.requesters) {
                                self.grants_to_input[i].set(o);
                                any = true;
                            }
                        }
                        if !any {
                            break;
                        }
                        for i in 0..ports {
                            if self.in_matched[i] || self.grants_to_input[i].is_empty() {
                                continue;
                            }
                            if let Some(o) = node.accept_arb[i].arbitrate(&self.grants_to_input[i])
                            {
                                self.in_matched[i] = true;
                                self.out_matched[o] = true;
                                node.grant_arb[o].advance_past(i);
                                node.accept_arb[i].advance_past(o);
                                self.matched.push((i, o));
                            }
                        }
                    }
                }
                for k in 0..self.matched.len() {
                    let (i, o) = self.matched[k];
                    let cell = {
                        let node = &mut self.nodes[level as usize][sw];
                        let mut cell = node.voq[i * ports + o]
                            .pop_front()
                            // lint:allow(panic-free): the maximal matching
                            // only pairs ports with a queued cell
                            .expect("matched pair without a queued cell");
                        cell.grant_slot = slot;
                        node.input_occupancy[i] -= 1;
                        node.credits[o] -= 1;
                        cell
                    };
                    // Credit for hosts feeding leaf down-ports: a host
                    // sink never consumes switch credits, so restore
                    // the decrement for host-bound ports.
                    let Some(hop) = self.nodes[level as usize][sw].down[o] else {
                        // lint:allow(panic-free): routing never selects
                        // the top level's unused up-side, so a matched
                        // pair always has a cable
                        panic!("matched cell bound for an unwired port")
                    };
                    if matches!(hop, Hop::Host(_)) {
                        self.nodes[level as usize][sw].credits[o] += 1;
                    }
                    let Some(credit_to) = self.nodes[level as usize][sw].up[i] else {
                        // lint:allow(panic-free): cells only arrive on
                        // wired inputs, so the credit return is always
                        // defined
                        panic!("credit return for an unwired input")
                    };
                    self.credit_flights.push_back((slot + d, credit_to));
                    self.cell_flights.push_back((slot + d, hop, cell));
                }
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        // Host injection, credit-gated.
        let t = self.cfg.topo;
        let m = t.m();
        let d = self.cfg.link_delay;
        for h in 0..t.hosts() {
            if self.host_credits[h] > 0 {
                if let Some(cell) = self.host_queues[h].pop_front() {
                    self.host_credits[h] -= 1;
                    let leaf = t.leaf_of(h);
                    self.cell_flights
                        .push_back((slot + d, Hop::Switch(0, leaf, h % m), cell));
                }
            } else if !self.host_queues[h].is_empty() {
                obs.credit_stall(t.leaf_of(h), h % m);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            self.host_queues[a.src].push_back(cell);
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
        report.set_extra("stages", self.cfg.topo.stages() as f64);
    }

    fn resident_cells(&self) -> Option<u64> {
        let mut n = self.cell_flights.len();
        n += self.host_queues.iter().map(VecDeque::len).sum::<usize>();
        for level in &self.nodes {
            for node in level {
                n += node.voq.iter().map(VecDeque::len).sum::<usize>();
            }
        }
        Some(n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn run_clos(radix: usize, levels: u32, load: f64, seed: u64) -> EngineReport {
        let topo = MultiLevelClos::new(radix, levels);
        let mut fab = MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2));
        let mut tr = BernoulliUniform::new(topo.hosts(), load, &SeedSequence::new(seed));
        fab.run(&mut tr, &EngineConfig::new(1_000, 8_000))
    }

    fn stages(r: &EngineReport) -> u32 {
        r.extra("stages").unwrap() as u32
    }

    #[test]
    fn topology_arithmetic() {
        let t = MultiLevelClos::new(8, 2);
        assert_eq!(t.hosts(), 16);
        assert_eq!(t.switches_per_level(), 4);
        assert_eq!(t.stages(), 3);
        let deep = MultiLevelClos::new(4, 4);
        assert_eq!(deep.hosts(), 16, "same host count, deeper tree");
        assert_eq!(deep.stages(), 7);
    }

    #[test]
    fn ascent_heights() {
        let t = MultiLevelClos::new(4, 3); // m=2, 8 hosts, leaves 0..3
        assert_eq!(t.ascent(0, 1), 0, "same leaf");
        assert_eq!(t.ascent(0, 2), 1, "adjacent leaves share level-1");
        assert_eq!(t.ascent(0, 7), 2, "opposite halves need the top");
    }

    #[test]
    fn single_level_is_one_switch() {
        let r = run_clos(8, 1, 0.5, 1);
        assert_eq!(stages(&r), 1);
        assert!((r.throughput - 0.5).abs() < 0.03);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn two_level_carries_load_lossless_in_order() {
        let r = run_clos(8, 2, 0.5, 2);
        assert!((r.throughput - 0.5).abs() < 0.04, "thr {}", r.throughput);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn four_level_radix4_works_too() {
        // 16 hosts through a 7-stage fabric of radix-4 switches.
        let r = run_clos(4, 4, 0.3, 3);
        assert_eq!(stages(&r), 7);
        assert!((r.throughput - 0.3).abs() < 0.04, "thr {}", r.throughput);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn section_6c_in_motion_fewer_stages_less_latency() {
        // Same 16 hosts, same load, same links: the 3-stage radix-8
        // fabric beats the 7-stage radix-4 fabric on latency — §VI.C's
        // "each stage contributes to latency", simulated.
        let big_radix = run_clos(8, 2, 0.2, 4);
        let small_radix = run_clos(4, 4, 0.2, 4);
        assert!(
            small_radix.mean_delay > big_radix.mean_delay + 4.0,
            "7-stage {} vs 3-stage {}",
            small_radix.mean_delay,
            big_radix.mean_delay
        );
    }

    #[test]
    fn multilevel_runs_are_deterministic() {
        let a = run_clos(8, 2, 0.4, 9);
        let b = run_clos(8, 2, 0.4, 9);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn expansion_tables_match_digit_formulas() {
        // The wiring tables read off the compiled expansion must equal
        // the closed-form digit rules this simulator historically
        // computed inline — port for port, switch for switch.
        for (radix, levels) in [(4usize, 1u32), (4, 3), (6, 2), (8, 2)] {
            let topo = MultiLevelClos::new(radix, levels);
            let fab = MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2));
            let ports = 2 * topo.m();
            for level in 0..levels {
                for sw in 0..topo.switches_per_level() {
                    for port in 0..ports {
                        let table = fab.nodes[level as usize][sw].down[port];
                        let top_up = level == levels - 1 && port >= topo.m();
                        if top_up {
                            assert!(table.is_none(), "top up-side must be unwired");
                            assert!(fab.nodes[level as usize][sw].up[port].is_none());
                            continue;
                        }
                        let formula = fab.downstream(level, sw, port);
                        assert_eq!(
                            format!("{table:?}"),
                            format!("{:?}", Some(formula)),
                            "down r{radix} L{levels} ({level},{sw},{port})"
                        );
                        let table_up = fab.nodes[level as usize][sw].up[port];
                        let formula_up = fab.upstream(level, sw, port);
                        assert_eq!(
                            format!("{table_up:?}"),
                            format!("{:?}", Some(formula_up)),
                            "up r{radix} L{levels} ({level},{sw},{port})"
                        );
                    }
                }
            }
        }
    }
}
