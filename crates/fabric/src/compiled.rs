//! A slotted cell simulator for *any* expanded topology.
//!
//! [`CompiledFabric`] consumes an [`ExpandedFabric`] — fat tree,
//! dragonfly or full mesh — and runs it on the shared engine with the
//! same mechanics as the hand-built simulators: input-buffered crossbars
//! (buffer-placement option 3), iterative round-robin matching per
//! switch per slot, credit flow control on every switch-to-switch link
//! with a deterministic RTT, per-flow stable minimal routing
//! ([`ExpandedFabric::route`]), and losslessness asserted rather than
//! measured.
//!
//! Unlike [`crate::multilevel`], whose per-switch VOQ array is dense
//! (ports² queues per switch — about a gigabyte of empty `VecDeque`s at
//! 32768 ports), the compiled fabric keys VOQs sparsely by
//! (input, output) and skips idle switches entirely, so the 32K-port
//! acceptance instances simulate in bounded memory. The scheduling
//! order (switches by id, outputs ascending, iterative grant/accept) is
//! identical, and the per-switch matchings agree with the dense
//! implementation because absent VOQs contribute no requests.
//!
//! Dragonfly minimal routes traverse local→global→local hops whose
//! credit loops are cyclic; at the moderate loads used for latency
//! studies this is benign, but the compiled fabric makes no
//! deadlock-freedom claim for dragonflies driven to saturation.

use crate::expand::{ExpandedFabric, Peer};
use crate::ids::{EntityId, HostId, SwitchId};
use crate::spec::{TopologyError, TopologySpec};
use osmosis_sched::arbiter::{BitSet, RoundRobinArbiter};
use osmosis_sim::engine::{EngineConfig, EngineReport, Observer, TraceSink};
use osmosis_switch::driven::{run_switch, CellSwitch};
use osmosis_switch::Cell;
use osmosis_traffic::{Arrival, SequenceChecker, SequenceStamper, TrafficGen};
use std::collections::{BTreeMap, VecDeque};

use crate::multistage::Placement;

/// Destination of a sent cell.
#[derive(Debug, Clone, Copy)]
enum Hop {
    Host(u32),
    /// (switch, input port).
    Switch(u32, u32),
}

/// Destination of a returned credit.
#[derive(Debug, Clone, Copy)]
enum Credit {
    Host(u32),
    /// (switch, output port).
    Switch(u32, u32),
}

/// Per-switch simulation state. VOQs are keyed sparsely: a queue exists
/// only while it holds cells, so idle regions of a 32K-port fabric cost
/// nothing per slot.
struct CompiledNode {
    voq: BTreeMap<(u32, u32), VecDeque<Cell>>,
    input_occupancy: Vec<u32>,
    /// Cells resident in this switch (skip the matching loop at 0).
    total: u32,
    /// Send credits per output (usize::MAX for host sinks, 0 for
    /// unconnected ports — never granted).
    credits: Vec<usize>,
    grant_arb: Vec<RoundRobinArbiter>,
    accept_arb: Vec<RoundRobinArbiter>,
    downstream: Vec<Option<Hop>>,
    upstream: Vec<Option<Credit>>,
}

/// The compiled-topology fabric simulator.
pub struct CompiledFabric {
    spec: TopologySpec,
    fab: ExpandedFabric,
    buffer_cells: usize,
    nodes: Vec<CompiledNode>,
    host_queues: Vec<VecDeque<Cell>>,
    host_credits: Vec<usize>,
    cell_flights: VecDeque<(u64, Hop, Cell)>,
    credit_flights: VecDeque<(u64, Credit)>,
    stamper: SequenceStamper,
    checker: SequenceChecker,
    next_id: u64,
    requesters: BitSet,
    grants_to_input: Vec<BitSet>,
    in_matched: Vec<bool>,
    out_matched: Vec<bool>,
}

impl CompiledFabric {
    /// Expand `spec` and build the simulator. Panics on an invalid spec;
    /// use [`try_new`](Self::try_new) where the spec comes from external
    /// input (CLI flags, sweep grids).
    pub fn new(spec: TopologySpec) -> Self {
        match Self::try_new(spec) {
            Ok(fab) => fab,
            // lint:allow(panic-free): documented panic contract of the
            // infallible constructor; `try_new` is the checked form
            Err(e) => panic!("{e}"),
        }
    }

    /// Expand `spec` and build the simulator, rejecting invalid specs
    /// with a typed error.
    pub fn try_new(spec: TopologySpec) -> Result<Self, TopologyError> {
        if spec.placement != Placement::InputOnly {
            return Err(TopologyError::UnsupportedPlacement {
                placement: spec.placement,
            });
        }
        let fab = ExpandedFabric::expand(spec)?;
        Ok(Self::over(fab))
    }

    /// Build the simulator over an already-expanded graph.
    pub fn over(fab: ExpandedFabric) -> Self {
        let spec = *fab.spec();
        let radix = spec.radix;
        let buffer = spec.buffer_cells();
        let nodes = fab
            .switches
            .ids()
            .map(|sw| {
                let mut downstream = Vec::with_capacity(radix);
                let mut upstream = Vec::with_capacity(radix);
                let mut credits = Vec::with_capacity(radix);
                for local in 0..radix {
                    let peer = fab.ports[fab.port_id(sw, local as u32)].peer;
                    let (down, credit, up) = match peer {
                        Peer::Host(h) => (
                            Some(Hop::Host(h.raw())),
                            usize::MAX,
                            Some(Credit::Host(h.raw())),
                        ),
                        Peer::Port(far) => {
                            let far_sw = fab.ports[far].switch.raw();
                            let far_local = fab.ports[far].local;
                            (
                                Some(Hop::Switch(far_sw, far_local)),
                                buffer,
                                Some(Credit::Switch(far_sw, far_local)),
                            )
                        }
                        Peer::Unconnected => (None, 0, None),
                    };
                    downstream.push(down);
                    credits.push(credit);
                    upstream.push(up);
                }
                CompiledNode {
                    voq: BTreeMap::new(),
                    input_occupancy: vec![0; radix],
                    total: 0,
                    credits,
                    grant_arb: (0..radix).map(|_| RoundRobinArbiter::new(radix)).collect(),
                    accept_arb: (0..radix).map(|_| RoundRobinArbiter::new(radix)).collect(),
                    downstream,
                    upstream,
                }
            })
            .collect();
        let hosts = fab.hosts.len();
        CompiledFabric {
            spec,
            buffer_cells: buffer,
            nodes,
            host_queues: (0..hosts).map(|_| VecDeque::new()).collect(),
            host_credits: vec![buffer; hosts],
            cell_flights: VecDeque::new(),
            credit_flights: VecDeque::new(),
            stamper: SequenceStamper::new(),
            checker: SequenceChecker::new(),
            next_id: 0,
            requesters: BitSet::new(radix),
            grants_to_input: (0..radix).map(|_| BitSet::new(radix)).collect(),
            in_matched: vec![false; radix],
            out_matched: vec![false; radix],
            fab,
        }
    }

    /// The expanded graph under simulation.
    pub fn expanded(&self) -> &ExpandedFabric {
        &self.fab
    }

    /// Run traffic through the fabric on the shared engine. The stage
    /// and switch counts of the topology ride along as report extras.
    pub fn run(&mut self, traffic: &mut dyn TrafficGen, cfg: &EngineConfig) -> EngineReport {
        run_switch(self, traffic, cfg)
    }

    /// Match one switch for one slot: iterative round-robin grant/accept
    /// over the sparsely occupied VOQs, mirroring the dense simulators'
    /// order (outputs ascending per iteration).
    fn match_switch(&mut self, sw: usize, slot: u64) -> Vec<(u32, u32)> {
        let radix = self.spec.radix;
        let iterations = self.spec.iterations;
        let node = &mut self.nodes[sw];
        let mut matched: Vec<(u32, u32)> = Vec::new();
        // Requesting inputs per output, from the occupied VOQs only.
        let mut out_reqs: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &(i, o) in node.voq.keys() {
            out_reqs.entry(o).or_default().push(i);
        }
        self.in_matched[..radix].fill(false);
        self.out_matched[..radix].fill(false);
        for _ in 0..iterations {
            for g in self.grants_to_input.iter_mut() {
                g.clear_all();
            }
            let mut any = false;
            for (&o, ins) in out_reqs.iter() {
                if self.out_matched[o as usize] || node.credits[o as usize] == 0 {
                    continue;
                }
                self.requesters.clear_all();
                let mut have = false;
                for &i in ins {
                    if !self.in_matched[i as usize] {
                        self.requesters.set(i as usize);
                        have = true;
                    }
                }
                if !have {
                    continue;
                }
                if let Some(i) = node.grant_arb[o as usize].arbitrate(&self.requesters) {
                    self.grants_to_input[i].set(o as usize);
                    any = true;
                }
            }
            if !any {
                break;
            }
            for i in 0..radix {
                if self.in_matched[i] || self.grants_to_input[i].is_empty() {
                    continue;
                }
                if let Some(o) = node.accept_arb[i].arbitrate(&self.grants_to_input[i]) {
                    self.in_matched[i] = true;
                    self.out_matched[o] = true;
                    node.grant_arb[o].advance_past(i);
                    node.accept_arb[i].advance_past(o);
                    matched.push((i as u32, o as u32));
                }
            }
        }
        let _ = slot;
        matched
    }
}

impl CellSwitch for CompiledFabric {
    fn ports(&self) -> usize {
        self.host_queues.len()
    }

    fn configure(&mut self, cfg: &EngineConfig) {
        self.checker = SequenceChecker::new();
        // Engine-level buffer override re-arms the credit loops (valid on
        // a fabric that has not run yet).
        if let Some(b) = cfg.buffer_cells {
            if b != self.buffer_cells {
                assert!(b >= 1);
                self.buffer_cells = b;
                for node in self.nodes.iter_mut() {
                    for (c, d) in node.credits.iter_mut().zip(node.downstream.iter()) {
                        if let Some(Hop::Switch(..)) = d {
                            *c = b;
                        }
                    }
                }
                self.host_credits.iter_mut().for_each(|c| *c = b);
            }
        }
    }

    fn arbitrate<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        let d = self.spec.link_delay;
        let buffer_cells = self.buffer_cells;

        // Cell arrivals from links.
        while self
            .cell_flights
            .front()
            .is_some_and(|&(at, _, _)| at == slot)
        {
            let Some((_, hop, cell)) = self.cell_flights.pop_front() else {
                break;
            };
            match hop {
                Hop::Host(h) => {
                    debug_assert_eq!(cell.dst, h as usize);
                    self.checker.record(cell.src, cell.dst, cell.seq);
                    obs.cell_delivered_flow(h as usize, cell.inject_slot, cell.src, cell.seq);
                }
                Hop::Switch(sw, in_port) => {
                    let out = self.fab.route(
                        SwitchId::new(sw),
                        in_port,
                        HostId::from_index(cell.src),
                        HostId::from_index(cell.dst),
                    );
                    let node = &mut self.nodes[sw as usize];
                    node.input_occupancy[in_port as usize] += 1;
                    assert!(
                        node.input_occupancy[in_port as usize] as usize <= buffer_cells,
                        "buffer overflow at switch {sw} port {in_port}"
                    );
                    node.total += 1;
                    obs.note_queue_depth(node.input_occupancy[in_port as usize] as usize);
                    node.voq.entry((in_port, out)).or_default().push_back(cell);
                }
            }
        }

        // Credit returns.
        while self
            .credit_flights
            .front()
            .is_some_and(|&(at, _)| at == slot)
        {
            let Some((_, credit)) = self.credit_flights.pop_front() else {
                break;
            };
            match credit {
                Credit::Host(h) => self.host_credits[h as usize] += 1,
                Credit::Switch(sw, port) => {
                    self.nodes[sw as usize].credits[port as usize] += 1;
                }
            }
        }

        // Matchings, switch by switch; idle switches cost nothing.
        for sw in 0..self.nodes.len() {
            if self.nodes[sw].total == 0 {
                continue;
            }
            let matched = self.match_switch(sw, slot);
            for (i, o) in matched {
                let (cell, down, credit_to) = {
                    let node = &mut self.nodes[sw];
                    let Some(queue) = node.voq.get_mut(&(i, o)) else {
                        // lint:allow(panic-free): the matching only pairs
                        // ports with an occupied VOQ
                        panic!("matched pair without a queue");
                    };
                    let Some(mut cell) = queue.pop_front() else {
                        // lint:allow(panic-free): occupied-VOQ invariant,
                        // as above
                        panic!("matched pair with an empty queue");
                    };
                    if queue.is_empty() {
                        node.voq.remove(&(i, o));
                    }
                    cell.grant_slot = slot;
                    node.input_occupancy[i as usize] -= 1;
                    node.total -= 1;
                    // Host sinks drain a cell per slot and are not
                    // credit-controlled; only switch links consume.
                    if let Some(Hop::Switch(..)) = node.downstream[o as usize] {
                        node.credits[o as usize] -= 1;
                    }
                    (cell, node.downstream[o as usize], node.upstream[i as usize])
                };
                let Some(down) = down else {
                    // lint:allow(panic-free): routing never selects an
                    // unconnected output on a validated expansion
                    panic!("matched cell bound for an unconnected port");
                };
                if let Some(credit) = credit_to {
                    self.credit_flights.push_back((slot + d, credit));
                }
                self.cell_flights.push_back((slot + d, down, cell));
            }
        }
    }

    fn deliver<T: TraceSink>(&mut self, slot: u64, obs: &mut Observer<'_, T>) {
        let d = self.spec.link_delay;
        for h in 0..self.host_queues.len() {
            if self.host_credits[h] > 0 {
                if let Some(cell) = self.host_queues[h].pop_front() {
                    self.host_credits[h] -= 1;
                    let (sw, local) = self.fab.host_attach(HostId::from_index(h));
                    self.cell_flights
                        .push_back((slot + d, Hop::Switch(sw.raw(), local), cell));
                }
            } else if !self.host_queues[h].is_empty() {
                let (sw, local) = self.fab.host_attach(HostId::from_index(h));
                obs.credit_stall(sw.index(), local as usize);
            }
        }
    }

    fn admit<T: TraceSink>(&mut self, arrivals: &[Arrival], slot: u64, obs: &mut Observer<'_, T>) {
        for a in arrivals {
            let seq = self.stamper.stamp(a.src, a.dst);
            let cell = Cell::new(self.next_id, a.src, a.dst, a.class, seq, slot);
            self.next_id += 1;
            obs.cell_injected(a.src, a.dst);
            self.host_queues[a.src].push_back(cell);
        }
    }

    fn finish(&mut self, report: &mut EngineReport) {
        report.reordered = self.checker.reordered();
        report.set_extra("stages", self.spec.stages() as f64);
        report.set_extra("switches", self.nodes.len() as f64);
    }

    fn resident_cells(&self) -> Option<u64> {
        let mut n = self.cell_flights.len() as u64;
        n += self.host_queues.iter().map(|q| q.len() as u64).sum::<u64>();
        n += self.nodes.iter().map(|node| node.total as u64).sum::<u64>();
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osmosis_sim::SeedSequence;
    use osmosis_traffic::BernoulliUniform;

    fn run_spec(spec: TopologySpec, load: f64, seed: u64) -> EngineReport {
        let mut fab = CompiledFabric::new(spec);
        let hosts = fab.ports();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
        fab.run(&mut tr, &EngineConfig::new(300, 3_000))
    }

    #[test]
    fn compiled_two_level_matches_multilevel_semantics() {
        // Lossless, in order, throughput tracks offered load.
        for spec in [
            TopologySpec::two_level(8),
            TopologySpec::m_ary_fat_tree(8, 2),
            TopologySpec::fat_tree(4, 3),
        ] {
            let r = run_spec(spec, 0.3, 7);
            assert_eq!(r.reordered, 0, "{spec}");
            assert!(r.throughput > 0.2, "{spec}: {}", r.throughput);
            assert_eq!(r.extra("stages"), Some(spec.stages() as f64));
        }
    }

    #[test]
    fn compiled_dragonfly_and_mesh_run_clean() {
        for spec in [TopologySpec::dragonfly(8, 4), TopologySpec::full_mesh(8, 5)] {
            let r = run_spec(spec, 0.2, 11);
            assert_eq!(r.reordered, 0, "{spec}");
            assert!(r.throughput > 0.1, "{spec}: {}", r.throughput);
        }
    }

    #[test]
    fn compiled_rejects_unsupported_placement() {
        let mut spec = TopologySpec::two_level(8);
        spec.placement = Placement::OutputOnly;
        assert!(matches!(
            CompiledFabric::try_new(spec),
            Err(TopologyError::UnsupportedPlacement { .. })
        ));
    }

    #[test]
    fn compiled_runs_are_deterministic() {
        let a = run_spec(TopologySpec::dragonfly(8, 4), 0.25, 42);
        let b = run_spec(TopologySpec::dragonfly(8, 4), 0.25, 42);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
