//! Declarative topology specifications — the compiler's source language.
//!
//! A [`TopologySpec`] is a compact, serializable description of a fabric:
//! family (fat-tree / dragonfly / full-mesh), switch radix, scale knob
//! (levels / groups / switch count) and the link, buffer and scheduling
//! parameters every simulated instance needs. The expansion pass in
//! [`crate::expand`] turns a spec deterministically into a complete typed
//! fabric graph; the closed-form accessors here (host count, stage count)
//! agree with the expanded instance by construction and are checked by
//! property tests.
//!
//! Specs parse from a one-line grammar so a single CLI flag can select
//! topology family and scale:
//!
//! ```text
//! fat-tree:radix=64,levels=2            # the §V 2048-port instance
//! fat-tree:radix=64,levels=3,planes=1   # 32768-port m-ary variant
//! dragonfly:radix=64,groups=64          # 32768 hosts, 2048 routers
//! full-mesh:radix=64,switches=32        # §VI.C's flat alternative
//! ```
//!
//! The per-flow hash functions used by every router live here too, as the
//! single source of truth: [`top_choice`] is the two-level spine hash of
//! §V (per-flow stable, so Table 1's ordering requirement survives the
//! multipath) and [`up_choice`] the per-level ascent hash of the
//! multilevel fabric. The hand-built simulators and the compiled expansion
//! share these bit for bit — that is what keeps the pinned fingerprints
//! identical across the refactor.

use crate::multistage::Placement;
use core::fmt;
use core::str::FromStr;

/// FNV-1a accumulation over `words`, finalized with one SplitMix64 round.
///
/// Raw FNV low bits are poorly mixed for tiny moduli (with m = 2 the raw
/// low bit concentrates 4× the average load on some links); the finalizer
/// fixes the distribution. Both flow hashes build on this.
pub fn flow_hash(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in words {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// The stable per-flow choice among `n` equivalent top-level paths
/// (spines, global channels): the §V spine hash.
pub fn top_choice(src: usize, dst: usize, n: usize) -> usize {
    debug_assert!(n > 0);
    ((flow_hash(&[src as u64, dst as u64]) >> 32) % n as u64) as usize
}

/// The stable per-flow up-port choice among `m` uplinks at ascent step
/// `level` of a folded Clos.
pub fn up_choice(src: usize, dst: usize, level: u32, m: usize) -> usize {
    debug_assert!(m > 0);
    ((flow_hash(&[src as u64, dst as u64, level as u64]) >> 32) % m as u64) as usize
}

/// Why a [`TopologySpec`] (or a topology constructor argument) was
/// rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The switch radix is unusable for the requested family.
    InvalidRadix {
        /// The rejected radix.
        radix: usize,
        /// The smallest radix the family accepts.
        min: usize,
        /// Whether the family additionally needs an even radix.
        even: bool,
    },
    /// Fat trees need between 1 and 16 levels.
    InvalidLevels {
        /// The rejected level count.
        levels: u32,
    },
    /// Fat trees come in 1-plane (m-ary) or 2-plane (full folded-Clos)
    /// variants only.
    InvalidPlanes {
        /// The rejected plane count.
        planes: u32,
    },
    /// Dragonfly group count out of range for the radix.
    InvalidGroups {
        /// The rejected group count.
        groups: u32,
        /// The largest balanced group count the radix supports (a·h + 1).
        max: u32,
    },
    /// Full-mesh switch count out of range for the radix (each switch
    /// needs `switches − 1` mesh ports and ≥ 1 host port).
    InvalidMeshSize {
        /// The rejected switch count.
        switches: u32,
        /// The radix it was checked against.
        radix: usize,
    },
    /// No fat tree of this radix reaches the requested port count within
    /// the supported level range.
    UnreachablePortCount {
        /// The radix searched.
        radix: usize,
        /// The unreachable port target.
        ports: u64,
    },
    /// The expansion would overflow the dense `u32` id space.
    TooLarge {
        /// Which entity table overflowed.
        entity: &'static str,
        /// The computed entity count.
        count: u64,
    },
    /// Links need at least one slot of flight time.
    ZeroLinkDelay,
    /// Input buffers need at least one cell of capacity.
    ZeroBuffer,
    /// Schedulers need at least one matching iteration.
    ZeroIterations,
    /// The compiled simulator models buffer-placement option 3 only.
    UnsupportedPlacement {
        /// The rejected placement.
        placement: Placement,
    },
    /// The spec string did not parse.
    Parse(
        /// What was wrong with it.
        String,
    ),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidRadix { radix, min, even } => {
                let parity = if *even { "an even number" } else { "a number" };
                write!(f, "switch radix {radix} is not {parity} >= {min}")
            }
            TopologyError::InvalidLevels { levels } => {
                write!(f, "fat-tree level count {levels} is outside 1..=16")
            }
            TopologyError::InvalidPlanes { planes } => {
                write!(f, "fat-tree plane count {planes} is not 1 or 2")
            }
            TopologyError::InvalidGroups { groups, max } => {
                write!(f, "dragonfly group count {groups} is outside 1..={max}")
            }
            TopologyError::InvalidMeshSize { switches, radix } => {
                write!(
                    f,
                    "full-mesh switch count {switches} is outside 1..={radix} \
                     for radix {radix}"
                )
            }
            TopologyError::UnreachablePortCount { radix, ports } => {
                write!(f, "no radix-{radix} fat tree reaches {ports} ports")
            }
            TopologyError::TooLarge { entity, count } => {
                write!(f, "{count} {entity} overflow the dense u32 id space")
            }
            TopologyError::ZeroLinkDelay => {
                write!(f, "links need at least one slot of flight time")
            }
            TopologyError::ZeroBuffer => {
                write!(f, "input buffers need at least one cell of capacity")
            }
            TopologyError::ZeroIterations => {
                write!(f, "schedulers need at least one matching iteration")
            }
            TopologyError::UnsupportedPlacement { placement } => {
                write!(
                    f,
                    "the compiled fabric models input-only buffering; \
                     {placement:?} is a multistage-simulator option"
                )
            }
            TopologyError::Parse(why) => write!(f, "bad topology spec: {why}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The topology family and its scale knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyFamily {
    /// A folded Clos of `levels` levels. With `planes == 2` this is the
    /// full fat tree (2·(k/2)^L hosts; at L = 2 exactly the §V
    /// leaf–spine instance); with `planes == 1` the m-ary variant of
    /// [`crate::multilevel`] ((k/2)^L hosts, every switch half-used at
    /// the edges).
    FatTree {
        /// Switch levels (≥ 1).
        levels: u32,
        /// Wiring planes below the top level: 1 or 2.
        planes: u32,
    },
    /// A dragonfly of `groups` groups in the balanced a = 2p = 2h
    /// configuration derived from the radix.
    Dragonfly {
        /// Number of groups (1..= a·h + 1).
        groups: u32,
    },
    /// A single stage of `switches` fully interconnected switches — the
    /// flat alternative whose port count the paper's §VI.C scaling
    /// argument shows cannot reach fabric scale.
    FullMesh {
        /// Number of switches (1..= radix).
        switches: u32,
    },
}

/// Input-buffer sizing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferSizing {
    /// Size each input buffer for the credit-loop round trip:
    /// 2·link_delay + 2 cells (the Fig. 4 law — never throttles).
    RttSized,
    /// A fixed capacity in cells.
    Cells(usize),
}

/// The balanced dragonfly shape derived from a switch radix: p hosts,
/// a − 1 local ports and h global ports per router with a = 2h, p = h.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DragonflyShape {
    /// Hosts per router (p).
    pub hosts_per_router: usize,
    /// Routers per group (a).
    pub routers_per_group: usize,
    /// Global channels per router (h).
    pub globals_per_router: usize,
}

impl DragonflyShape {
    /// The balanced shape for `radix`: h = ⌊(radix + 1) / 4⌋, a = 2h,
    /// p = h, using p + (a − 1) + h = 4h − 1 ≤ radix ports per router.
    pub fn for_radix(radix: usize) -> Result<Self, TopologyError> {
        let h = (radix + 1) / 4;
        if h == 0 {
            return Err(TopologyError::InvalidRadix {
                radix,
                min: 3,
                even: false,
            });
        }
        Ok(DragonflyShape {
            hosts_per_router: h,
            routers_per_group: 2 * h,
            globals_per_router: h,
        })
    }

    /// The largest balanced group count: every router's h global channels
    /// reaching a distinct group → a·h + 1 groups.
    pub fn max_groups(&self) -> u32 {
        (self.routers_per_group * self.globals_per_router + 1) as u32
    }
}

/// A declarative fabric description, deterministically expandable into an
/// [`crate::expand::ExpandedFabric`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec {
    /// Family and scale.
    pub family: TopologyFamily,
    /// Switch radix — identical in every stage (§IV.A).
    pub radix: usize,
    /// One-way link flight time in cell slots.
    pub link_delay: u64,
    /// Input-buffer sizing.
    pub buffer: BufferSizing,
    /// Matching iterations per switch per slot.
    pub iterations: usize,
    /// Buffer placement (Fig. 2 option; the compiled simulator supports
    /// option 3, `InputOnly`).
    pub placement: Placement,
}

impl TopologySpec {
    /// A full fat tree (2 planes) of `levels` levels: 2·(k/2)^L hosts.
    pub fn fat_tree(radix: usize, levels: u32) -> Self {
        TopologySpec {
            family: TopologyFamily::FatTree { levels, planes: 2 },
            radix,
            link_delay: 2,
            buffer: BufferSizing::RttSized,
            iterations: 3,
            placement: Placement::InputOnly,
        }
    }

    /// The two-level leaf–spine instance of §V (k²/2 hosts).
    pub fn two_level(radix: usize) -> Self {
        Self::fat_tree(radix, 2)
    }

    /// The 1-plane m-ary folded Clos of [`crate::multilevel`]:
    /// (k/2)^L hosts.
    pub fn m_ary_fat_tree(radix: usize, levels: u32) -> Self {
        TopologySpec {
            family: TopologyFamily::FatTree { levels, planes: 1 },
            ..Self::fat_tree(radix, levels)
        }
    }

    /// A balanced dragonfly of `groups` groups.
    pub fn dragonfly(radix: usize, groups: u32) -> Self {
        TopologySpec {
            family: TopologyFamily::Dragonfly { groups },
            ..Self::fat_tree(radix, 1)
        }
    }

    /// A full mesh of `switches` switches.
    pub fn full_mesh(radix: usize, switches: u32) -> Self {
        TopologySpec {
            family: TopologyFamily::FullMesh { switches },
            ..Self::fat_tree(radix, 1)
        }
    }

    /// Replace the link flight time.
    pub fn with_link_delay(mut self, slots: u64) -> Self {
        self.link_delay = slots;
        self
    }

    /// Replace the buffer sizing with a fixed capacity.
    pub fn with_buffer_cells(mut self, cells: usize) -> Self {
        self.buffer = BufferSizing::Cells(cells);
        self
    }

    /// Replace the matching iteration count.
    pub fn with_iterations(mut self, iters: usize) -> Self {
        self.iterations = iters;
        self
    }

    /// Check every parameter, returning the first violation.
    pub fn validate(&self) -> Result<(), TopologyError> {
        match self.family {
            TopologyFamily::FatTree { levels, planes } => {
                if self.radix < 4 || !self.radix.is_multiple_of(2) {
                    return Err(TopologyError::InvalidRadix {
                        radix: self.radix,
                        min: 4,
                        even: true,
                    });
                }
                if !(1..=16).contains(&levels) {
                    return Err(TopologyError::InvalidLevels { levels });
                }
                if !(1..=2).contains(&planes) {
                    return Err(TopologyError::InvalidPlanes { planes });
                }
            }
            TopologyFamily::Dragonfly { groups } => {
                let shape = DragonflyShape::for_radix(self.radix)?;
                if groups < 1 || groups > shape.max_groups() {
                    return Err(TopologyError::InvalidGroups {
                        groups,
                        max: shape.max_groups(),
                    });
                }
            }
            TopologyFamily::FullMesh { switches } => {
                if self.radix < 1 {
                    return Err(TopologyError::InvalidRadix {
                        radix: self.radix,
                        min: 1,
                        even: false,
                    });
                }
                if switches < 1 || switches as u64 > self.radix as u64 {
                    return Err(TopologyError::InvalidMeshSize {
                        switches,
                        radix: self.radix,
                    });
                }
            }
        }
        let hosts = self.hosts();
        if hosts > u32::MAX as u64 {
            return Err(TopologyError::TooLarge {
                entity: "hosts",
                count: hosts,
            });
        }
        let ports = self.switch_count() * self.radix as u64;
        if ports > u32::MAX as u64 {
            return Err(TopologyError::TooLarge {
                entity: "ports",
                count: ports,
            });
        }
        if self.link_delay < 1 {
            return Err(TopologyError::ZeroLinkDelay);
        }
        if let BufferSizing::Cells(0) = self.buffer {
            return Err(TopologyError::ZeroBuffer);
        }
        if self.iterations < 1 {
            return Err(TopologyError::ZeroIterations);
        }
        Ok(())
    }

    /// Host count in closed form (for a valid spec; saturating on
    /// overflow so [`validate`](Self::validate) can report it).
    pub fn hosts(&self) -> u64 {
        let k = self.radix as u64;
        match self.family {
            TopologyFamily::FatTree { levels, planes } => (k / 2)
                .checked_pow(levels)
                .and_then(|n| n.checked_mul(planes as u64))
                .unwrap_or(u64::MAX),
            TopologyFamily::Dragonfly { groups } => match DragonflyShape::for_radix(self.radix) {
                Ok(s) => groups as u64 * s.routers_per_group as u64 * s.hosts_per_router as u64,
                Err(_) => 0,
            },
            TopologyFamily::FullMesh { switches } => {
                let n = switches as u64;
                n * (k + 1).saturating_sub(n)
            }
        }
    }

    /// Switch count in closed form (saturating on overflow).
    pub fn switch_count(&self) -> u64 {
        let m = (self.radix / 2) as u64;
        match self.family {
            TopologyFamily::FatTree { levels, planes } => {
                // (L−1) plane levels of planes·m^(L−1) switches plus one
                // merged top level of m^(L−1); L = 1 degenerates to one
                // switch.
                let per_level = m.checked_pow(levels.saturating_sub(1)).unwrap_or(u64::MAX);
                per_level.saturating_mul((levels.saturating_sub(1) as u64) * planes as u64 + 1)
            }
            TopologyFamily::Dragonfly { groups } => match DragonflyShape::for_radix(self.radix) {
                Ok(s) => groups as u64 * s.routers_per_group as u64,
                Err(_) => 0,
            },
            TopologyFamily::FullMesh { switches } => switches as u64,
        }
    }

    /// Switch stages on the longest minimal route (the §VI.C comparison
    /// quantity): 2L−1 for fat trees, up to 4 for a dragonfly
    /// (router → gateway → remote gateway → destination router), 2 for a
    /// mesh.
    pub fn stages(&self) -> u32 {
        match self.family {
            TopologyFamily::FatTree { levels, .. } => 2 * levels.max(1) - 1,
            TopologyFamily::Dragonfly { groups } => {
                if groups == 1 {
                    2
                } else {
                    4
                }
            }
            TopologyFamily::FullMesh { switches } => {
                if switches == 1 {
                    1
                } else {
                    2
                }
            }
        }
    }

    /// Concrete input-buffer capacity in cells.
    pub fn buffer_cells(&self) -> usize {
        match self.buffer {
            BufferSizing::RttSized => (2 * self.link_delay + 2) as usize,
            BufferSizing::Cells(n) => n,
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family {
            TopologyFamily::FatTree { levels, planes } => {
                write!(
                    f,
                    "fat-tree:radix={},levels={levels},planes={planes}",
                    self.radix
                )
            }
            TopologyFamily::Dragonfly { groups } => {
                write!(f, "dragonfly:radix={},groups={groups}", self.radix)
            }
            TopologyFamily::FullMesh { switches } => {
                write!(f, "full-mesh:radix={},switches={switches}", self.radix)
            }
        }
    }
}

impl FromStr for TopologySpec {
    type Err = TopologyError;

    /// Parse `family:key=value,...`. Families: `fat-tree` (keys `radix`,
    /// `levels`, optional `planes`), `dragonfly` (`radix`, `groups`),
    /// `full-mesh` (`radix`, `switches`). Optional everywhere: `delay`,
    /// `buffer` (`rtt` or a cell count), `iters`.
    fn from_str(s: &str) -> Result<Self, TopologyError> {
        let bad = |why: String| TopologyError::Parse(why);
        let (family, rest) = s
            .split_once(':')
            .ok_or_else(|| bad(format!("missing ':' in {s:?}")))?;
        let mut radix: Option<usize> = None;
        let mut levels: Option<u32> = None;
        let mut planes: Option<u32> = None;
        let mut groups: Option<u32> = None;
        let mut switches: Option<u32> = None;
        let mut delay: Option<u64> = None;
        let mut buffer: Option<BufferSizing> = None;
        let mut iters: Option<usize> = None;
        for kv in rest.split(',').filter(|kv| !kv.is_empty()) {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| bad(format!("missing '=' in {kv:?}")))?;
            let num = || -> Result<u64, TopologyError> {
                value
                    .parse::<u64>()
                    .map_err(|_| bad(format!("{key}={value:?} is not a number")))
            };
            match key {
                "radix" => radix = Some(num()? as usize),
                "levels" => levels = Some(num()? as u32),
                "planes" => planes = Some(num()? as u32),
                "groups" => groups = Some(num()? as u32),
                "switches" => switches = Some(num()? as u32),
                "delay" => delay = Some(num()?),
                "iters" => iters = Some(num()? as usize),
                "buffer" => {
                    buffer = Some(if value == "rtt" {
                        BufferSizing::RttSized
                    } else {
                        BufferSizing::Cells(num()? as usize)
                    })
                }
                _ => return Err(bad(format!("unknown key {key:?}"))),
            }
        }
        let radix = radix.ok_or_else(|| bad("missing radix=".into()))?;
        let mut spec = match family {
            "fat-tree" => {
                let levels = levels.ok_or_else(|| bad("fat-tree needs levels=".into()))?;
                match planes {
                    Some(1) => TopologySpec::m_ary_fat_tree(radix, levels),
                    None | Some(2) => TopologySpec::fat_tree(radix, levels),
                    Some(p) => return Err(TopologyError::InvalidPlanes { planes: p }),
                }
            }
            "dragonfly" => {
                let groups = groups.ok_or_else(|| bad("dragonfly needs groups=".into()))?;
                TopologySpec::dragonfly(radix, groups)
            }
            "full-mesh" => {
                let switches = switches.ok_or_else(|| bad("full-mesh needs switches=".into()))?;
                TopologySpec::full_mesh(radix, switches)
            }
            other => return Err(bad(format!("unknown family {other:?}"))),
        };
        if let Some(d) = delay {
            spec.link_delay = d;
        }
        if let Some(b) = buffer {
            spec.buffer = b;
        }
        if let Some(i) = iters {
            spec.iterations = i;
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_hashes_match_legacy_simulators() {
        // The spine hash must equal TwoLevelFatTree::spine_of_flow and the
        // ascent hash MultiLevelClos::up_choice — the fingerprints of both
        // pinned simulators rest on this.
        let t = crate::topology::TwoLevelFatTree::new(8);
        for src in 0..t.hosts() {
            let dst = (src * 7 + 3) % t.hosts();
            assert_eq!(top_choice(src, dst, t.spines()), t.spine_of_flow(src, dst));
        }
        let c = crate::multilevel::MultiLevelClos::new(6, 3);
        for src in 0..c.hosts() {
            let dst = (src * 5 + 1) % c.hosts();
            for level in 0..2 {
                assert_eq!(
                    up_choice(src, dst, level, c.m()),
                    c.up_choice(src, dst, level)
                );
            }
        }
    }

    #[test]
    fn closed_forms_match_paper_instances() {
        assert_eq!(TopologySpec::two_level(64).hosts(), 2_048);
        assert_eq!(TopologySpec::two_level(64).switch_count(), 64 + 32);
        assert_eq!(TopologySpec::fat_tree(32, 3).hosts(), 8_192);
        assert_eq!(TopologySpec::m_ary_fat_tree(64, 3).hosts(), 32_768);
        assert_eq!(TopologySpec::fat_tree(8, 5).hosts(), 2_048);
        // Balanced dragonfly at radix 64: h = p = 16, a = 32.
        let s = DragonflyShape::for_radix(64).unwrap();
        assert_eq!((s.hosts_per_router, s.routers_per_group), (16, 32));
        assert_eq!(s.max_groups(), 513);
        assert_eq!(TopologySpec::dragonfly(64, 64).hosts(), 32_768);
        assert_eq!(TopologySpec::dragonfly(64, 16).hosts(), 8_192);
        assert_eq!(TopologySpec::full_mesh(64, 32).hosts(), 32 * 33);
    }

    #[test]
    fn stage_counts() {
        assert_eq!(TopologySpec::two_level(64).stages(), 3);
        assert_eq!(TopologySpec::fat_tree(8, 5).stages(), 9);
        assert_eq!(TopologySpec::dragonfly(64, 64).stages(), 4);
        assert_eq!(TopologySpec::dragonfly(64, 1).stages(), 2);
        assert_eq!(TopologySpec::full_mesh(64, 32).stages(), 2);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(matches!(
            TopologySpec::fat_tree(7, 2).validate(),
            Err(TopologyError::InvalidRadix { .. })
        ));
        assert!(matches!(
            TopologySpec::fat_tree(8, 0).validate(),
            Err(TopologyError::InvalidLevels { .. })
        ));
        assert!(matches!(
            TopologySpec::dragonfly(64, 514).validate(),
            Err(TopologyError::InvalidGroups { max: 513, .. })
        ));
        assert!(matches!(
            TopologySpec::full_mesh(8, 9).validate(),
            Err(TopologyError::InvalidMeshSize { .. })
        ));
        assert!(matches!(
            TopologySpec::two_level(8).with_link_delay(0).validate(),
            Err(TopologyError::ZeroLinkDelay)
        ));
        assert!(matches!(
            TopologySpec::two_level(8).with_buffer_cells(0).validate(),
            Err(TopologyError::ZeroBuffer)
        ));
        assert!(matches!(
            TopologySpec::fat_tree(1 << 20, 3).validate(),
            Err(TopologyError::TooLarge { .. })
        ));
        assert!(TopologySpec::two_level(64).validate().is_ok());
    }

    #[test]
    fn spec_strings_round_trip() {
        for text in [
            "fat-tree:radix=64,levels=2,planes=2",
            "fat-tree:radix=64,levels=3,planes=1",
            "dragonfly:radix=64,groups=64",
            "full-mesh:radix=64,switches=32",
        ] {
            let spec: TopologySpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            let again: TopologySpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
        // Optional keys apply.
        let spec: TopologySpec = "fat-tree:radix=8,levels=2,delay=5,buffer=9,iters=2"
            .parse()
            .unwrap();
        assert_eq!(spec.link_delay, 5);
        assert_eq!(spec.buffer_cells(), 9);
        assert_eq!(spec.iterations, 2);
        // RTT sizing: 2d+2.
        let spec: TopologySpec = "fat-tree:radix=8,levels=2,delay=3,buffer=rtt"
            .parse()
            .unwrap();
        assert_eq!(spec.buffer_cells(), 8);
    }

    #[test]
    fn parse_errors_are_typed() {
        for bad in [
            "fat-tree",
            "ring:radix=8",
            "fat-tree:radix=8",
            "fat-tree:radix=8,levels=two",
            "fat-tree:radix=8,levels=2,color=red",
            "dragonfly:radix=64",
        ] {
            assert!(bad.parse::<TopologySpec>().is_err(), "{bad}");
        }
        assert!(matches!(
            "fat-tree:radix=8,levels=2,planes=3".parse::<TopologySpec>(),
            Err(TopologyError::InvalidPlanes { planes: 3 })
        ));
        // Validation runs at parse time.
        assert!(matches!(
            "full-mesh:radix=8,switches=20".parse::<TopologySpec>(),
            Err(TopologyError::InvalidMeshSize { .. })
        ));
    }
}
