//! Folded-Clos (fat-tree) topology arithmetic.
//!
//! The paper builds fabrics from identical radix-k switches (§IV.A "for
//! cost reasons, we assume that the fabric is built using identical
//! switches in each stage"). A two-level fat tree of 64-port switches
//! yields the 2048-port fabric of §V; §VI.C compares stage counts across
//! switch radixes: 3 OSMOSIS stages vs. 5 high-end-electronic vs. 9
//! commodity stages for 2048 ports.

use crate::spec::{top_choice, TopologyError};

/// Levels needed to reach at least `ports` hosts with radix-k switches.
/// Panics on an invalid radix or an unreachable port count; use
/// [`try_levels_for_ports`] where the inputs come from external input.
pub fn levels_for_ports(radix: usize, ports: u64) -> u32 {
    match try_levels_for_ports(radix, ports) {
        Ok(l) => l,
        // lint:allow(panic-free): documented panic contract of the
        // infallible form; `try_levels_for_ports` is the checked one
        Err(e) => panic!("{e}"),
    }
}

/// Levels needed to reach at least `ports` hosts with radix-k switches,
/// rejecting invalid inputs with a typed error.
pub fn try_levels_for_ports(radix: usize, ports: u64) -> Result<u32, TopologyError> {
    let mut l = 1;
    while try_max_ports(radix, l)? < ports {
        l += 1;
        if l >= 32 {
            return Err(TopologyError::UnreachablePortCount { radix, ports });
        }
    }
    Ok(l)
}

/// Maximum host count of an L-level fat tree of radix-k switches:
/// a single switch at L=1 (k ports), k·(k/2)/1... in general
/// 2·(k/2)^L. Panics on an odd or tiny radix; see [`try_max_ports`].
pub fn max_ports(radix: usize, levels: u32) -> u64 {
    match try_max_ports(radix, levels) {
        Ok(p) => p,
        // lint:allow(panic-free): documented panic contract of the
        // infallible form; `try_max_ports` is the checked one
        Err(e) => panic!("{e}"),
    }
}

/// Maximum host count of an L-level fat tree of radix-k switches,
/// rejecting invalid radixes with a typed error.
pub fn try_max_ports(radix: usize, levels: u32) -> Result<u64, TopologyError> {
    if radix < 2 || !radix.is_multiple_of(2) {
        return Err(TopologyError::InvalidRadix {
            radix,
            min: 2,
            even: true,
        });
    }
    let half = (radix / 2) as u64;
    Ok(half
        .checked_pow(levels)
        .and_then(|n| n.checked_mul(2))
        .unwrap_or(u64::MAX))
}

/// Switch *stages* a packet traverses end-to-end in an L-level fat tree:
/// up through L−1 levels, across the top, down again → 2L−1.
pub fn stages_for_levels(levels: u32) -> u32 {
    2 * levels - 1
}

/// Stage count to build `ports` hosts from radix-k switches (the §VI.C
/// comparison quantity).
pub fn stages_for_ports(radix: usize, ports: u64) -> u32 {
    stages_for_levels(levels_for_ports(radix, ports))
}

/// A concrete two-level folded Clos (leaf–spine) instance used by the
/// multistage simulation: k leaves of radix k, k/2 spines, k²/2 hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelFatTree {
    /// Switch radix (port count per switch).
    pub radix: usize,
}

impl TwoLevelFatTree {
    /// Build the descriptor. Radix must be even and ≥ 4; panics
    /// otherwise — use [`try_new`](Self::try_new) where the radix comes
    /// from external input.
    pub fn new(radix: usize) -> Self {
        match Self::try_new(radix) {
            Ok(t) => t,
            // lint:allow(panic-free): documented panic contract of the
            // infallible constructor; `try_new` is the checked form
            Err(e) => panic!("{e}"),
        }
    }

    /// Build the descriptor, rejecting an odd or too-small radix with a
    /// typed error.
    pub fn try_new(radix: usize) -> Result<Self, TopologyError> {
        if radix < 4 || !radix.is_multiple_of(2) {
            return Err(TopologyError::InvalidRadix {
                radix,
                min: 4,
                even: true,
            });
        }
        Ok(TwoLevelFatTree { radix })
    }

    /// Hosts per leaf switch (= down ports = up ports = k/2).
    pub fn hosts_per_leaf(&self) -> usize {
        self.radix / 2
    }

    /// Number of leaf switches.
    pub fn leaves(&self) -> usize {
        self.radix
    }

    /// Number of spine switches.
    pub fn spines(&self) -> usize {
        self.radix / 2
    }

    /// Total hosts: k²/2.
    pub fn hosts(&self) -> usize {
        self.radix * self.radix / 2
    }

    /// Leaf switch of a host.
    pub fn leaf_of(&self, host: usize) -> usize {
        assert!(host < self.hosts());
        host / self.hosts_per_leaf()
    }

    /// Leaf down-port of a host.
    pub fn down_port_of(&self, host: usize) -> usize {
        host % self.hosts_per_leaf()
    }

    /// The spine a flow (src, dst) uses — a stable hash, so every cell of
    /// a flow takes the same path and per-flow order survives the
    /// multipath (Table 1's ordering requirement).
    pub fn spine_of_flow(&self, src: usize, dst: usize) -> usize {
        top_choice(src, dst, self.spines())
    }

    /// Leaf up-port toward a given spine.
    // lint:allow(typed-ids): the §V hand-built descriptor predates the
    // typed arenas; its raw indices are pinned by the fingerprint suite
    pub fn up_port(&self, spine: usize) -> usize {
        assert!(spine < self.spines());
        self.hosts_per_leaf() + spine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_ports_values() {
        // 2·(k/2)^L: one 64-port switch L=1 → 64; two-level → 2048.
        assert_eq!(max_ports(64, 1), 64);
        assert_eq!(max_ports(64, 2), 2_048);
        assert_eq!(max_ports(32, 2), 512);
        assert_eq!(max_ports(32, 3), 8_192);
        assert_eq!(max_ports(8, 5), 2_048);
    }

    #[test]
    fn paper_claim_stage_counts_for_2048_ports() {
        // §VI.C: "A 2048-port fabric needs 3 OSMOSIS stages, 5 high-end
        // electronic switch stages and 9 stages of commodity switch chips."
        assert_eq!(stages_for_ports(64, 2048), 3, "OSMOSIS 64-port switches");
        assert_eq!(stages_for_ports(32, 2048), 5, "high-end electronic 32-port");
        assert_eq!(stages_for_ports(8, 2048), 9, "commodity 8-port");
        // The paper quotes the 8-port end of its "8 to 12 ports" range;
        // 12-port parts would need 2·6^4 = 2592 ≥ 2048 → 7 stages.
        assert_eq!(stages_for_ports(12, 2048), 7, "commodity 12-port");
    }

    #[test]
    fn levels_monotone_in_ports() {
        assert_eq!(levels_for_ports(64, 64), 1);
        assert_eq!(levels_for_ports(64, 65), 2);
        assert_eq!(levels_for_ports(64, 2048), 2);
        assert_eq!(levels_for_ports(64, 2049), 3);
    }

    #[test]
    fn two_level_dimensions() {
        let t = TwoLevelFatTree::new(8);
        assert_eq!(t.hosts(), 32);
        assert_eq!(t.leaves(), 8);
        assert_eq!(t.spines(), 4);
        assert_eq!(t.hosts_per_leaf(), 4);
        // The demonstrator-scale fabric.
        let big = TwoLevelFatTree::new(64);
        assert_eq!(big.hosts(), 2_048, "the §V fabric-level port count");
    }

    #[test]
    fn host_mapping_roundtrip() {
        let t = TwoLevelFatTree::new(8);
        for h in 0..t.hosts() {
            let l = t.leaf_of(h);
            let p = t.down_port_of(h);
            assert_eq!(l * t.hosts_per_leaf() + p, h);
        }
    }

    #[test]
    fn flow_spine_is_stable_and_in_range() {
        let t = TwoLevelFatTree::new(8);
        for src in 0..8 {
            for dst in 0..8 {
                let s = t.spine_of_flow(src, dst);
                assert!(s < t.spines());
                assert_eq!(s, t.spine_of_flow(src, dst), "stable per flow");
            }
        }
    }

    #[test]
    fn flows_spread_over_spines() {
        let t = TwoLevelFatTree::new(16);
        let mut counts = vec![0u32; t.spines()];
        for src in 0..t.hosts() {
            for dst in 0..t.hosts() {
                counts[t.spine_of_flow(src, dst)] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        let expect = total as f64 / counts.len() as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "spine load skew: {counts:?}"
            );
        }
    }

    #[test]
    fn up_port_layout() {
        let t = TwoLevelFatTree::new(8);
        assert_eq!(t.up_port(0), 4);
        assert_eq!(t.up_port(3), 7);
    }
}
