//! Deterministic expansion of a [`TopologySpec`] into a typed fabric
//! graph.
//!
//! The compiler pass of the crate: a compact declarative spec goes in,
//! a complete [`ExpandedFabric`] comes out — dense typed arenas of
//! stages, switches, ports, links and hosts, every cable recorded once
//! with both endpoints, every port's peer resolved. Expansion is a pure
//! function of the spec: re-expanding yields an identical graph (the
//! property tests pin this), and a structural fingerprint makes "same
//! wiring" checkable in one `u64`.
//!
//! ## Fat tree (folded Clos)
//!
//! With m = radix/2, an L-level fat tree of `planes` ∈ {1, 2} wiring
//! planes has, for L ≥ 2, `planes·m^(L−1)` switches per lower level and
//! one merged top level of `m^(L−1)` switches. Within a plane, switches
//! are addressed by (L−1)-digit base-m numbers; the up-edge from a
//! level-l switch w via up-port m+p lands on the level-(l+1) switch
//! w[digit l := p] at input digit_l(w) — exactly the rule of
//! [`crate::multilevel`]. At the top step the two planes merge: plane π
//! switch w reaches top switch w[digit L−2 := p] at input π·m +
//! digit_{L−2}(w). With planes = 2 and L = 2 this reproduces the
//! hand-built §V leaf–spine wiring bit for bit (leaf π·m+w ↔ spine p);
//! with planes = 1 it reproduces [`crate::multilevel::MultiLevelClos`].
//!
//! ## Dragonfly
//!
//! The balanced configuration derived from the radix
//! ([`DragonflyShape`]): p = h hosts and h global channels per router,
//! a = 2h routers per group in a local full mesh. Global channel
//! c ∈ 0..a·h of group G reaches group (G + 1 + c mod (g−1)) mod g;
//! the pairing is an involution, so every global cable is created
//! exactly once, and channels beyond the pairable range stay
//! unconnected.
//!
//! ## Full mesh
//!
//! n ≤ radix switches, each with radix − n + 1 hosts and one cable to
//! every other switch — the flat alternative of the §VI.C scaling
//! argument.
//!
//! Routing is minimal and per-flow stable for all three families
//! ([`ExpandedFabric::route`]), using the shared flow hashes of
//! [`crate::spec`] so the expanded instances inherit the pinned
//! simulators' path choices exactly.

use crate::ids::{EntityId, EntityVec, HostId, LinkId, PortId, StageId, SwitchId};
pub use crate::spec::TopologySpec;
use crate::spec::{top_choice, up_choice, DragonflyShape, TopologyError, TopologyFamily};

/// One level of switches in the expanded graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageInfo {
    /// Level, counted from the hosts (leaves/routers are level 0).
    pub level: u32,
    /// First switch of the stage; the stage owns a contiguous id range.
    pub first_switch: SwitchId,
    /// Number of switches in the stage.
    pub switches: u32,
}

/// One switch of the expanded graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchInfo {
    /// Owning stage.
    pub stage: StageId,
    /// Position within the stage.
    pub pos: u32,
}

/// What a switch port is cabled to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// An end host NIC.
    Host(HostId),
    /// The far end of a switch-to-switch cable.
    Port(PortId),
    /// Nothing — the port exists on the switch but is not used by the
    /// topology (e.g. the up-side of a 1-plane top level).
    Unconnected,
}

/// One switch port of the expanded graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortInfo {
    /// Owning switch.
    pub switch: SwitchId,
    /// Port index local to the switch (0..radix).
    pub local: u32,
    /// Far end.
    pub peer: Peer,
}

/// One switch-to-switch cable, recorded once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkInfo {
    /// Endpoint on the switch that initiated the wire-up (lower stage /
    /// lower switch id).
    pub a: PortId,
    /// The other endpoint.
    pub b: PortId,
}

/// One end host of the expanded graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostInfo {
    /// The edge switch the host hangs off.
    pub switch: SwitchId,
    /// The switch port it is cabled to.
    pub port: PortId,
}

/// Family-specific expansion metadata the router needs.
#[derive(Debug, Clone)]
enum FamilyMeta {
    FatTree {
        /// Half-radix: down (= host) ports per switch.
        m: usize,
        levels: u32,
        planes: u32,
        /// Switches per plane per level = m^(L−1) = top-level width.
        width: usize,
    },
    Dragonfly {
        shape: DragonflyShape,
        groups: u32,
        /// For each ordered group pair (G, D), G ≠ D: the G-side
        /// endpoints of every global cable between them, as (gateway
        /// router, local port), ordered by channel instance. Indexed
        /// `G * groups + D`.
        routes: Vec<Vec<(SwitchId, u32)>>,
    },
    FullMesh {
        hosts_per_switch: usize,
    },
}

/// A fully expanded, typed fabric graph.
#[derive(Debug, Clone)]
pub struct ExpandedFabric {
    spec: TopologySpec,
    /// Stage table.
    pub stages: EntityVec<StageId, StageInfo>,
    /// Switch table.
    pub switches: EntityVec<SwitchId, SwitchInfo>,
    /// Port table: `switch.index() * radix + local`.
    pub ports: EntityVec<PortId, PortInfo>,
    /// Cable table (switch-to-switch only; host attachments live in
    /// `hosts`).
    pub links: EntityVec<LinkId, LinkInfo>,
    /// Host table.
    pub hosts: EntityVec<HostId, HostInfo>,
    meta: FamilyMeta,
}

/// Base-m digit `pos` of `index`.
fn digit(index: usize, pos: u32, m: usize) -> usize {
    (index / m.pow(pos)) % m
}

/// Replace base-m digit `pos` of `index` with `value`.
fn with_digit(index: usize, pos: u32, value: usize, m: usize) -> usize {
    let p = m.pow(pos);
    index - digit(index, pos, m) * p + value * p
}

impl ExpandedFabric {
    /// Expand `spec` into a complete graph. Deterministic: equal specs
    /// produce identical arenas.
    pub fn expand(spec: TopologySpec) -> Result<Self, TopologyError> {
        spec.validate()?;
        let mut fab = ExpandedFabric {
            spec,
            stages: EntityVec::new(),
            switches: EntityVec::new(),
            ports: EntityVec::new(),
            links: EntityVec::new(),
            hosts: EntityVec::new(),
            meta: FamilyMeta::FullMesh {
                hosts_per_switch: 0,
            },
        };
        match spec.family {
            TopologyFamily::FatTree { levels, planes } => fab.expand_fat_tree(levels, planes),
            TopologyFamily::Dragonfly { groups } => fab.expand_dragonfly(groups),
            TopologyFamily::FullMesh { switches } => fab.expand_full_mesh(switches),
        }
        Ok(fab)
    }

    /// The spec this graph was expanded from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Switch radix (ports per switch, uniform per §IV.A).
    pub fn radix(&self) -> usize {
        self.spec.radix
    }

    /// The port id of `switch`'s local port `local`.
    pub fn port_id(&self, switch: SwitchId, local: u32) -> PortId {
        PortId::from_index(switch.index() * self.spec.radix + local as usize)
    }

    /// The (edge switch, local port) a host is attached to.
    pub fn host_attach(&self, host: HostId) -> (SwitchId, u32) {
        let info = self.hosts[host];
        (info.switch, self.ports[info.port].local)
    }

    /// The level of a switch (0 at the host edge).
    pub fn level_of(&self, switch: SwitchId) -> u32 {
        self.stages[self.switches[switch].stage].level
    }

    /// Append `count` switches of `radix` ports as a new stage at
    /// `level`; all ports start unconnected.
    fn push_stage(&mut self, level: u32, count: usize) -> StageId {
        let first = self.switches.next_id();
        let stage = self.stages.push(StageInfo {
            level,
            first_switch: first,
            switches: count as u32,
        });
        for pos in 0..count {
            let sw = self.switches.push(SwitchInfo {
                stage,
                pos: pos as u32,
            });
            for local in 0..self.spec.radix {
                self.ports.push(PortInfo {
                    switch: sw,
                    local: local as u32,
                    peer: Peer::Unconnected,
                });
            }
        }
        stage
    }

    /// The switch at `pos` within `stage`.
    fn stage_switch(&self, stage: StageId, pos: usize) -> SwitchId {
        SwitchId::from_index(self.stages[stage].first_switch.index() + pos)
    }

    /// Cable two ports together, recording the link once. Both ports
    /// must still be unconnected — a double wire-up is an expansion bug.
    fn connect(&mut self, a: PortId, b: PortId) {
        debug_assert_eq!(self.ports[a].peer, Peer::Unconnected);
        debug_assert_eq!(self.ports[b].peer, Peer::Unconnected);
        self.ports[a].peer = Peer::Port(b);
        self.ports[b].peer = Peer::Port(a);
        self.links.push(LinkInfo { a, b });
    }

    /// Attach the next host to `port`.
    fn attach_host(&mut self, port: PortId) -> HostId {
        debug_assert_eq!(self.ports[port].peer, Peer::Unconnected);
        let switch = self.ports[port].switch;
        let host = self.hosts.push(HostInfo { switch, port });
        self.ports[port].peer = Peer::Host(host);
        host
    }

    fn expand_fat_tree(&mut self, levels: u32, planes: u32) {
        let m = self.spec.radix / 2;
        let width = m.pow(levels - 1);
        self.meta = FamilyMeta::FatTree {
            m,
            levels,
            planes,
            width,
        };
        if levels == 1 {
            // A single switch; every used port faces a host.
            let stage = self.push_stage(0, 1);
            let sw = self.stage_switch(stage, 0);
            for p in 0..planes as usize * m {
                let port = self.port_id(sw, p as u32);
                self.attach_host(port);
            }
            return;
        }
        // Stages: levels 0..L−2 with planes·width switches (plane-major:
        // pos = π·width + w), then the merged top with `width` switches.
        let mut stage_ids = Vec::with_capacity(levels as usize);
        for level in 0..levels - 1 {
            stage_ids.push(self.push_stage(level, planes as usize * width));
        }
        stage_ids.push(self.push_stage(levels - 1, width));
        // Hosts hang off level 0: leaf pos·m + p.
        for leaf in 0..planes as usize * width {
            let sw = self.stage_switch(stage_ids[0], leaf);
            for p in 0..m {
                let port = self.port_id(sw, p as u32);
                self.attach_host(port);
            }
        }
        // Up edges, level by level.
        for l in 0..levels - 1 {
            for pi in 0..planes as usize {
                for w in 0..width {
                    let from = self.stage_switch(stage_ids[l as usize], pi * width + w);
                    for p in 0..m {
                        let from_port = self.port_id(from, (m + p) as u32);
                        let (to, to_local) = if l + 1 < levels - 1 {
                            // Within-plane edge: the multilevel rule.
                            let above = pi * width + with_digit(w, l, p, m);
                            (
                                self.stage_switch(stage_ids[l as usize + 1], above),
                                digit(w, l, m) as u32,
                            )
                        } else {
                            // Top step: planes merge; the top input index
                            // carries the plane.
                            let top = with_digit(w, levels - 2, p, m);
                            (
                                self.stage_switch(stage_ids[levels as usize - 1], top),
                                (pi * m + digit(w, levels - 2, m)) as u32,
                            )
                        };
                        let to_port = self.port_id(to, to_local);
                        self.connect(from_port, to_port);
                    }
                }
            }
        }
    }

    fn expand_dragonfly(&mut self, groups: u32) {
        // validate() ran in expand(); a bad radix cannot reach here, but
        // stay panic-free and expand the degenerate empty shape instead.
        let shape = DragonflyShape::for_radix(self.spec.radix).unwrap_or(DragonflyShape {
            hosts_per_router: 0,
            routers_per_group: 0,
            globals_per_router: 0,
        });
        let (p, a, h) = (
            shape.hosts_per_router,
            shape.routers_per_group,
            shape.globals_per_router,
        );
        let g = groups as usize;
        let mut routes = vec![Vec::new(); g * g];
        let stage = self.push_stage(0, g * a);
        // Port layout per router: 0..p hosts, p..p+a−1 local mesh,
        // p+a−1..p+a−1+h global, remainder unconnected.
        for router in 0..g * a {
            let sw = self.stage_switch(stage, router);
            for j in 0..p {
                let port = self.port_id(sw, j as u32);
                self.attach_host(port);
            }
        }
        // Local all-to-all within each group: router r's slot t reaches
        // router t (t < r) or t+1 (t ≥ r); wire from the lower id.
        for grp in 0..g {
            for r in 0..a {
                for u in r + 1..a {
                    let lo = self.stage_switch(stage, grp * a + r);
                    let hi = self.stage_switch(stage, grp * a + u);
                    let lo_port = self.port_id(lo, (p + u - 1) as u32);
                    let hi_port = self.port_id(hi, (p + r) as u32);
                    self.connect(lo_port, hi_port);
                }
            }
        }
        // Global channels: channel c of group G (router c/h, global slot
        // c%h) pairs with channel (g−1−d) + i·(g−1) of group (G+d) mod g,
        // d = 1 + c mod (g−1), i = c/(g−1). The pairing is an involution;
        // wire from the smaller group id. Channels whose partner instance
        // exceeds a·h stay unconnected.
        if g > 1 {
            for grp in 0..g {
                for c in 0..a * h {
                    let d = 1 + c % (g - 1);
                    let i = c / (g - 1);
                    let dest = (grp + d) % g;
                    let back = (g - 1 - d) + i * (g - 1);
                    if back >= a * h {
                        continue;
                    }
                    let from_sw = self.stage_switch(stage, grp * a + c / h);
                    let from_local = (p + a - 1 + c % h) as u32;
                    let to_sw = self.stage_switch(stage, dest * a + back / h);
                    let to_local = (p + a - 1 + back % h) as u32;
                    if dest > grp {
                        let from_port = self.port_id(from_sw, from_local);
                        let to_port = self.port_id(to_sw, to_local);
                        self.connect(from_port, to_port);
                    }
                    routes[grp * g + dest].push((from_sw, from_local));
                }
            }
        }
        self.meta = FamilyMeta::Dragonfly {
            shape,
            groups,
            routes,
        };
    }

    fn expand_full_mesh(&mut self, switches: u32) {
        let n = switches as usize;
        let hp = self.spec.radix - (n - 1);
        self.meta = FamilyMeta::FullMesh {
            hosts_per_switch: hp,
        };
        let stage = self.push_stage(0, n);
        for s in 0..n {
            let sw = self.stage_switch(stage, s);
            for j in 0..hp {
                let port = self.port_id(sw, j as u32);
                self.attach_host(port);
            }
        }
        // Mesh ports hp..radix: switch i's slot t reaches switch t
        // (t < i) or t+1 (t ≥ i); wire from the lower id.
        for i in 0..n {
            for j in i + 1..n {
                let lo = self.stage_switch(stage, i);
                let hi = self.stage_switch(stage, j);
                let lo_port = self.port_id(lo, (hp + j - 1) as u32);
                let hi_port = self.port_id(hi, (hp + i) as u32);
                self.connect(lo_port, hi_port);
            }
        }
    }

    /// Ascent height of a fat-tree route: up-hops before turning. Hosts
    /// in different planes meet at the top (L−1 up-hops); within a plane
    /// the multilevel common-ancestor rule applies.
    fn fat_tree_ascent(
        &self,
        src: HostId,
        dst: HostId,
        m: usize,
        levels: u32,
        width: usize,
    ) -> u32 {
        let (ls, ld) = (src.index() / m, dst.index() / m);
        if ls == ld {
            return 0;
        }
        let (pi_s, pi_d) = (ls / width, ld / width);
        if pi_s != pi_d {
            return levels - 1;
        }
        let (ws, wd) = (ls % width, ld % width);
        let mut a = 1;
        for pos in 0..levels - 1 {
            if digit(ws, pos, m) != digit(wd, pos, m) {
                a = pos + 1;
            }
        }
        a
    }

    /// The local output port a (src, dst) flow takes at `switch`, given
    /// the local input port it arrived on (host-side for fresh
    /// injections). Minimal and per-flow stable for every family; the
    /// input side disambiguates ascent from descent in fat trees.
    pub fn route(&self, switch: SwitchId, in_port: u32, src: HostId, dst: HostId) -> u32 {
        match &self.meta {
            FamilyMeta::FatTree {
                m,
                levels,
                planes,
                width,
            } => {
                let (m, levels, planes, width) = (*m, *levels, *planes, *width);
                if levels == 1 {
                    return (dst.index() % (planes as usize * m)) as u32;
                }
                let info = self.switches[switch];
                let level = self.stages[info.stage].level;
                let dst_leaf = dst.index() / m;
                let (pi_d, wd) = (dst_leaf / width, dst_leaf % width);
                if level == levels - 1 {
                    // Top: always descending; the down port carries the
                    // destination plane and its top digit.
                    return (pi_d * m + digit(wd, levels - 2, m)) as u32;
                }
                let descending = in_port as usize >= m;
                if !descending && level < self.fat_tree_ascent(src, dst, m, levels, width) {
                    // Ascending. The top step uses the two-operand spine
                    // hash of §V when the planes merge (bit-identical to
                    // the hand-built leaf–spine instance at L = 2); the
                    // within-plane steps use the per-level multilevel
                    // hash.
                    let p = if planes == 2 && level == levels - 2 {
                        top_choice(src.index(), dst.index(), m)
                    } else {
                        up_choice(src.index(), dst.index(), level, m)
                    };
                    return (m + p) as u32;
                }
                if level == 0 {
                    (dst.index() % m) as u32
                } else {
                    digit(wd, level - 1, m) as u32
                }
            }
            FamilyMeta::Dragonfly {
                shape,
                groups,
                routes,
            } => {
                let (p, a) = (shape.hosts_per_router, shape.routers_per_group);
                let g = *groups as usize;
                let _ = in_port;
                let router = self.switches[switch].pos as usize;
                let (grp, r) = (router / a, router % a);
                let dst_router = dst.index() / p;
                let (grp_d, r_d) = (dst_router / a, dst_router % a);
                if router == dst_router {
                    return (dst.index() % p) as u32;
                }
                let local_toward = |target: usize, from: usize| -> u32 {
                    let t = if target < from { target } else { target - 1 };
                    (p + t) as u32
                };
                if grp == grp_d {
                    return local_toward(r_d, r);
                }
                // Cross-group: per-flow stable pick among the g→g_d
                // channels, then reach the gateway router locally.
                let list = &routes[grp * g + grp_d];
                debug_assert!(!list.is_empty(), "validated group counts are connected");
                let (gw, gw_port) = list[top_choice(src.index(), dst.index(), list.len().max(1))];
                if gw == switch {
                    gw_port
                } else {
                    local_toward(self.switches[gw].pos as usize % a, r)
                }
            }
            FamilyMeta::FullMesh { hosts_per_switch } => {
                let hp = *hosts_per_switch;
                let _ = in_port;
                let s = self.switches[switch].pos as usize;
                let s_d = dst.index() / hp;
                if s == s_d {
                    (dst.index() % hp) as u32
                } else {
                    let t = if s_d < s { s_d } else { s_d - 1 };
                    (hp + t) as u32
                }
            }
        }
    }

    /// The switch path of a (src, dst) flow, found by walking the graph
    /// under [`route`](Self::route) — so the path is the wiring and the
    /// router in agreement, not a separate formula.
    pub fn path(&self, src: HostId, dst: HostId) -> Vec<SwitchId> {
        let (mut sw, mut in_port) = self.host_attach(src);
        let mut out = vec![sw];
        // A minimal route visits at most stages() switches; 2× that is a
        // hard bound on a correct walk.
        let limit = 2 * self.spec.stages() as usize + 2;
        loop {
            assert!(out.len() <= limit, "route failed to terminate");
            let out_port = self.route(sw, in_port, src, dst);
            match self.ports[self.port_id(sw, out_port)].peer {
                Peer::Host(h) => {
                    assert_eq!(h, dst, "route delivered to the wrong host");
                    return out;
                }
                Peer::Port(far) => {
                    sw = self.ports[far].switch;
                    in_port = self.ports[far].local;
                    out.push(sw);
                }
                Peer::Unconnected => {
                    // lint:allow(panic-free): expansion invariant — the
                    // minimal router never selects an unwired port on a
                    // validated spec; tests walk every family's paths
                    panic!("route chose unconnected {sw} port {out_port}")
                }
            }
        }
    }

    /// A structural digest of the whole graph: entity counts, every
    /// port's peer, every host attachment. Two fabrics with equal
    /// fingerprints are wired identically (up to hash collision); the
    /// determinism and hand-built-equivalence tests pin these.
    pub fn structural_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        eat(self.spec.radix as u64);
        eat(self.stages.len() as u64);
        eat(self.switches.len() as u64);
        eat(self.links.len() as u64);
        eat(self.hosts.len() as u64);
        for (_, s) in self.stages.iter() {
            eat(s.level as u64);
            eat(s.switches as u64);
        }
        for (_, p) in self.ports.iter() {
            match p.peer {
                Peer::Unconnected => eat(u64::MAX),
                Peer::Host(host) => {
                    eat(1);
                    eat(host.raw() as u64);
                }
                Peer::Port(far) => {
                    eat(2);
                    eat(far.raw() as u64);
                }
            }
        }
        // SplitMix finalizer, as everywhere else in the workspace.
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;

    #[test]
    fn two_level_expansion_matches_hand_built_wiring() {
        // The §V instance: k leaves (pos π·m+w), k/2 spines; leaf l's up
        // port m+s reaches spine s at input l; hosts pack onto leaves.
        for radix in [4usize, 8, 64] {
            let fab = ExpandedFabric::expand(TopologySpec::two_level(radix)).unwrap();
            let m = radix / 2;
            let t = crate::topology::TwoLevelFatTree::new(radix);
            assert_eq!(fab.hosts.len(), t.hosts());
            assert_eq!(fab.switches.len(), t.leaves() + t.spines());
            assert_eq!(fab.links.len(), t.leaves() * t.spines());
            for leaf in 0..t.leaves() {
                let sw = SwitchId::from_index(leaf);
                for s in 0..t.spines() {
                    let up = fab.port_id(sw, (m + s) as u32);
                    let Peer::Port(far) = fab.ports[up].peer else {
                        panic!("unwired up port");
                    };
                    assert_eq!(fab.ports[far].switch.index(), t.leaves() + s);
                    assert_eq!(fab.ports[far].local as usize, leaf);
                }
            }
            for h in 0..t.hosts() {
                let (sw, local) = fab.host_attach(HostId::from_index(h));
                assert_eq!(sw.index(), t.leaf_of(h));
                assert_eq!(local as usize, t.down_port_of(h));
            }
        }
    }

    #[test]
    fn two_level_routing_matches_spine_hash() {
        let radix = 8;
        let fab = ExpandedFabric::expand(TopologySpec::two_level(radix)).unwrap();
        let t = crate::topology::TwoLevelFatTree::new(radix);
        for src in 0..t.hosts() {
            for dst in 0..t.hosts() {
                let (s, d) = (HostId::from_index(src), HostId::from_index(dst));
                let path = fab.path(s, d);
                let hand = if src == dst || t.leaf_of(src) == t.leaf_of(dst) {
                    vec![t.leaf_of(src)]
                } else {
                    vec![
                        t.leaf_of(src),
                        t.leaves() + t.spine_of_flow(src, dst),
                        t.leaf_of(dst),
                    ]
                };
                let got: Vec<usize> = path.iter().map(|s| s.index()).collect();
                assert_eq!(got, hand, "src {src} dst {dst}");
            }
        }
    }

    #[test]
    fn one_plane_expansion_matches_multilevel_paths() {
        // planes = 1 is the multilevel m-ary Clos: same switch counts,
        // same paths (per level, per position).
        let (radix, levels) = (6usize, 3u32);
        let fab = ExpandedFabric::expand(TopologySpec::m_ary_fat_tree(radix, levels)).unwrap();
        let clos = crate::multilevel::MultiLevelClos::new(radix, levels);
        assert_eq!(fab.hosts.len(), clos.hosts());
        assert_eq!(
            fab.switches.len(),
            clos.switches_per_level() * levels as usize
        );
        let width = clos.switches_per_level();
        for src in 0..clos.hosts() {
            let dst = (src * 13 + 7) % clos.hosts();
            let expanded: Vec<(u32, usize)> = fab
                .path(HostId::from_index(src), HostId::from_index(dst))
                .into_iter()
                .map(|sw| {
                    let level = fab.level_of(sw);
                    (level, sw.index() - level as usize * width)
                })
                .collect();
            assert_eq!(expanded, clos.path(src, dst), "src {src} dst {dst}");
        }
    }

    #[test]
    fn every_port_peer_is_mutual() {
        for spec in [
            TopologySpec::fat_tree(4, 3),
            TopologySpec::two_level(8),
            TopologySpec::dragonfly(8, 4),
            TopologySpec::full_mesh(8, 5),
        ] {
            let fab = ExpandedFabric::expand(spec).unwrap();
            for (id, port) in fab.ports.iter() {
                match port.peer {
                    Peer::Unconnected => {}
                    Peer::Host(h) => assert_eq!(fab.hosts[h].port, id),
                    Peer::Port(far) => assert_eq!(fab.ports[far].peer, Peer::Port(id)),
                }
            }
            assert_eq!(fab.hosts.len() as u64, spec.hosts());
            assert_eq!(fab.switches.len() as u64, spec.switch_count());
        }
    }

    #[test]
    fn dragonfly_paths_are_minimal_and_stable() {
        let spec = TopologySpec::dragonfly(8, 4);
        let fab = ExpandedFabric::expand(spec).unwrap();
        // Radix 8 → h = p = 2, a = 4: 4 groups × 4 routers × 2 hosts.
        assert_eq!(fab.hosts.len(), 32);
        for src in 0..32 {
            for dst in 0..32 {
                let (s, d) = (HostId::from_index(src), HostId::from_index(dst));
                let path = fab.path(s, d);
                assert!(path.len() <= 4, "src {src} dst {dst}: {path:?}");
                assert_eq!(path, fab.path(s, d));
                assert_eq!(path[0], fab.host_attach(s).0);
                assert_eq!(*path.last().unwrap(), fab.host_attach(d).0);
            }
        }
    }

    #[test]
    fn full_mesh_is_single_hop() {
        let fab = ExpandedFabric::expand(TopologySpec::full_mesh(8, 5)).unwrap();
        assert_eq!(fab.hosts.len(), 5 * 4);
        assert_eq!(fab.links.len(), 5 * 4 / 2);
        for src in 0..20 {
            for dst in 0..20 {
                let path = fab.path(HostId::from_index(src), HostId::from_index(dst));
                assert!(path.len() <= 2);
            }
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        for spec in [
            TopologySpec::fat_tree(8, 3),
            TopologySpec::dragonfly(16, 8),
            TopologySpec::full_mesh(16, 9),
        ] {
            let a = ExpandedFabric::expand(spec).unwrap();
            let b = ExpandedFabric::expand(spec).unwrap();
            assert_eq!(a.structural_fingerprint(), b.structural_fingerprint());
            assert_eq!(
                a.ports.iter().collect::<Vec<_>>(),
                b.ports.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn large_instances_expand() {
        // The ≥ 32768-port acceptance instances.
        let big = ExpandedFabric::expand(TopologySpec::m_ary_fat_tree(64, 3)).unwrap();
        assert_eq!(big.hosts.len(), 32_768);
        let df = ExpandedFabric::expand(TopologySpec::dragonfly(64, 64)).unwrap();
        assert_eq!(df.hosts.len(), 32_768);
        assert_eq!(df.switches.len(), 2_048);
    }
}
