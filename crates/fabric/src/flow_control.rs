//! The scheduler-relayed remote flow-control loop of Figs. 3–4 (§IV.B),
//! modeled explicitly on one inter-switch link.
//!
//! With input buffers only (placement option 3), the receiving ingress
//! buffer I(2,2) cannot signal its state back on the link it receives on —
//! there is no output buffer to piggyback from. The paper's scheme:
//!
//! 1. I(2,2) forwards its flow-control events to its *local* scheduler
//!    over the existing adapter↔scheduler control channel;
//! 2. the scheduler pairs the FC information with a transmission grant for
//!    the reverse-direction link, so the granted cell carries it back;
//! 3. when no data cell flows in the reverse direction, an idle cell
//!    carries it (the control channels are made reliable per ref. [19]);
//! 4. the ingress adapter on the far side hands the FC information to its
//!    scheduler, closing the loop.
//!
//! The loop therefore has a **deterministic RTT** — local relay hops plus
//! one cable flight — "which allows straightforward buffer sizing". This
//! module simulates exactly that loop as a credit protocol and measures
//! the RTT, losslessness, and the throughput-vs-buffer-size law.

use std::collections::VecDeque;

/// Configuration of the relay-loop experiment.
#[derive(Debug, Clone, Copy)]
pub struct RelayConfig {
    /// Cable flight time between the two switches, in cell slots.
    pub link_delay: u64,
    /// Capacity of the receiving ingress buffer, in cells.
    pub buffer_cells: usize,
    /// Rate at which the receiving switch drains the ingress buffer
    /// (grants per slot from its local scheduler; 1.0 = line rate).
    pub drain_rate: f64,
    /// Probability per slot that a *data* cell flows in the reverse
    /// direction (FC piggybacks on it at zero cost). When no data flows
    /// and FC is pending, an idle cell is inserted.
    pub reverse_data_rate: f64,
}

/// Result of a relay-loop run.
#[derive(Debug, Clone)]
pub struct RelayReport {
    /// Cells the sender pushed across the link.
    pub cells_sent: u64,
    /// Cells the receiver drained.
    pub cells_drained: u64,
    /// Highest ingress-buffer occupancy observed — must never exceed the
    /// configured capacity.
    pub max_occupancy: usize,
    /// Measured forward throughput (cells per slot).
    pub throughput: f64,
    /// Minimum and maximum observed credit-loop RTT in slots: equal when
    /// the loop is deterministic.
    pub fc_rtt_min: u64,
    /// Maximum observed credit-loop RTT.
    pub fc_rtt_max: u64,
    /// Idle cells inserted to carry FC when no reverse data flowed.
    pub idle_cells: u64,
    /// Slots at which the credit-conservation ledger (sender credits +
    /// forward flights + buffer occupancy + pending FC + reverse flights
    /// = buffer capacity) failed to balance. Always 0 for a correct
    /// protocol — exposed so tests and the audit plane can assert it.
    pub ledger_violations: u64,
}

/// Run the relay loop for `slots` slots with a saturated sender.
pub fn run_relay_loop(cfg: &RelayConfig, slots: u64, seed: u64) -> RelayReport {
    use osmosis_sim::SimRng;
    assert!(cfg.link_delay >= 1);
    assert!(cfg.buffer_cells >= 1);
    let mut rng = SimRng::seed_from_u64(seed);

    let d = cfg.link_delay;
    // Sender side: available credits; each credit is stamped with the slot
    // the corresponding buffer slot was freed (for RTT measurement).
    let mut credits: usize = cfg.buffer_cells;
    // Forward cells in flight: arrival slot.
    let mut fwd: VecDeque<u64> = VecDeque::new();
    // Receiver ingress buffer occupancy.
    let mut occupancy: usize = 0;
    let mut max_occupancy = 0usize;
    // FC events waiting at the receiver's scheduler for a reverse-channel
    // carrier, stamped with the slot the buffer slot was freed.
    let mut pending_fc: VecDeque<u64> = VecDeque::new();
    // Credits in flight back to the sender: (arrival slot, freed slot).
    let mut rev: VecDeque<(u64, u64)> = VecDeque::new();

    let mut cells_sent = 0u64;
    let mut cells_drained = 0u64;
    let mut idle_cells = 0u64;
    let mut ledger_violations = 0u64;
    let mut rtt_min = u64::MAX;
    let mut rtt_max = 0u64;

    for t in 0..slots {
        // Forward cells arriving at the ingress buffer.
        while fwd.front().is_some_and(|&at| at == t) {
            fwd.pop_front();
            occupancy += 1;
            assert!(
                occupancy <= cfg.buffer_cells,
                "ingress buffer overflow: flow control failed"
            );
            max_occupancy = max_occupancy.max(occupancy);
        }

        // Credits arriving back at the sender.
        while let Some(&(at, freed_at)) = rev.front() {
            if at != t {
                break;
            }
            rev.pop_front();
            credits += 1;
            let rtt = t - freed_at;
            rtt_min = rtt_min.min(rtt);
            rtt_max = rtt_max.max(rtt);
        }

        // Credit conservation: every buffer slot is exactly one of —
        // a credit at the sender, a cell in forward flight, an occupied
        // buffer cell, an FC event awaiting its carrier, or a credit in
        // reverse flight. Checked each slot, at the point where all five
        // states are quiescent.
        if credits + fwd.len() + occupancy + pending_fc.len() + rev.len() != cfg.buffer_cells {
            ledger_violations += 1;
        }

        // Receiver: local scheduler grants drain the ingress buffer; each
        // freed slot generates an FC event handed to the scheduler.
        if occupancy > 0 && rng.coin(cfg.drain_rate) {
            occupancy -= 1;
            cells_drained += 1;
            pending_fc.push_back(t);
        }

        // Reverse channel: one cell per slot flows back; it exists either
        // as a data cell (probability reverse_data_rate) or, when FC is
        // pending, as an inserted idle cell. Each carrier cell piggybacks
        // all pending FC events (the field is a few bits wide in
        // hardware; one event per cell here is the conservative model).
        let have_data = rng.coin(cfg.reverse_data_rate);
        if let Some(freed_at) = pending_fc.front().copied() {
            if !have_data {
                idle_cells += 1;
            }
            pending_fc.pop_front();
            rev.push_back((t + d, freed_at));
        }

        // Sender: saturated — transmits whenever it holds a credit.
        if credits > 0 {
            credits -= 1;
            cells_sent += 1;
            fwd.push_back(t + d);
        }
    }

    RelayReport {
        cells_sent,
        cells_drained,
        max_occupancy,
        throughput: cells_drained as f64 / slots as f64,
        fc_rtt_min: if rtt_min == u64::MAX { 0 } else { rtt_min },
        fc_rtt_max: rtt_max,
        idle_cells,
        ledger_violations,
    }
}

/// The buffer size needed for full-rate lossless operation: the credit
/// loop RTT (flight out + flight back + the relay hop at the receiver),
/// in cells. This is the "straightforward buffer sizing" of §IV.B.
pub fn required_buffer_cells(link_delay: u64) -> usize {
    (2 * link_delay + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(delay: u64, buffer: usize) -> RelayConfig {
        RelayConfig {
            link_delay: delay,
            buffer_cells: buffer,
            drain_rate: 1.0,
            reverse_data_rate: 0.5,
        }
    }

    #[test]
    fn fc_rtt_is_deterministic_with_idle_cells() {
        // §IV.B: "the FC loop has a deterministic RTT". With an idle-cell
        // carrier always available, every credit takes exactly the same
        // time around the loop.
        let cfg = base(5, required_buffer_cells(5));
        let r = run_relay_loop(&cfg, 20_000, 1);
        assert_eq!(
            r.fc_rtt_min, r.fc_rtt_max,
            "loop RTT must be constant: {} vs {}",
            r.fc_rtt_min, r.fc_rtt_max
        );
        assert_eq!(r.fc_rtt_min, 5, "credit flight = link delay");
    }

    #[test]
    fn rtt_sized_buffer_sustains_line_rate() {
        for d in [1u64, 3, 8] {
            let cfg = base(d, required_buffer_cells(d));
            let r = run_relay_loop(&cfg, 30_000, 2);
            assert!(r.throughput > 0.99, "d={d}: throughput {}", r.throughput);
        }
    }

    #[test]
    fn undersized_buffer_throttles_to_b_over_rtt() {
        // Classic credit-loop law: throughput = B / RTT when B < RTT.
        // The sender-side turnaround is 2·d (flight out + credit back;
        // the relay hop is absorbed in the same slot as the drain).
        let d = 10u64;
        let rtt = (2 * d) as f64;
        for b in [3usize, 7, 14] {
            let cfg = base(d, b);
            let r = run_relay_loop(&cfg, 40_000, 3);
            let expect = (b as f64 / rtt).min(1.0);
            assert!(
                (r.throughput - expect).abs() < 0.03,
                "B={b}: {} vs {expect}",
                r.throughput
            );
        }
    }

    #[test]
    fn never_overflows_even_with_stalled_receiver() {
        // A receiver that drains slowly (e.g. its egress is the hotspot):
        // the sender must stop on credits; the assertion inside the sim
        // catches any overflow.
        let mut cfg = base(4, 6);
        cfg.drain_rate = 0.1;
        let r = run_relay_loop(&cfg, 30_000, 4);
        assert!(r.max_occupancy <= cfg.buffer_cells);
        assert!((r.throughput - 0.1).abs() < 0.01, "{}", r.throughput);
    }

    #[test]
    fn idle_cells_only_when_no_reverse_data() {
        let mut cfg = base(3, required_buffer_cells(3));
        cfg.reverse_data_rate = 1.0;
        let r = run_relay_loop(&cfg, 10_000, 5);
        assert_eq!(r.idle_cells, 0, "data cells carry all FC");
        cfg.reverse_data_rate = 0.0;
        let r = run_relay_loop(&cfg, 10_000, 6);
        assert!(r.idle_cells > 0, "idle cells must be inserted");
        assert!(r.throughput > 0.99, "FC must not interfere with data");
    }

    #[test]
    fn conservation() {
        let cfg = base(4, 9);
        let r = run_relay_loop(&cfg, 5_000, 7);
        assert!(r.cells_sent >= r.cells_drained);
        assert!(r.cells_sent - r.cells_drained <= (cfg.buffer_cells + 2 * 4) as u64);
    }

    #[test]
    fn credit_ledger_balances_every_slot() {
        // The per-slot conservation sum holds across every regime: full
        // rate, stalled receiver, undersized buffer, no reverse data.
        for (delay, buffer, drain, rev_rate, seed) in [
            (5u64, required_buffer_cells(5), 1.0, 0.5, 11u64),
            (4, 6, 0.1, 0.5, 12),
            (10, 3, 1.0, 0.5, 13),
            (3, required_buffer_cells(3), 1.0, 0.0, 14),
        ] {
            let cfg = RelayConfig {
                link_delay: delay,
                buffer_cells: buffer,
                drain_rate: drain,
                reverse_data_rate: rev_rate,
            };
            let r = run_relay_loop(&cfg, 20_000, seed);
            assert_eq!(
                r.ledger_violations, 0,
                "d={delay} B={buffer}: ledger broke {} times",
                r.ledger_violations
            );
        }
    }
}
