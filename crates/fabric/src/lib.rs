//! # osmosis-fabric
//!
//! Multistage fat-tree fabrics for the OSMOSIS reproduction:
//!
//! * [`topology`] — folded-Clos arithmetic and the two-level leaf–spine
//!   instance (64-port switches → the 2048-port §V fabric);
//! * [`multistage`] — slotted simulation of input-buffered switch stages
//!   with credit flow control, covering the Fig. 2 buffer-placement
//!   options and the losslessness/ordering requirements of Table 1;
//! * [`flow_control`] — the scheduler-relayed remote FC loop of
//!   Figs. 3–4, with its deterministic RTT and buffer-sizing law;
//! * [`baselines`] — the §VI.C comparison: 3 OSMOSIS stages vs. 5
//!   high-end electronic vs. 9 commodity stages at 2048 ports.

//! ```
//! use osmosis_fabric::{stages_for_ports, uniform_load_map, MultiLevelClos};
//!
//! // §VI.C: 2048 ports need 3 / 5 / 9 stages by switch radix.
//! assert_eq!(stages_for_ports(64, 2048), 3);
//! assert_eq!(stages_for_ports(32, 2048), 5);
//! assert_eq!(stages_for_ports(8, 2048), 9);
//!
//! // Static link-load analysis predicts a fabric's saturation ceiling.
//! let topo = MultiLevelClos::new(8, 2);
//! let map = uniform_load_map(&topo, 1.0);
//! assert!(map.saturation_load(1.0) > 0.7);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baselines;
pub mod compiled;
pub mod expand;
pub mod flow_control;
pub mod ids;
pub mod loadmap;
pub mod multilevel;
pub mod multistage;
pub mod spec;
pub mod topology;

pub use baselines::{compare, section_6c_table, FabricAlternative, FabricComparison};
pub use compiled::CompiledFabric;
pub use expand::{ExpandedFabric, Peer};
pub use flow_control::{required_buffer_cells, run_relay_loop, RelayConfig, RelayReport};
pub use ids::{EntityId, EntityVec, HostId, LinkId, PortId, StageId, SwitchId};
pub use loadmap::{
    expanded_uniform_load_map, load_map, uniform_load_map, ExpandedLoadMap, LoadMap,
};
pub use multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
pub use multistage::{BufferTech, FabricConfig, FatTreeFabric, Placement};
pub use spec::{BufferSizing, DragonflyShape, TopologyError, TopologyFamily, TopologySpec};

// The engine types every consumer of this crate needs alongside the
// fabrics.
pub use osmosis_sim::engine::{EngineConfig, EngineReport};
pub use topology::{
    levels_for_ports, max_ports, stages_for_levels, stages_for_ports, try_levels_for_ports,
    try_max_ports, TwoLevelFatTree,
};
