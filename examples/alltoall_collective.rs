//! An MPI-style all-to-all personalized exchange over the OSMOSIS fabric —
//! the communication kernel behind FFT transposes and parallel sorts, one
//! of the workloads the paper's HPC requirements come from.
//!
//! Every host must deliver `cells_per_pair` cells to every other host.
//! The example runs the collective two ways:
//!
//! * **naive**: every host blasts its messages in destination order
//!   starting from host 0 — all senders hammer the same destination at
//!   once (systematic hotspots);
//! * **staggered**: host i sends to i+1, i+2, … (a rotating permutation
//!   schedule, as real MPI implementations do) — contention-free in every
//!   phase.
//!
//! The fabric is lossless in both cases; the difference is pure completion
//! time, and it shows why collective algorithms schedule around the
//! fabric.
//!
//! ```text
//! cargo run --release --example alltoall_collective
//! ```

use osmosis_fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis_fabric::EngineConfig;
use osmosis_traffic::Replay;

fn run_collective(radix: usize, cells_per_pair: usize, staggered: bool) -> (u64, u64) {
    let cfg = FabricConfig::small(radix, 2);
    let mut fabric = FatTreeFabric::new(cfg);
    let hosts = fabric.topology().hosts();

    let sends: Vec<std::collections::VecDeque<usize>> = (0..hosts)
        .map(|src| {
            let mut q = std::collections::VecDeque::new();
            for round in 0..hosts {
                // Staggered: rotate the destination per source so each
                // phase is a permutation. Naive: everyone walks dst 0,1,2…
                let dst = if staggered {
                    (src + round) % hosts
                } else {
                    round
                };
                if dst != src {
                    for _ in 0..cells_per_pair {
                        q.push_back(dst);
                    }
                }
            }
            q
        })
        .collect();
    let total_cells: u64 = sends.iter().map(|q| q.len() as u64).sum();
    assert_eq!(
        total_cells,
        (hosts * (hosts - 1) * cells_per_pair) as u64,
        "every ordered pair scheduled once"
    );

    let mut traffic = Replay::new(sends);
    // Generous horizon: the naive schedule serializes behind the
    // rotating hotspot and can take many times the ideal time.
    let horizon = total_cells * 2 + 10_000;
    let report = fabric.run(&mut traffic, &EngineConfig::new(0, horizon));
    assert_eq!(report.reordered, 0, "collectives rely on in-order delivery");
    assert_eq!(
        report.delivered, total_cells,
        "all cells must arrive within {horizon} slots"
    );
    // Completion time: last delivery. Approximate with the horizon minus
    // idle tail — measure via p99.9 of the latency histogram plus the
    // injection span; simplest robust measure: smallest slot count that
    // delivered everything, found by re-running with bisection would be
    // costly — instead report mean latency and the delivery rate.
    (report.delivered, report.mean_delay as u64)
}

fn main() {
    let radix = 8; // 32 hosts — same code path as the 2048-host system
    let cells = 20;
    println!(
        "All-to-all personalized exchange, radix-{radix} fat tree ({} hosts), {cells} cells/pair\n",
        radix * radix / 2
    );

    let (delivered_naive, lat_naive) = run_collective(radix, cells, false);
    let (delivered_stag, lat_stag) = run_collective(radix, cells, true);

    println!(
        "naive destination order:     {delivered_naive} cells, mean latency {lat_naive} cycles"
    );
    println!("staggered (rotating) order:  {delivered_stag} cells, mean latency {lat_stag} cycles");
    println!();
    println!("The staggered schedule keeps every phase contention-free, so cells spend");
    println!("far less time queued: the fabric rewards collectives that rotate their");
    println!("destinations — and stays lossless and in-order either way.");
    assert!(lat_stag < lat_naive, "staggering must win");
}
