//! Quickstart: build the OSMOSIS demonstrator, run uniform traffic
//! through the 64-port switch, and print the switch-level report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use osmosis_core::Demonstrator;
use osmosis_sim::SeedSequence;
use osmosis_switch::EngineConfig;
use osmosis_traffic::BernoulliUniform;

fn main() {
    // The §V demonstrator: 64 ports × 40 Gb/s, 256-byte cells (51.2 ns
    // cycle), dual receivers, FLPPR scheduler, (272,256,3) FEC.
    let d = Demonstrator::new();
    println!("OSMOSIS demonstrator");
    println!("  ports              : {}", d.config.ports);
    println!("  port rate          : {} Gb/s", d.config.port_gbps);
    println!("  cell cycle         : {}", d.cell_cycle());
    println!("  aggregate          : {:.2} Tb/s", d.aggregate_tbps());
    println!(
        "  user bandwidth     : {:.1}%",
        d.user_bandwidth_fraction() * 100.0
    );
    println!("  power budget closes: {}", d.power_budget_closes());
    println!("  FLPPR depth        : {}", d.scheduler().depth());

    // Offer 80% uniform Bernoulli traffic and measure.
    let mut traffic = BernoulliUniform::new(d.config.ports, 0.8, &SeedSequence::new(42));
    let report = d.run(
        Box::new(d.scheduler()),
        &mut traffic,
        &EngineConfig::new(2_000, 20_000),
    );

    println!("\n80% uniform load, {} measured slots:", 20_000);
    println!("  throughput      : {:.1}%", report.throughput * 100.0);
    println!(
        "  mean delay      : {:.2} cycles = {:.0} ns",
        report.mean_delay,
        d.slots_to_ns(report.mean_delay)
    );
    if let Some(p99) = report.p99_delay {
        println!(
            "  p99 delay       : {:.1} cycles = {:.0} ns",
            p99,
            d.slots_to_ns(p99)
        );
    }
    println!(
        "  request→grant   : {:.2} cycles (FLPPR single-cycle at low load)",
        report.mean_request_grant
    );
    println!("  cells delivered : {}", report.delivered);
    println!("  drops           : {}", report.dropped);
    println!("  reorderings     : {}", report.reordered);
    assert_eq!(report.dropped, 0, "OSMOSIS is lossless");
    assert_eq!(report.reordered, 0, "per-flow order is maintained");
}
