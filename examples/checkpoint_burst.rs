//! Checkpoint I/O burst: many compute nodes simultaneously dump state to
//! a handful of I/O nodes — the classic incast pattern that stresses the
//! paper's losslessness and flow-control machinery (Figs. 3–4).
//!
//! The experiment overloads 4 I/O nodes with traffic from all 28 compute
//! nodes and shows that (a) nothing is ever dropped, (b) per-flow order
//! holds, (c) the I/O node links run at 100% utilization, and (d) the
//! credit loop bounds every buffer, with backpressure absorbing the rest.
//!
//! ```text
//! cargo run --release --example checkpoint_burst
//! ```

use osmosis_fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis_fabric::EngineConfig;
use osmosis_sim::{SeedSequence, SimRng};
use osmosis_traffic::{Arrival, Class, TrafficGen};

/// Compute nodes stream checkpoint cells to the I/O nodes round-robin;
/// I/O nodes send nothing.
struct CheckpointTraffic {
    hosts: usize,
    io_nodes: Vec<usize>,
    load: f64,
    rngs: Vec<SimRng>,
    next_io: Vec<usize>,
}

impl CheckpointTraffic {
    fn new(hosts: usize, io_nodes: Vec<usize>, load: f64, seeds: &SeedSequence) -> Self {
        CheckpointTraffic {
            rngs: (0..hosts).map(|i| seeds.stream("ckpt", i as u64)).collect(),
            next_io: vec![0; hosts],
            hosts,
            io_nodes,
            load,
        }
    }
}

impl TrafficGen for CheckpointTraffic {
    fn ports(&self) -> usize {
        self.hosts
    }

    fn offered_load(&self) -> f64 {
        self.load
    }

    fn arrivals(&mut self, _slot: u64, out: &mut Vec<Arrival>) {
        for src in 0..self.hosts {
            if self.io_nodes.contains(&src) {
                continue;
            }
            if self.rngs[src].coin(self.load) {
                let dst = self.io_nodes[self.next_io[src] % self.io_nodes.len()];
                self.next_io[src] += 1;
                out.push(Arrival {
                    src,
                    dst,
                    class: Class::Data,
                });
            }
        }
    }
}

fn main() {
    let radix = 8; // 32 hosts
    let cfg = FabricConfig::small(radix, 2);
    let mut fabric = FatTreeFabric::new(cfg);
    let hosts = fabric.topology().hosts();
    // One I/O node per leaf quadrant: hosts 0, 8, 16, 24.
    let io_nodes: Vec<usize> = (0..4).map(|i| i * (hosts / 4)).collect();
    let compute = hosts - io_nodes.len();

    println!(
        "Checkpoint burst: {compute} compute nodes → {} I/O nodes",
        io_nodes.len()
    );
    println!("fabric: radix-{radix} two-level fat tree, credit flow control, option-3 buffers\n");

    // Each compute node offers 40% of line rate — aggregate 28×0.4 = 11.2
    // cells/slot toward 4 sinks that drain 4 cells/slot: a 2.8× incast.
    let load = 0.4;
    let mut traffic = CheckpointTraffic::new(hosts, io_nodes.clone(), load, &SeedSequence::new(7));
    let report = fabric.run(&mut traffic, &EngineConfig::new(1_000, 30_000));

    let io_rate = report.delivered as f64 / 30_000.0 / io_nodes.len() as f64;
    println!(
        "offered per compute node : {:.0}% of line rate",
        load * 100.0
    );
    println!(
        "aggregate offered        : {:.1} cells/slot into {} sinks",
        load * compute as f64,
        io_nodes.len()
    );
    println!("I/O-node link utilization: {:.1}%", io_rate * 100.0);
    println!("cells delivered          : {}", report.delivered);
    println!("reorderings              : {}", report.reordered);
    println!(
        "peak buffer occupancy    : {} cells (capacity {})",
        report.max_queue_depth, cfg.buffer_cells
    );
    println!(
        "mean fabric latency      : {:.0} cycles (queued behind the incast)",
        report.mean_delay
    );

    assert_eq!(report.reordered, 0);
    assert!(report.max_queue_depth <= cfg.buffer_cells);
    assert!(
        io_rate > 0.97,
        "the bottleneck links must run at line rate: {io_rate}"
    );
    println!("\nThe 2.8× overload never drops a cell: credits stall the sources, the");
    println!("I/O links stay 100% busy, and order is preserved — Table 1 under incast.");
}
