//! The §IV.C reliability stack on one noisy optical link: the
//! (272,256,3) FEC plus hop-by-hop go-back-N retransmission, end to end
//! through the real encoder, bit-error channel, and decoder.
//!
//! ```text
//! cargo run --release --example reliable_link
//! ```

use osmosis_fec::analytics::{block_outcomes, user_ber_fec_only, user_ber_with_retransmission};
use osmosis_fec::retransmission::{run_reliable_link, LinkConfig};

fn main() {
    println!("Two-tier reliability on a 40 Gb/s optical link (256-byte cells)\n");

    // Tier table at the paper's raw BERs (analytic — the event rates are
    // far beyond Monte-Carlo reach).
    println!("raw BER     FEC-only user BER   FEC+retx user BER");
    for raw in [1e-12f64, 1e-11, 1e-10] {
        println!(
            "{:>8.0e}   {:>17.2e}   {:>17.2e}",
            raw,
            user_ber_fec_only(raw),
            user_ber_with_retransmission(raw)
        );
    }
    println!("\npaper targets: < 1e-17 after FEC, < 1e-21 after retransmission ✓");

    // Monte-Carlo at an exaggerated BER so every code path fires.
    for raw in [1e-6f64, 1e-5, 1e-4] {
        let o = block_outcomes(raw);
        let cfg = LinkConfig::osmosis(5, raw, 42);
        let r = run_reliable_link(&cfg, 5_000);
        println!(
            "\nraw BER {raw:.0e}: P(block corrected) = {:.2e}, P(detected) = {:.2e}",
            o.corrected, o.detected
        );
        println!(
            "  link run: {}/{} cells delivered in order, {} FEC-corrected cells,",
            r.delivered, r.offered, r.fec_corrected_cells
        );
        println!(
            "  {} retransmissions, {} undetected corruptions, goodput {:.4}",
            r.retransmissions, r.undetected_corruptions, r.goodput
        );
        assert_eq!(r.delivered, r.offered);
        assert_eq!(r.undetected_corruptions, 0);
    }
    println!("\nEven at a million times the real error rate, every cell arrives intact:");
    println!("single-bit errors are corrected in place, everything else is detected and");
    println!("retransmitted within one deterministic link RTT.");
}
