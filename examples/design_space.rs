//! Design-space exploration: where does the OSMOSIS design point sit?
//!
//! Sweeps cell size × guard time × port rate through the analytic models
//! and prints which configurations satisfy Table 1's 75% user-bandwidth
//! floor while keeping the scheduler feasible (one FLPPR iteration per
//! cell cycle) — showing why the paper picked 256-byte cells at 40 Gb/s
//! with a 10.4 ns guard, and what the §VII technology unlocks.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use osmosis_analysis::scaling::cell_time_ns;
use osmosis_phy::guard::{CellEfficiency, GuardBudget};
use osmosis_sim::TimeDelta;

fn main() {
    let guards = [
        ("2005 SOA (10.4 ns)", GuardBudget::osmosis_default().total()),
        ("§VII outlook (2.5 ns)", GuardBudget::fast_outlook().total()),
    ];
    // The FPGA scheduler needs ≥ 51.2 ns per iteration; the §VII ASIC is
    // 4× faster.
    let sched = [("FPGA (51.2 ns/iter)", 51.2), ("ASIC (12.8 ns/iter)", 12.8)];

    println!("configuration                                  user BW   sched feasible?  verdict");
    println!("--------------------------------------------   -------   ---------------  -------");
    for (gname, guard) in guards {
        for (sname, iter_ns) in sched {
            for cell_bytes in [64u64, 128, 256] {
                for rate in [40.0f64, 80.0, 160.0] {
                    let cycle = cell_time_ns(cell_bytes as u32, rate);
                    if guard.as_ns_f64() >= cycle {
                        continue; // guard swallows the whole cell
                    }
                    let eff = CellEfficiency {
                        cell_bytes,
                        port_gbps: rate,
                        guard,
                        fec_overhead: 0.0625,
                    };
                    let user = eff.user_fraction();
                    let feasible = iter_ns <= cycle;
                    let ok = user >= 0.75 && feasible;
                    println!(
                        "{cell_bytes:>4} B @ {rate:>3.0} G, {gname:<22} {sname:<10}  {:>5.1}%   {:<15}  {}",
                        user * 100.0,
                        if feasible { "yes" } else { "no" },
                        if ok { "VIABLE" } else { "-" },
                    );
                }
            }
        }
    }
    println!();
    println!("2005 technology admits exactly the paper's design point (256 B @ 40 G on");
    println!("the FPGA scheduler); the §VII guard + ASIC unlock 64-byte cells and");
    println!("160 Gb/s ports — the outlook quantified.");
    let _ = TimeDelta::ZERO;
}
