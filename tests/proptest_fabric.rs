//! Property-based tests of the fabric topology and routing: paths are
//! well-formed for arbitrary host pairs and topologies, and simulated
//! fabrics preserve the Table 1 invariants for arbitrary traffic.

use osmosis::fabric::multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
use osmosis::fabric::topology::TwoLevelFatTree;
use osmosis::sim::{EngineConfig, SeedSequence};
use osmosis::traffic::BernoulliUniform;
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = MultiLevelClos> {
    (1u32..=4, prop::sample::select(vec![4usize, 6, 8])).prop_map(|(levels, radix)| {
        // Cap host counts so tests stay fast.
        let levels = if radix >= 8 { levels.min(2) } else { levels };
        MultiLevelClos::new(radix, levels)
    })
}

proptest! {
    /// Every src→dst path starts at the source leaf, ends at the
    /// destination leaf, ascends then descends symmetrically, and stays
    /// within topology bounds.
    #[test]
    fn paths_are_well_formed(topo in topo_strategy(), seed in any::<u64>()) {
        let hosts = topo.hosts();
        let src = (seed as usize) % hosts;
        let dst = (seed as usize / hosts) % hosts;
        let path = topo.path(src, dst);
        prop_assert_eq!(path[0], (0, topo.leaf_of(src)));
        prop_assert_eq!(*path.last().unwrap(), (0, topo.leaf_of(dst)));
        let a = topo.ascent(src, dst);
        prop_assert_eq!(path.len() as u32, 2 * a + 1, "up then down");
        // Levels form the tent profile 0,1,…,a,…,1,0 and indices are
        // in range.
        for (i, &(level, sw)) in path.iter().enumerate() {
            let expect = (i as u32).min(2 * a - (i as u32).min(2 * a));
            prop_assert_eq!(level, expect.min(a));
            prop_assert!(sw < topo.switches_per_level());
        }
    }

    /// Paths are flow-stable: the same (src, dst) always routes the same
    /// way — the property per-flow ordering rests on.
    #[test]
    fn paths_are_deterministic(topo in topo_strategy(), pair in any::<u64>()) {
        let hosts = topo.hosts();
        let src = (pair as usize) % hosts;
        let dst = (pair as usize >> 16) % hosts;
        prop_assert_eq!(topo.path(src, dst), topo.path(src, dst));
    }

    /// Two-level topology helpers are self-consistent.
    #[test]
    fn two_level_mapping_consistent(radix in prop::sample::select(vec![4usize, 8, 16]), h in any::<usize>()) {
        let t = TwoLevelFatTree::new(radix);
        let h = h % t.hosts();
        let leaf = t.leaf_of(h);
        prop_assert!(leaf < t.leaves());
        prop_assert_eq!(leaf * t.hosts_per_leaf() + t.down_port_of(h), h);
        let s = t.spine_of_flow(h, (h + 1) % t.hosts());
        prop_assert!(s < t.spines());
        prop_assert!(t.up_port(s) >= t.hosts_per_leaf());
        prop_assert!(t.up_port(s) < radix);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary multilevel fabrics stay lossless and in order under
    /// arbitrary uniform loads.
    #[test]
    fn multilevel_sim_invariants(
        levels in 1u32..=3,
        load in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let topo = MultiLevelClos::new(4, levels);
        let cfg = MultiLevelConfig::standard(topo, 2);
        let mut fab = MultiLevelFabric::new(cfg);
        let mut tr = BernoulliUniform::new(topo.hosts(), load, &SeedSequence::new(seed));
        // Losslessness is asserted inside the simulator.
        let r = fab.run(&mut tr, &EngineConfig::new(300, 2_000));
        prop_assert_eq!(r.reordered, 0);
        prop_assert!(r.max_queue_depth <= cfg.buffer_cells);
        prop_assert!(r.throughput <= r.offered_load + 0.05);
    }
}
