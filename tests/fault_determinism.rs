//! Fault-plane reproducibility: a seeded [`FaultPlan`] played against any
//! simulator on the shared engine is a pure function of the run seed —
//! the fault trace (every injection/heal transition) and the full engine
//! report are bit-identical across reruns, and an *empty* plan leaves
//! every simulator's report bit-identical to the plain, unfaulted run
//! (the hook costs nothing when unused).

use osmosis::fabric::multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
use osmosis::fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis::faults::{FaultInjector, FaultKind, FaultPlan, LINK_ANY};
use osmosis::sched::Flppr;
use osmosis::sim::{EngineConfig, SeedSequence};
use osmosis::switch::driven::CellSwitch;
use osmosis::switch::{
    run_switch, run_switch_faulted, run_switch_instrumented, BurstSwitch, BvnSwitch, CioqSwitch,
    DeflectionSwitch, FifoSwitch, OqSwitch, RemoteSchedulerSwitch, VoqSwitch,
};
use osmosis::traffic::BernoulliUniform;
use osmosis_audit::{AuditMode, AuditSet};

fn cfg(seed: u64) -> EngineConfig {
    EngineConfig::new(200, 2_500).with_seed(seed)
}

/// A plan exercising deterministic, periodic, and MTBF/MTTR-sampled
/// schedules at once. The stochastic entry ties the fault timeline to the
/// run seed; reactive simulators additionally consult the loss
/// probabilities, non-reactive ones just carry the view along.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .one_shot(FaultKind::SoaStuckOff { output: 1 }, 400, Some(300))
        .periodic(FaultKind::GrantLoss { prob: 0.1 }, 200, 900, 250)
        .stochastic(
            FaultKind::LinkBerBurst {
                link: LINK_ANY,
                cell_error_prob: 0.05,
            },
            1_500.0,
            300.0,
        )
}

/// The fault-plane reproducibility contract, checked for one simulator:
///
/// 1. same seed ⇒ bit-identical fault trace *and* bit-identical report;
/// 2. a different seed changes the run (traffic and/or fault timeline);
/// 3. an empty plan is invisible: `run_faulted` == plain `run`, bit for
///    bit;
/// 4. the full invariant battery on the clean run finds nothing and
///    leaves the report bit-identical to the plain run;
/// 5. (`audit_faulted` models) the battery also passes on the *faulted*
///    run — every drop is accounted, every credit conserved, per-flow
///    order held through retransmissions.
///
/// `ordered` selects the battery: BVN load balancing and deflection
/// routing reorder by design, so they run without the order auditor.
fn assert_fault_determinism<S: CellSwitch>(
    name: &str,
    hosts: usize,
    load: f64,
    ordered: bool,
    audit_faulted: bool,
    mk: impl Fn() -> S,
) {
    let battery = || {
        if ordered {
            AuditSet::standard(AuditMode::FailFast)
        } else {
            AuditSet::unordered(AuditMode::FailFast)
        }
    };
    let faulted = |seed: u64| {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
        let mut inj = FaultInjector::new(plan());
        let r = run_switch_faulted(&mut sw, &mut tr, &cfg(seed), &mut inj);
        (r, inj.events().to_vec())
    };

    let (a, ea) = faulted(1234);
    let (b, eb) = faulted(1234);
    assert!(!ea.is_empty(), "{name}: the plan must actually fire");
    assert_eq!(ea, eb, "{name}: same seed must replay the same fault trace");
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "{name}: same seed must give a bit-identical faulted report"
    );

    let (c, _) = faulted(4321);
    assert_ne!(
        a.fingerprint(),
        c.fingerprint(),
        "{name}: a different seed must change the faulted run"
    );

    let plain = {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(1234));
        run_switch(&mut sw, &mut tr, &cfg(1234))
    };
    let empty = {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(1234));
        let mut inj = FaultInjector::new(FaultPlan::new());
        run_switch_faulted(&mut sw, &mut tr, &cfg(1234), &mut inj)
    };
    assert_eq!(
        plain.fingerprint(),
        empty.fingerprint(),
        "{name}: an empty fault plan must be bit-identical to the plain run"
    );

    // 4. Audited clean run: zero violations (fail-fast would panic), and
    // the report — fingerprint included — matches the plain run exactly.
    let audited = {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(1234));
        let mut set = battery();
        let r = run_switch_instrumented(&mut sw, &mut tr, &cfg(1234), None, Some(&mut set));
        assert_eq!(
            set.total_violations(),
            0,
            "{name}: clean run must audit clean"
        );
        r
    };
    assert_eq!(
        plain.fingerprint(),
        audited.fingerprint(),
        "{name}: a clean audit must not perturb the run"
    );

    // 5. Audited faulted run, where the model supports it.
    if audit_faulted {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(1234));
        let mut inj = FaultInjector::new(plan());
        let mut set = battery();
        let r =
            run_switch_instrumented(&mut sw, &mut tr, &cfg(1234), Some(&mut inj), Some(&mut set));
        assert_eq!(
            set.total_violations(),
            0,
            "{name}: invariants must hold under faults: {}",
            set.report()
        );
        assert_eq!(
            a.fingerprint(),
            r.fingerprint(),
            "{name}: auditing the faulted run must not perturb it"
        );
    }
}

#[test]
fn voq_switch_faults_are_deterministic() {
    assert_fault_determinism("voq", 16, 0.7, true, true, || {
        VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)))
    });
}

#[test]
fn fifo_switch_faults_are_deterministic() {
    assert_fault_determinism("fifo", 16, 0.5, true, true, || FifoSwitch::new(16));
}

#[test]
fn oq_switch_faults_are_deterministic() {
    assert_fault_determinism("oq", 16, 0.7, true, true, || OqSwitch::new(16));
}

#[test]
fn bvn_switch_faults_are_deterministic() {
    assert_fault_determinism("bvn", 16, 0.6, false, true, || BvnSwitch::new(16));
}

#[test]
fn burst_switch_faults_are_deterministic() {
    assert_fault_determinism("burst", 16, 0.6, true, true, || BurstSwitch::new(16, 8, 8));
}

#[test]
fn deflection_switch_faults_are_deterministic() {
    assert_fault_determinism("deflection", 16, 0.6, false, true, || {
        DeflectionSwitch::new(16, 4, 7)
    });
}

#[test]
fn cioq_switch_faults_are_deterministic() {
    assert_fault_determinism("cioq", 16, 0.8, true, true, || CioqSwitch::new(16, 2, 8));
}

#[test]
fn remote_scheduler_switch_faults_are_deterministic() {
    assert_fault_determinism("remote_sched", 8, 0.5, true, true, || {
        RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 4)
    });
}

#[test]
fn fat_tree_fabric_faults_are_deterministic() {
    assert_fault_determinism("multistage", 32, 0.5, true, true, || {
        FatTreeFabric::new(FabricConfig::small(8, 2))
    });
}

#[test]
fn multilevel_fabric_faults_are_deterministic() {
    let topo = MultiLevelClos::new(4, 3);
    assert_fault_determinism("multilevel", topo.hosts(), 0.4, true, true, move || {
        MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2))
    });
}

#[test]
fn stochastic_fault_timeline_depends_only_on_the_seed() {
    // The fault schedule stream is independent of the model: the same
    // seed produces the same MTBF/MTTR timeline no matter which
    // simulator the injector is attached to.
    let events_for = |hosts: usize, load: f64| {
        let mut sw = OqSwitch::new(hosts);
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(9));
        let mut inj = FaultInjector::new(FaultPlan::new().stochastic(
            FaultKind::ReceiverDeath { output: 0 },
            700.0,
            150.0,
        ));
        run_switch_faulted(&mut sw, &mut tr, &cfg(9), &mut inj);
        inj.events().to_vec()
    };
    assert_eq!(
        events_for(8, 0.3),
        events_for(32, 0.8),
        "fault timeline must not depend on the model or its traffic"
    );
}
