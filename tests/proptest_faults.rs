//! Property-based tests of degraded-mode resilience: the credit-based
//! flow control stays lossless and in order under *arbitrary* seeded
//! fault plans — random credit-drop probabilities, random MTBF/MTTR
//! repair processes, and random link-corruption bursts on top.

use osmosis::fabric::multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
use osmosis::fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis::faults::{FaultInjector, FaultKind, FaultPlan, LINK_ANY};
use osmosis::sched::Flppr;
use osmosis::sim::{EngineConfig, SeedSequence};
use osmosis::switch::driven::CellSwitch;
use osmosis::switch::{
    run_switch_instrumented, BurstSwitch, BvnSwitch, CioqSwitch, DeflectionSwitch, FifoSwitch,
    OqSwitch, RemoteSchedulerSwitch, VoqSwitch,
};
use osmosis::traffic::BernoulliUniform;
use osmosis_audit::{AuditMode, AuditSet};
use proptest::prelude::*;

/// Run one simulator under `plan` with the invariant battery attached and
/// return the violation report rendered, or `None` if it audited clean.
/// `ordered` drops the order auditor for the models that reorder by
/// design (BVN load balancing, deflection routing).
fn audit_under<S: CellSwitch>(
    hosts: usize,
    load: f64,
    seed: u64,
    ordered: bool,
    plan: &FaultPlan,
    mk: impl FnOnce() -> S,
) -> Option<String> {
    let mut sw = mk();
    let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
    let mut inj = FaultInjector::new(plan.clone());
    let mut set = if ordered {
        AuditSet::standard(AuditMode::Accumulate)
    } else {
        AuditSet::unordered(AuditMode::Accumulate)
    };
    let cfg = EngineConfig::new(100, 1_500).with_seed(seed);
    run_switch_instrumented(&mut sw, &mut tr, &cfg, Some(&mut inj), Some(&mut set));
    if set.total_violations() == 0 {
        None
    } else {
        Some(set.report().to_string())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Dropped credits may throttle the fabric but can never lose,
    /// reorder, or duplicate a cell: every injected cell is either
    /// delivered or still resident when the run ends.
    #[test]
    fn flow_control_is_lossless_under_random_credit_drop_plans(
        radix in prop::sample::select(vec![4usize, 8]),
        load in 0.1f64..0.6,
        drop_p in 0.01f64..0.4,
        mtbf in 200.0f64..2_000.0,
        mttr in 50.0f64..500.0,
        seed in any::<u64>(),
    ) {
        let mut fab = FatTreeFabric::new(FabricConfig::small(radix, 2));
        let hosts = fab.topology().hosts();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
        let plan = FaultPlan::new()
            .stochastic(FaultKind::CreditDrop { prob: drop_p }, mtbf, mttr);
        let mut inj = FaultInjector::new(plan);
        let cfg = EngineConfig::new(0, 3_000).with_seed(seed);
        let r = fab.run_faulted(&mut tr, &cfg, &mut inj);
        prop_assert_eq!(r.dropped, 0, "credit drops must not lose cells");
        prop_assert_eq!(r.reordered, 0, "credit drops must not reorder");
        prop_assert_eq!(
            r.injected,
            r.delivered + fab.resident_cells(),
            "every cell is delivered or accounted for in a queue"
        );
    }

    /// Link corruption bursts stacked on top of credit drops: hop-by-hop
    /// retransmission plus credit resynchronisation still deliver every
    /// cell exactly once, in order.
    #[test]
    fn retransmission_and_resync_compose_losslessly(
        load in 0.1f64..0.5,
        drop_p in 0.01f64..0.3,
        ber in 0.005f64..0.15,
        fault_at in 100u64..800,
        repair in 200u64..1_000,
        seed in any::<u64>(),
    ) {
        let mut fab = FatTreeFabric::new(FabricConfig::small(4, 2));
        let hosts = fab.topology().hosts();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
        let plan = FaultPlan::new()
            .one_shot(FaultKind::CreditDrop { prob: drop_p }, fault_at, Some(repair))
            .one_shot(
                FaultKind::LinkBerBurst { link: LINK_ANY, cell_error_prob: ber },
                fault_at,
                Some(repair),
            );
        let mut inj = FaultInjector::new(plan);
        let cfg = EngineConfig::new(0, 3_000).with_seed(seed);
        let r = fab.run_faulted(&mut tr, &cfg, &mut inj);
        prop_assert_eq!(r.dropped, 0);
        prop_assert_eq!(r.reordered, 0);
        prop_assert_eq!(r.injected, r.delivered + fab.resident_cells());
        // The engine's loss ledger agrees: nothing was charged to faults.
        prop_assert_eq!(r.extra("fault_cells_lost").unwrap_or(0.0), 0.0);
    }

    /// The invariant battery holds for *every* simulator in the workspace
    /// under arbitrary seeded credit-drop + link-BER plans: cell
    /// conservation (drops accounted by reason), credit conservation
    /// (resync included), capacity legality, and — for the models that
    /// preserve order by design — per-flow order at egress.
    #[test]
    fn all_simulators_audit_clean_under_random_fault_plans(
        load in 0.1f64..0.5,
        drop_p in 0.01f64..0.3,
        ber in 0.005f64..0.1,
        fault_at in 50u64..600,
        repair in 100u64..800,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::new()
            .one_shot(FaultKind::CreditDrop { prob: drop_p }, fault_at, Some(repair))
            .one_shot(
                FaultKind::LinkBerBurst { link: LINK_ANY, cell_error_prob: ber },
                fault_at,
                Some(repair),
            );
        let mut dirty: Vec<(&str, String)> = Vec::new();
        let mut check = |name: &'static str, found: Option<String>| {
            if let Some(report) = found {
                dirty.push((name, report));
            }
        };
        check("voq", audit_under(8, load, seed, true, &plan, || {
            VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)))
        }));
        check("fifo", audit_under(8, load, seed, true, &plan, || FifoSwitch::new(8)));
        check("oq", audit_under(8, load, seed, true, &plan, || OqSwitch::new(8)));
        check("bvn", audit_under(8, load, seed, false, &plan, || BvnSwitch::new(8)));
        check("burst", audit_under(8, load, seed, true, &plan, || BurstSwitch::new(8, 8, 8)));
        check("deflection", audit_under(8, load, seed, false, &plan, || {
            DeflectionSwitch::new(8, 4, 7)
        }));
        check("cioq", audit_under(8, load, seed, true, &plan, || CioqSwitch::new(8, 2, 8)));
        check("remote_sched", audit_under(8, load, seed, true, &plan, || {
            RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 4)
        }));
        check("fat-tree", audit_under(8, load, seed, true, &plan, || {
            FatTreeFabric::new(FabricConfig::small(4, 2))
        }));
        let topo = MultiLevelClos::new(4, 3);
        check("multilevel", audit_under(topo.hosts(), load, seed, true, &plan, move || {
            MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2))
        }));
        prop_assert!(
            dirty.is_empty(),
            "violations under plan drop_p={drop_p:.3} ber={ber:.3} seed={seed}: {dirty:?}"
        );
    }
}
