//! Property-based tests of degraded-mode resilience: the credit-based
//! flow control stays lossless and in order under *arbitrary* seeded
//! fault plans — random credit-drop probabilities, random MTBF/MTTR
//! repair processes, and random link-corruption bursts on top.

use osmosis::fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis::faults::{FaultInjector, FaultKind, FaultPlan, LINK_ANY};
use osmosis::sim::{EngineConfig, SeedSequence};
use osmosis::traffic::BernoulliUniform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Dropped credits may throttle the fabric but can never lose,
    /// reorder, or duplicate a cell: every injected cell is either
    /// delivered or still resident when the run ends.
    #[test]
    fn flow_control_is_lossless_under_random_credit_drop_plans(
        radix in prop::sample::select(vec![4usize, 8]),
        load in 0.1f64..0.6,
        drop_p in 0.01f64..0.4,
        mtbf in 200.0f64..2_000.0,
        mttr in 50.0f64..500.0,
        seed in any::<u64>(),
    ) {
        let mut fab = FatTreeFabric::new(FabricConfig::small(radix, 2));
        let hosts = fab.topology().hosts();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
        let plan = FaultPlan::new()
            .stochastic(FaultKind::CreditDrop { prob: drop_p }, mtbf, mttr);
        let mut inj = FaultInjector::new(plan);
        let cfg = EngineConfig::new(0, 3_000).with_seed(seed);
        let r = fab.run_faulted(&mut tr, &cfg, &mut inj);
        prop_assert_eq!(r.dropped, 0, "credit drops must not lose cells");
        prop_assert_eq!(r.reordered, 0, "credit drops must not reorder");
        prop_assert_eq!(
            r.injected,
            r.delivered + fab.resident_cells(),
            "every cell is delivered or accounted for in a queue"
        );
    }

    /// Link corruption bursts stacked on top of credit drops: hop-by-hop
    /// retransmission plus credit resynchronisation still deliver every
    /// cell exactly once, in order.
    #[test]
    fn retransmission_and_resync_compose_losslessly(
        load in 0.1f64..0.5,
        drop_p in 0.01f64..0.3,
        ber in 0.005f64..0.15,
        fault_at in 100u64..800,
        repair in 200u64..1_000,
        seed in any::<u64>(),
    ) {
        let mut fab = FatTreeFabric::new(FabricConfig::small(4, 2));
        let hosts = fab.topology().hosts();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
        let plan = FaultPlan::new()
            .one_shot(FaultKind::CreditDrop { prob: drop_p }, fault_at, Some(repair))
            .one_shot(
                FaultKind::LinkBerBurst { link: LINK_ANY, cell_error_prob: ber },
                fault_at,
                Some(repair),
            );
        let mut inj = FaultInjector::new(plan);
        let cfg = EngineConfig::new(0, 3_000).with_seed(seed);
        let r = fab.run_faulted(&mut tr, &cfg, &mut inj);
        prop_assert_eq!(r.dropped, 0);
        prop_assert_eq!(r.reordered, 0);
        prop_assert_eq!(r.injected, r.delivered + fab.resident_cells());
        // The engine's loss ledger agrees: nothing was charged to faults.
        prop_assert_eq!(r.extra("fault_cells_lost").unwrap_or(0.0), 0.0);
    }
}
