//! Property-based tests of the topology compiler: for arbitrary specs of
//! all three families, the expanded graph honors the closed-form host
//! count, keeps minimal routes within the family's stage bound, wires
//! every cable consistently at both ends, and re-expands bit-identically.

use osmosis::fabric::expand::{ExpandedFabric, Peer};
use osmosis::fabric::ids::{EntityId, HostId};
use osmosis::fabric::spec::{DragonflyShape, TopologySpec};
use proptest::prelude::*;

/// Specs of all three families, small enough to expand in microseconds
/// but covering every wiring branch (multi-plane and single-plane fat
/// trees of 1–4 levels, dragonflies from 1 group toward the
/// global-channel limit, meshes from a single switch to radix-many).
fn spec_strategy() -> impl Strategy<Value = TopologySpec> {
    (
        0u32..4,
        prop::sample::select(vec![4usize, 6, 8, 16]),
        1u32..=8,
    )
        .prop_map(|(family, radix, size)| match family {
            0 => {
                let levels = if radix >= 8 { size.min(3) } else { size.min(4) };
                TopologySpec::fat_tree(radix, levels)
            }
            1 => TopologySpec::m_ary_fat_tree(radix, size.min(3)),
            2 => {
                let cap = DragonflyShape::for_radix(radix).unwrap().max_groups();
                TopologySpec::dragonfly(radix, size.min(cap))
            }
            _ => TopologySpec::full_mesh(radix, size.min(radix as u32)),
        })
}

proptest! {
    /// The expansion realizes exactly the closed-form host, switch, and
    /// stage counts the spec promises.
    #[test]
    fn expansion_matches_closed_forms(spec in spec_strategy()) {
        let fab = ExpandedFabric::expand(spec).unwrap();
        prop_assert_eq!(fab.hosts.len() as u64, spec.hosts(), "{}", spec);
        prop_assert_eq!(fab.switches.len() as u64, spec.switch_count(), "{}", spec);
        prop_assert_eq!(fab.ports.len(), fab.switches.len() * spec.radix);
    }

    /// Minimal routes visit at most `stages()` switches — ≤ 2L−1 for an
    /// L-level fat tree, ≤ 4 for a dragonfly, ≤ 2 for a mesh — and both
    /// endpoints sit on the attachment switches.
    #[test]
    fn paths_stay_within_the_stage_bound(spec in spec_strategy(), pair in any::<u64>()) {
        let fab = ExpandedFabric::expand(spec).unwrap();
        let hosts = fab.hosts.len();
        let src = HostId::from_index(pair as usize % hosts);
        let dst = HostId::from_index((pair as usize >> 16) % hosts);
        let path = fab.path(src, dst);
        prop_assert!(!path.is_empty());
        prop_assert!(
            path.len() as u32 <= spec.stages(),
            "{}: {} switches > {} stages", spec, path.len(), spec.stages()
        );
        prop_assert_eq!(path[0], fab.host_attach(src).0);
        prop_assert_eq!(*path.last().unwrap(), fab.host_attach(dst).0);
    }

    /// Every cable is recorded once and its two endpoints point back at
    /// each other; every host attachment is mutual too.
    #[test]
    fn links_are_mutual(spec in spec_strategy()) {
        let fab = ExpandedFabric::expand(spec).unwrap();
        for link in fab.links.values() {
            prop_assert_ne!(link.a, link.b);
            prop_assert_eq!(fab.ports[link.a].peer, Peer::Port(link.b));
            prop_assert_eq!(fab.ports[link.b].peer, Peer::Port(link.a));
        }
        // Each switch-to-switch peer pair appears as exactly one link.
        let cabled = fab
            .ports
            .values()
            .filter(|p| matches!(p.peer, Peer::Port(_)))
            .count();
        prop_assert_eq!(cabled, 2 * fab.links.len());
        for (h, info) in fab.hosts.iter() {
            prop_assert_eq!(fab.ports[info.port].peer, Peer::Host(h));
            prop_assert_eq!(fab.ports[info.port].switch, info.switch);
        }
    }

    /// Expansion is a pure function of the spec: re-expanding yields a
    /// bit-identical structure.
    #[test]
    fn re_expansion_is_deterministic(spec in spec_strategy()) {
        let a = ExpandedFabric::expand(spec).unwrap();
        let b = ExpandedFabric::expand(spec).unwrap();
        prop_assert_eq!(a.structural_fingerprint(), b.structural_fingerprint());
        prop_assert_eq!(a.hosts.len(), b.hosts.len());
        prop_assert_eq!(a.links.len(), b.links.len());
    }

    /// Routing is total: walking `route()` from any source delivers to
    /// any destination (the path walk above terminates), and the chosen
    /// out-port always exists on the switch.
    #[test]
    fn routes_use_real_ports(spec in spec_strategy(), pair in any::<u64>()) {
        let fab = ExpandedFabric::expand(spec).unwrap();
        let hosts = fab.hosts.len();
        let src = HostId::from_index(pair as usize % hosts);
        let dst = HostId::from_index((pair as usize >> 24) % hosts);
        let (sw, in_port) = fab.host_attach(src);
        let out = fab.route(sw, in_port, src, dst);
        prop_assert!((out as usize) < spec.radix);
        if fab.host_attach(dst).0 == sw {
            // Same edge switch: the route must exit straight to the host.
            prop_assert_eq!(fab.ports[fab.port_id(sw, out)].peer, Peer::Host(dst));
        }
    }
}
