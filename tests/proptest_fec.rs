//! Property-based tests of the FEC subsystem: the coding invariants hold
//! for arbitrary data and arbitrary error patterns in their class.

use osmosis::fec::code::{
    decode_payload, encode_payload, Decode, OsmosisCode, BLOCK_SYMBOLS, DATA_SYMBOLS,
};
use proptest::prelude::*;

fn code() -> OsmosisCode {
    OsmosisCode::new()
}

proptest! {
    /// Systematic encoding round-trips arbitrary data.
    #[test]
    fn encode_decode_roundtrip(data in prop::array::uniform32(any::<u8>())) {
        let c = code();
        let mut block = c.encode(&data);
        prop_assert!(c.is_codeword(&block));
        prop_assert_eq!(c.decode(&mut block), Decode::Clean);
        prop_assert_eq!(&block[..DATA_SYMBOLS], &data[..]);
    }

    /// Any single-bit error anywhere in the block is corrected exactly.
    #[test]
    fn single_bit_errors_corrected(
        data in prop::array::uniform32(any::<u8>()),
        sym in 0..BLOCK_SYMBOLS,
        bit in 0u8..8,
    ) {
        let c = code();
        let clean = c.encode(&data);
        let mut block = clean;
        block[sym] ^= 1 << bit;
        let outcome = c.decode(&mut block);
        prop_assert_eq!(outcome, Decode::Corrected { position: sym, magnitude: 1 << bit });
        prop_assert_eq!(block, clean);
    }

    /// Any double-bit error (same or different symbols) is detected,
    /// never miscorrected — for arbitrary codewords, not just zero.
    #[test]
    fn double_bit_errors_detected(
        data in prop::array::uniform32(any::<u8>()),
        sym1 in 0..BLOCK_SYMBOLS,
        bit1 in 0u8..8,
        sym2 in 0..BLOCK_SYMBOLS,
        bit2 in 0u8..8,
    ) {
        prop_assume!((sym1, bit1) != (sym2, bit2));
        let c = code();
        let clean = c.encode(&data);
        let mut block = clean;
        block[sym1] ^= 1 << bit1;
        block[sym2] ^= 1 << bit2;
        prop_assert_eq!(c.decode(&mut block), Decode::Detected);
    }

    /// Any single-symbol error whose magnitude is not weight-2 is
    /// corrected in place.
    #[test]
    fn heavy_symbol_errors_corrected(
        data in prop::array::uniform32(any::<u8>()),
        sym in 0..BLOCK_SYMBOLS,
        e in 1u8..=255,
    ) {
        prop_assume!(e.count_ones() != 2);
        let c = code();
        let clean = c.encode(&data);
        let mut block = clean;
        block[sym] ^= e;
        prop_assert_eq!(
            c.decode(&mut block),
            Decode::Corrected { position: sym, magnitude: e }
        );
        prop_assert_eq!(block, clean);
    }

    /// Decoding never invents data: whatever the (arbitrary, possibly
    /// garbage) received block, decode terminates with one of the three
    /// outcomes and leaves a 34-byte block.
    #[test]
    fn decode_total_on_garbage(block in prop::array::uniform::<_, 34>(any::<u8>())) {
        let c = code();
        let mut b = block;
        let outcome = c.decode(&mut b);
        match outcome {
            Decode::Clean => prop_assert_eq!(b, block),
            Decode::Detected => prop_assert_eq!(b, block, "detected blocks are untouched"),
            Decode::Corrected { position, magnitude } => {
                prop_assert!(position < BLOCK_SYMBOLS);
                prop_assert!(magnitude != 0);
                // The corrected block is a codeword.
                prop_assert!(c.is_codeword(&b));
            }
        }
    }

    /// Payload framing round-trips arbitrary lengths.
    #[test]
    fn payload_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..1024)) {
        let c = code();
        let coded = encode_payload(&c, &payload);
        prop_assert_eq!(coded.len() % BLOCK_SYMBOLS, 0);
        let out = decode_payload(&c, &coded);
        prop_assert_eq!(&out.data[..payload.len()], &payload[..]);
        prop_assert_eq!(out.corrected_blocks, 0);
        prop_assert_eq!(out.detected_blocks, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bit-error channel is deterministic per seed and its measured
    /// BER approaches the configured value on long streams.
    #[test]
    fn channel_determinism(seed in any::<u64>(), ber_exp in 2u32..5) {
        use osmosis::fec::BitErrorChannel;
        let ber = 10f64.powi(-(ber_exp as i32));
        let mut a = BitErrorChannel::new(ber, seed);
        let mut b = BitErrorChannel::new(ber, seed);
        let mut x = vec![0u8; 2048];
        let mut y = vec![0u8; 2048];
        a.transmit(&mut x);
        b.transmit(&mut y);
        prop_assert_eq!(x, y);
    }
}
