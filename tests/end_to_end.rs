//! Cross-crate integration tests: the full OSMOSIS stack exercised
//! through the umbrella crate's public API.

use osmosis::core::{Demonstrator, OsmosisFabricConfig, Scale};
use osmosis::fec::{decode_payload, encode_payload, BitErrorChannel, OsmosisCode};
use osmosis::sched::Flppr;
use osmosis::sim::SeedSequence;
use osmosis::switch::EngineConfig;
use osmosis::traffic::{BernoulliUniform, Bimodal};

/// A cell's payload surviving the full FEC + noisy-channel + decode path
/// while the switch moves it: the datapath and control path composed.
#[test]
fn cell_payload_survives_the_phy_while_the_switch_routes() {
    let d = Demonstrator::new();
    let code = OsmosisCode::new();
    let mut channel = BitErrorChannel::new(1e-5, 99);

    // Run the switch to get a delivery schedule.
    let mut tr = BernoulliUniform::new(d.config.ports, 0.6, &SeedSequence::new(5));
    let report = d.run(
        Box::new(d.scheduler()),
        &mut tr,
        &EngineConfig::new(200, 2_000),
    );
    assert_eq!(report.dropped, 0);
    assert_eq!(report.reordered, 0);

    // Every delivered cell's 256-byte payload crosses the optical channel
    // coded; at raw 1e-5 some blocks need correction, none may corrupt.
    let mut corrected_cells = 0;
    for i in 0..500u32 {
        let payload: Vec<u8> = (0..256u32).map(|b| (b * 31 + i) as u8).collect();
        let mut coded = encode_payload(&code, &payload);
        channel.transmit(&mut coded);
        let out = decode_payload(&code, &coded);
        if out.detected_blocks > 0 {
            // Would be retransmitted on the real link; skip content check.
            continue;
        }
        assert_eq!(&out.data[..256], &payload[..], "cell {i} corrupted");
        if out.corrected_blocks > 0 {
            corrected_cells += 1;
        }
    }
    assert!(
        corrected_cells > 0,
        "the channel must have exercised the FEC"
    );
}

#[test]
fn demonstrator_meets_table1_at_quick_scale() {
    let rows = osmosis::core::experiments::table1::run(Scale::Quick, 0xE2E);
    assert!(rows.iter().all(|r| r.pass), "{rows:#?}");
}

#[test]
fn fabric_carries_bimodal_traffic_in_order() {
    // The paper's traffic assumption: long data messages + short control
    // packets, through the multistage fabric.
    // Bursty data keeps whole flows pinned to one destination for many
    // cells, so the operating point must sit below the burst-induced
    // saturation knee.
    let f = OsmosisFabricConfig::sim_sized(8);
    let mut tr = Bimodal::new(f.ports(), 0.35, 8.0, 0.05, &SeedSequence::new(11));
    let r = f.run(&mut tr, &EngineConfig::new(1_000, 10_000));
    assert_eq!(r.reordered, 0);
    assert!(
        (r.throughput - r.offered_load).abs() < 0.04,
        "thr {} vs offered {}",
        r.throughput,
        r.offered_load
    );
}

#[test]
fn single_stage_vs_fabric_latency_hierarchy() {
    // A cell through one switch must be faster than through the 3-stage
    // fabric; both must be far below the 2-RTT single-stage-central
    // design at machine-room scale.
    let d = Demonstrator::new();
    let mut tr = BernoulliUniform::new(16, 0.1, &SeedSequence::new(13));
    let one_stage = osmosis::switch::VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)))
        .run(&mut tr, &EngineConfig::new(300, 3_000));

    let f = OsmosisFabricConfig::sim_sized(8);
    let mut tr = BernoulliUniform::new(f.ports(), 0.1, &SeedSequence::new(13));
    let fabric = f.run(&mut tr, &EngineConfig::new(300, 3_000));

    let pts = osmosis::core::experiments::fig1::run(&[50.0], 16, 13);
    let central_ns = pts[0].simulated_ns;

    let one_ns = d.slots_to_ns(one_stage.mean_delay);
    let fabric_ns = d.slots_to_ns(fabric.mean_delay);
    assert!(one_ns < fabric_ns, "{one_ns} vs {fabric_ns}");
    assert!(
        fabric_ns < central_ns,
        "multistage {fabric_ns} ns must beat the 2-RTT central design {central_ns} ns"
    );
}

#[test]
fn effective_bandwidth_composes_guard_and_fec() {
    // The 75% number must be consistent between the phy model and the
    // FEC crate's overhead constant.
    let d = Demonstrator::new();
    let guard_tax = d.efficiency.line_fraction();
    let fec_tax = 1.0 / (1.0 + osmosis::fec::code::OVERHEAD);
    assert!((guard_tax * fec_tax - d.user_bandwidth_fraction()).abs() < 1e-12);
}

#[test]
fn analysis_and_fabric_agree_on_stage_counts() {
    let table = osmosis::fabric::section_6c_table();
    // The fabric-level OSMOSIS config and the baselines table must agree.
    let f = OsmosisFabricConfig::full_size();
    assert_eq!(f.ports() as u64, 2048);
    assert_eq!(
        osmosis::fabric::stages_for_ports(64, f.ports() as u64),
        table[0].stages
    );
}
