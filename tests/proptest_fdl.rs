//! Property-based tests of the emulated fiber-delay-line priority
//! queue: within its guaranteed size bound and with every line alive,
//! an [`FdlQueue`] driven through arbitrary arrival/serve scripts is
//! observation-equivalent to a reference bounded BTreeMap priority
//! queue whose arrivals become servable one slot after entry — same
//! admissions, same served keys in the same order, same refusals, no
//! underflow stalls, and an exactly conserved cell ledger.

use std::collections::BTreeMap;

use osmosis::fdl::{FdlLines, FdlQueue};
use osmosis::sim::BufferLossReason;
use proptest::prelude::*;

/// One slot of the driving script: up to three prioritized arrivals and
/// whether the consumer tries to serve this slot.
fn script_strategy() -> impl Strategy<Value = (usize, Vec<(Vec<u64>, bool)>)> {
    (
        2usize..=8,
        prop::collection::vec(
            (prop::collection::vec(0u64..4, 0..=3), any::<bool>()),
            4..=40,
        ),
    )
}

/// The reference model: a bounded BTreeMap keyed like the FDL queue,
/// with a one-slot insertion latency — arrivals sit in `pending` until
/// the slot ends, then become servable.
struct Reference {
    capacity: usize,
    servable: BTreeMap<(u64, u64), ()>,
    pending: BTreeMap<(u64, u64), ()>,
    next_seq: u64,
    refused: u64,
    served: u64,
}

impl Reference {
    fn new(capacity: usize) -> Self {
        Reference {
            capacity,
            servable: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            refused: 0,
            served: 0,
        }
    }

    /// Returns whether the arrival is admitted; the sequence counter
    /// advances either way, mirroring the FDL queue's arrival stamping.
    fn push(&mut self, priority: u64) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.servable.len() + self.pending.len() >= self.capacity {
            self.refused += 1;
            return false;
        }
        self.pending.insert((priority, seq), ());
        true
    }

    /// Serve the minimum servable key, if any. This slot's pending
    /// arrivals are invisible to service — the emulation's one-slot
    /// latency — even when one carries a smaller key.
    fn pop(&mut self) -> Option<(u64, u64)> {
        let best = *self.servable.keys().next()?;
        self.servable.remove(&best);
        self.served += 1;
        Some(best)
    }

    fn settle(&mut self) {
        self.servable.append(&mut self.pending);
    }

    fn len(&self) -> usize {
        self.servable.len() + self.pending.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full observable behaviour — admission verdicts, served keys,
    /// refusal typing, stall count, ledger — matches the reference
    /// model slot for slot.
    #[test]
    fn fdl_queue_matches_reference_priority_queue(case in script_strategy()) {
        let (n, script) = case;
        let lines = FdlLines::balanced(n);
        let capacity = lines.guaranteed_capacity();
        let mut q = FdlQueue::new(lines);
        let mut r = Reference::new(capacity);
        prop_assert_eq!(q.capacity(), capacity);

        for (slot, (arrivals, serve)) in script.iter().enumerate() {
            let slot = slot as u64;
            q.tick(slot);
            for &priority in arrivals {
                let got = q.push(priority, ());
                let want = r.push(priority);
                prop_assert_eq!(got, want, "slot {}: admission diverged", slot);
            }
            if *serve {
                let got = q.pop().map(|(k, ())| k);
                let want = r.pop();
                prop_assert_eq!(got, want, "slot {}: served key diverged", slot);
            }
            q.settle(slot);
            r.settle();
            prop_assert_eq!(q.len(), r.len(), "slot {}: occupancy diverged", slot);

            // Quiescent point: pushed == popped + dropped + resident.
            let (pushed, popped, dropped, resident) = q.ledger();
            prop_assert_eq!(pushed, popped + dropped + resident,
                "slot {}: ledger leaked", slot);
        }

        // With every line alive and admission bounded by the guaranteed
        // capacity, the emulation never drops at settle and never
        // stalls: every loss is an admission refusal, and the counts
        // match the reference exactly.
        let stats = q.stats();
        prop_assert_eq!(stats.underflow_stalls, 0, "clean run stalled");
        prop_assert_eq!(stats.dropped, r.refused, "drop count diverged");
        prop_assert_eq!(stats.popped, r.served, "serve count diverged");
        for loss in q.take_losses() {
            prop_assert_eq!(loss.reason, BufferLossReason::AdmissionFull,
                "clean run typed a non-admission loss");
        }
    }

    /// FIFO mode (all priorities zero) serves strictly in arrival
    /// order, with a one-slot latency floor between entry and service.
    #[test]
    fn fifo_mode_serves_in_arrival_order(case in script_strategy()) {
        let (n, script) = case;
        let mut q = FdlQueue::new(FdlLines::balanced(n));
        let mut next_expected = 0u64;
        let mut admitted_at: BTreeMap<u64, u64> = BTreeMap::new();
        for (slot, (arrivals, serve)) in script.iter().enumerate() {
            let slot = slot as u64;
            q.tick(slot);
            for _ in arrivals {
                let seq = q.ledger().0; // pushed so far == next seq
                if q.push(0, ()) {
                    admitted_at.insert(seq, slot);
                }
            }
            if *serve {
                if let Some(((priority, seq), ())) = q.pop() {
                    prop_assert_eq!(priority, 0u64);
                    // Arrival order: every admitted seq below this one
                    // must already have been served.
                    prop_assert!(seq >= next_expected,
                        "served seq {} after {}", seq, next_expected);
                    prop_assert!(admitted_at.range(next_expected..seq)
                        .next().is_none(),
                        "seq {} served before an earlier admitted cell", seq);
                    let entered = admitted_at[&seq];
                    prop_assert!(slot > entered,
                        "seq {} served in its arrival slot", seq);
                    next_expected = seq + 1;
                }
            }
            q.settle(slot);
        }
    }

    /// The emulation is a pure function of its script: two queues driven
    /// identically agree on every observation.
    #[test]
    fn fdl_queue_is_deterministic(case in script_strategy()) {
        let (n, script) = case;
        let mut a = FdlQueue::new(FdlLines::balanced(n));
        let mut b = FdlQueue::new(FdlLines::balanced(n));
        for (slot, (arrivals, serve)) in script.iter().enumerate() {
            let slot = slot as u64;
            a.tick(slot);
            b.tick(slot);
            for &priority in arrivals {
                prop_assert_eq!(a.push(priority, ()), b.push(priority, ()));
            }
            if *serve {
                prop_assert_eq!(a.pop().map(|(k, ())| k), b.pop().map(|(k, ())| k));
            }
            a.settle(slot);
            b.settle(slot);
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.ledger(), b.ledger());
    }
}
