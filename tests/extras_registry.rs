//! Every model-specific `set_extra` key has at least one integration
//! test that asserts its value — the contract the `extras-registry`
//! deep lint rule enforces (`cargo run -p osmosis-lint -- --deep`).
//!
//! Each test here runs a real scenario that produces the metric and
//! checks a semantic property of the value, not just its presence: a
//! key that merely *exists* can still silently report garbage. The
//! string literals double as the registry the lint rule greps for, so
//! renaming a key in a model without updating its test breaks both this
//! file and the lint gate.

use osmosis::fabric::multistage::{BufferTech, FabricConfig, FatTreeFabric};
use osmosis::fabric::spec::TopologySpec;
use osmosis::fabric::CompiledFabric;
use osmosis::faults::{FaultInjector, FaultKind, FaultPlan, LINK_ANY};
use osmosis::fec::{run_reliable_link, LinkConfig};
use osmosis::ocs::{run_ocs, EpochConfig};
use osmosis::sim::{EngineConfig, EngineReport, SeedSequence};
use osmosis::switch::{run_multicast, CioqSwitch, DeflectionSwitch};
use osmosis::traffic::BernoulliUniform;

const SEED: u64 = 1234;

fn cfg() -> EngineConfig {
    EngineConfig::new(300, 3_000).with_seed(SEED)
}

fn uniform(n: usize, load: f64) -> BernoulliUniform {
    BernoulliUniform::new(n, load, &SeedSequence::new(SEED))
}

/// `extra` lookup that names the missing key on failure, so a renamed
/// or dropped metric fails with the key in the message.
fn extra(r: &EngineReport, key: &str) -> f64 {
    match r.extra(key) {
        Some(v) => v,
        None => panic!("report is missing extras key {key:?}: {:?}", r.extra),
    }
}

// --- Topology compiler ---------------------------------------------------

#[test]
fn compiled_fabric_reports_its_expanded_shape() {
    let mut fab = CompiledFabric::new(TopologySpec::two_level(8));
    let hosts = {
        use osmosis::switch::driven::CellSwitch;
        fab.ports()
    };
    let r = fab.run(&mut uniform(hosts, 0.3), &cfg());
    // A radix-8 two-level fat tree: 8 leaves + 4 spines, and the §VI.C
    // stage count is switch hops on the longest minimal route (2L−1).
    assert_eq!(extra(&r, "stages"), 3.0);
    assert_eq!(extra(&r, "switches"), 12.0, "8 leaves + 4 spines");
}

// --- FDL buffering plane -------------------------------------------------

/// Kill the short half of every input queue's delay lines on leaf 0 —
/// the same shape `fdl_pins.rs` pins — so the run takes typed
/// `dead_line` losses on top of ordinary recirculation traffic.
fn dead_line_plan(radix: usize, lines_per_queue: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for input in 0..radix {
        for local in 0..lines_per_queue / 2 {
            let line = input * lines_per_queue + local;
            plan = plan.permanent(FaultKind::DelayLineDead { line }, 0);
        }
    }
    plan
}

#[test]
fn fdl_fabric_reports_buffer_plane_counters() {
    const RADIX: usize = 8;
    let base = FabricConfig::small(RADIX, 2);
    let lines_per_queue = base.buffer_cells;
    let mut fab = FatTreeFabric::new(FabricConfig {
        buffer_tech: BufferTech::Fdl,
        ..base
    });
    let hosts = fab.topology().hosts();
    let mut inj = FaultInjector::new(dead_line_plan(RADIX, lines_per_queue));
    let r = fab.run_faulted(&mut uniform(hosts, 0.5), &cfg(), &mut inj);

    // Emulated fiber loops recirculate cells that cannot depart on
    // their first pass; at 50% load there are always some.
    assert!(extra(&r, "fdl_recirculations") > 0.0);
    // The drop taxonomy is complete: every dropped cell carries exactly
    // one reason.
    let total = extra(&r, "fdl_drops_total");
    let admission = extra(&r, "fdl_drops_admission");
    let dead_line = extra(&r, "fdl_drops_dead_line");
    assert!(dead_line > 0.0, "dead-line plan must cause typed losses");
    assert!(admission >= 0.0);
    assert!(total >= admission + dead_line);
    // Underflow stalls (cell still in the fiber when granted) are
    // counted, never negative.
    assert!(extra(&r, "fdl_underflow_stalls") >= 0.0);
}

// --- Fault plane ---------------------------------------------------------

#[test]
fn deterministic_outages_report_injection_accounting() {
    // Two overlapping hard outages in the fat tree: an SOA gate stuck
    // off 400–700 and spine 1 dark 600–1400 (`WavelengthLoss` re-routes
    // ascending cells around the dead plane).
    let plan = FaultPlan::new()
        .one_shot(FaultKind::SoaStuckOff { output: 1 }, 400, Some(300))
        .one_shot(FaultKind::WavelengthLoss { plane: 1 }, 600, Some(800));
    let mut fab = FatTreeFabric::new(FabricConfig::small(8, 2));
    let hosts = fab.topology().hosts();
    let mut inj = FaultInjector::new(plan);
    let r = fab.run_faulted(&mut uniform(hosts, 0.5), &cfg(), &mut inj);

    assert_eq!(extra(&r, "faults_injected"), 2.0);
    assert_eq!(extra(&r, "faults_healed"), 2.0);
    // Active slots count the union of the outage windows (400–1400);
    // repair slots sum per fault (300 + 800).
    assert_eq!(extra(&r, "fault_active_slots"), 1_000.0);
    assert_eq!(extra(&r, "fault_repair_slots_total"), 1_100.0);
    // Hard outages stall and re-route — they never corrupt or lose
    // cells, so the wire-level tallies must stay exactly zero.
    assert_eq!(extra(&r, "fault_cells_corrupted"), 0.0);
    assert_eq!(extra(&r, "fault_retransmits"), 0.0);
    assert_eq!(extra(&r, "fault_cells_lost"), 0.0);
}

#[test]
fn probabilistic_wire_faults_report_event_tallies() {
    // A credit-drop window with a BER burst inside it: the fabric loses
    // credit returns (recovered by the periodic audit) and corrupted
    // cells take the hop-by-hop retransmission path.
    let plan = FaultPlan::new()
        .one_shot(FaultKind::CreditDrop { prob: 0.3 }, 500, Some(1_000))
        .one_shot(
            FaultKind::LinkBerBurst {
                link: LINK_ANY,
                cell_error_prob: 0.05,
            },
            600,
            Some(900),
        );
    let mut fab = FatTreeFabric::new(FabricConfig::small(8, 2));
    let hosts = fab.topology().hosts();
    let mut inj = FaultInjector::new(plan);
    let r = fab.run_faulted(&mut uniform(hosts, 0.5), &cfg(), &mut inj);

    assert!(extra(&r, "fault_credits_dropped") > 0.0);
    let corrupted = extra(&r, "fault_cells_corrupted");
    assert!(corrupted > 0.0);
    assert!(
        extra(&r, "fault_retransmits") >= corrupted,
        "every corrupted cell is resent at least once"
    );
    // Retransmission + credit resync deliver everything eventually.
    assert_eq!(extra(&r, "fault_cells_lost"), 0.0);
}

#[test]
fn grant_loss_reports_lost_grant_tally() {
    use osmosis::sched::Flppr;
    use osmosis::switch::{run_switch_faulted, VoqSwitch};
    // Only the request/grant models consult `GrantLoss`; drive the VOQ
    // crossbar through three periodic loss windows.
    let plan = FaultPlan::new().periodic(FaultKind::GrantLoss { prob: 0.2 }, 200, 900, 250);
    let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)));
    let mut inj = FaultInjector::new(plan);
    let r = run_switch_faulted(&mut sw, &mut uniform(16, 0.7), &cfg(), &mut inj);
    assert!(
        extra(&r, "faults_injected") >= 3.0,
        "one per periodic window"
    );
    assert!(extra(&r, "fault_grants_lost") > 0.0);
    // Lost grants delay cells; they never destroy them.
    assert_eq!(extra(&r, "fault_cells_lost"), 0.0);
}

// --- Reliable link (FEC + go-back-N) -------------------------------------

#[test]
fn reliable_link_reports_protocol_counters() {
    // A BER high enough that both tiers do real work: the FEC corrects
    // most blocks, go-back-N mops up detected-uncorrectable cells.
    let report = run_reliable_link(&LinkConfig::osmosis(4, 2e-4, SEED), 4_000);
    let r = report.to_engine_report();
    assert_eq!(extra(&r, "link_offered"), 4_000.0);
    assert!(extra(&r, "link_fec_corrected_cells") > 0.0);
    let corrupted = extra(&r, "link_corrupted_arrivals");
    let retx = extra(&r, "link_retransmissions");
    assert!(
        corrupted > 0.0,
        "2e-4 raw BER must defeat the FEC sometimes"
    );
    assert!(
        retx >= corrupted,
        "go-back-N resends at least one cell per detected corruption"
    );
    // The end-to-end integrity claim of PR 3: nothing slips through.
    assert_eq!(extra(&r, "link_undetected_corruptions"), 0.0);
}

// --- Circuit-switched mode -----------------------------------------------

#[test]
fn ocs_run_reports_scheduler_counters() {
    use osmosis::core::experiments::ocs_study::workload;
    let mut tr = workload("hotspot_skew", 16, 3_000, SEED).expect("known workload");
    let r = run_ocs(tr.as_mut(), EpochConfig::osmosis_default(), &cfg());

    let epochs = extra(&r, "ocs_epochs");
    assert!(epochs >= 50.0, "3300 slots / 64-slot epochs");
    // Every reconfiguration changes at least one circuit and pays the
    // guard time on each changed input.
    let reconfs = extra(&r, "ocs_reconfigurations");
    let changed = extra(&r, "ocs_changed_circuits");
    assert!(reconfs > 0.0 && reconfs <= epochs);
    assert!(changed >= reconfs);
    // Guard time is paid once per reconfiguration epoch.
    assert!(extra(&r, "ocs_guard_slots_paid") >= reconfs);
    // The BvN path actually decomposed demand into permutations.
    assert!(extra(&r, "ocs_decompositions") > 0.0);
    assert!(extra(&r, "ocs_bvn_terms") >= extra(&r, "ocs_decompositions"));
    // Round-robin frames barely tick when the BvN scheduler drives.
    assert!(extra(&r, "ocs_rotor_frames") <= epochs);
    let transfers = extra(&r, "ocs_transfers");
    assert!(transfers > 0.0);
    let util = extra(&r, "ocs_mean_utilization");
    assert!(
        (0.0..=1.0).contains(&util),
        "utilization is a fraction: {util}"
    );
}

// --- Typed drop attribution ----------------------------------------------

#[test]
fn deflection_switch_attributes_rejected_drops() {
    // Overloaded deflection routing runs out of alternate ports and
    // rejects admissions; the engine attributes each one.
    let r = DeflectionSwitch::new(16, 4, SEED).run(&mut uniform(16, 0.95), &cfg());
    let rejected = extra(&r, "drops_rejected");
    assert!(rejected > 0.0);
    // Rejections happen at admission, so nothing rejected was counted
    // injected: everything injected is eventually delivered or resident.
    assert!(r.delivered <= r.injected);
}

#[test]
fn ocs_incast_attributes_buffer_full_drops() {
    use osmosis::core::experiments::ocs_study::workload;
    // Incast into finite 8-cell ingress VOQs: queues toward the one hot
    // sink overflow and every discarded cell is attributed.
    let mut tr = workload("incast", 16, 3_000, SEED).expect("known workload");
    let r = run_ocs(
        tr.as_mut(),
        EpochConfig::osmosis_default(),
        &cfg().with_buffer_cells(8),
    );
    assert!(extra(&r, "drops_buffer_full") > 0.0);
}

// --- Per-model scalar extras ---------------------------------------------

#[test]
fn cioq_reports_its_speedup_violation_fraction() {
    // Speedup 2 at 80% uniform load: the CIOQ emulation contract says
    // violations (output idles while work exists) stay a small fraction
    // of busy slots.
    let r = CioqSwitch::new(16, 2, 8).run(&mut uniform(16, 0.8), &cfg());
    let fraction = extra(&r, "violation_fraction");
    assert!((0.0..=1.0).contains(&fraction));
    assert!(
        fraction < 0.1,
        "speedup-2 CIOQ must rarely idle: {fraction}"
    );
}

#[test]
fn multicast_reports_copy_and_transmission_counters() {
    let r = run_multicast(16, 3, 0.2, 3_000, SEED);
    let copies = extra(&r, "copies_delivered");
    // Fanout 3: three copies per completion, plus the partial fanouts of
    // cells still in flight when the measure window closed.
    assert!(copies >= 3.0 * r.delivered as f64);
    assert!(copies <= 3.0 * r.injected as f64);
    // Per-output queueing means a cell needs at least one transmission
    // per copy on average, and tree-assisted forwarding keeps the mean
    // bounded.
    let mean_tx = extra(&r, "mean_transmissions");
    assert!(
        (1.0..=3.0).contains(&mean_tx),
        "mean transmissions {mean_tx}"
    );
}
