//! Property-based tests of the physical-layer models: unit conversions,
//! budget-chain algebra, guard-time arithmetic and timeline composition
//! hold for arbitrary (sane) parameters.

use osmosis::phy::components::{OpticalElement, PowerBudget};
use osmosis::phy::guard::CellEfficiency;
use osmosis::phy::soa::{osnr_penalty_db, Modulation};
use osmosis::phy::timeline::{run_timeline, TimelineConfig};
use osmosis::phy::units::{Db, PowerDbm};
use osmosis::phy::wdm::ChannelPlan;
use osmosis::sim::TimeDelta;
use proptest::prelude::*;

proptest! {
    /// dB ↔ linear round-trips over the practical range.
    #[test]
    fn db_linear_roundtrip(v in -60.0f64..60.0) {
        let db = Db(v);
        prop_assert!((Db::from_linear(db.linear()).0 - v).abs() < 1e-9);
    }

    /// Combining n equal channels adds 10·log10(n) dB.
    #[test]
    fn combine_n_matches_log(p in -30.0f64..10.0, n in 1u32..64) {
        let one = PowerDbm(p);
        let combined = one.combine_n(n);
        let expect = p + 10.0 * (n as f64).log10();
        prop_assert!((combined.0 - expect).abs() < 1e-9);
    }

    /// A budget chain's received power is launch + Σ gains, regardless of
    /// element order; adding a passive element never raises it.
    #[test]
    fn budget_chain_is_a_sum(
        launch in -10.0f64..10.0,
        gains in prop::collection::vec(-25.0f64..20.0, 0..8),
        extra_loss in 0.0f64..10.0,
    ) {
        let mut b = PowerBudget::new(PowerDbm(launch), PowerDbm(-30.0));
        for &g in &gains {
            if g >= 0.0 {
                b.push(OpticalElement::amplifier("amp", g));
            } else {
                b.push(OpticalElement::passive("pad", -g));
            }
        }
        let expect = launch + gains.iter().sum::<f64>();
        prop_assert!((b.received_power().0 - expect).abs() < 1e-9);
        let before = b.received_power().0;
        b.push(OpticalElement::passive("extra", extra_loss));
        prop_assert!(b.received_power().0 <= before + 1e-12);
    }

    /// User bandwidth fraction is monotone: more guard or more overhead
    /// never helps, bigger cells never hurt.
    #[test]
    fn user_fraction_monotonicity(
        cell_exp in 6u32..10,           // 64..512 bytes
        guard_ps in 0u64..9_000,
        overhead in 0.0f64..0.2,
    ) {
        let cell = 1u64 << cell_exp;
        let base = CellEfficiency {
            cell_bytes: cell,
            port_gbps: 40.0,
            guard: TimeDelta::from_ps(guard_ps),
            fec_overhead: overhead,
        };
        let more_guard = CellEfficiency {
            guard: TimeDelta::from_ps(guard_ps + 500),
            ..base
        };
        let bigger_cell = CellEfficiency {
            cell_bytes: cell * 2,
            ..base
        };
        prop_assert!(more_guard.user_fraction() <= base.user_fraction());
        prop_assert!(bigger_cell.user_fraction() >= base.user_fraction());
        prop_assert!(base.user_fraction() > 0.0 && base.user_fraction() <= 1.0);
    }

    /// The XGM penalty is monotone in input power and DPSK dominates NRZ
    /// at every operating point.
    #[test]
    fn dpsk_dominates_nrz(p_dbm in -5.0f64..25.0, ber_exp in 4u32..12) {
        let ber = 10f64.powi(-(ber_exp as i32));
        let nrz = osnr_penalty_db(Modulation::Nrz, ber, p_dbm);
        let dpsk = osnr_penalty_db(Modulation::Dpsk, ber, p_dbm);
        prop_assert!(dpsk < nrz);
        let nrz_hi = osnr_penalty_db(Modulation::Nrz, ber, p_dbm + 1.0);
        prop_assert!(nrz_hi > nrz);
    }

    /// WDM plans: frequencies strictly increase and stay inside a band
    /// that admits the plan.
    #[test]
    fn channel_plans_are_ordered(channels in 2u32..40, spacing in 25.0f64..400.0) {
        let plan = ChannelPlan {
            channels,
            spacing_ghz: spacing,
            center_thz: 193.4,
        };
        for i in 1..channels {
            prop_assert!(plan.frequency_thz(i) > plan.frequency_thz(i - 1));
            prop_assert!(plan.wavelength_nm(i) < plan.wavelength_nm(i - 1));
        }
        if plan.fits_band(4_000.0) {
            prop_assert!(plan.band_ghz() <= 4_000.0);
        }
    }

    /// The cell timeline is causal and composes additively for arbitrary
    /// component timings.
    #[test]
    fn timeline_composes(
        ingress in 1u64..500,
        sched in 1u64..500,
        guard in 1u64..20,
        egress in 1u64..500,
    ) {
        let cfg = TimelineConfig {
            ingress_pipeline: TimeDelta::from_ns(ingress),
            request_flight: TimeDelta::from_ns(10),
            scheduling: TimeDelta::from_ns(sched),
            grant_flight: TimeDelta::from_ns(10),
            soa_control_flight: TimeDelta::from_ns(15),
            soa_guard: TimeDelta::from_ns(guard),
            serialization: TimeDelta::from_ps(51_200),
            data_flight: TimeDelta::from_ns(10),
            burst_lock: TimeDelta::from_ps(3_800),
            egress_pipeline: TimeDelta::from_ns(egress),
        };
        let tl = run_timeline(&cfg);
        for w in tl.events.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
        }
        let expect = TimeDelta::from_ns(ingress + 10 + sched + 15 + guard + 10 + egress)
            + TimeDelta::from_ps(51_200)
            + TimeDelta::from_ps(3_800);
        prop_assert_eq!(tl.total(), expect);
    }
}
