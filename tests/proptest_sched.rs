//! Property-based tests of the scheduler crate: every scheduler respects
//! the crossbar constraints and conserves cells for arbitrary arrival
//! sequences; the arbiter primitives match naive references.

use osmosis::sched::arbiter::BitSet;
use osmosis::sched::{CellScheduler, Flppr, Islip, Pim, PipelinedArbiter, Requests};
use proptest::prelude::*;

/// An arbitrary arrival trace: per slot, a list of (input, output) pairs
/// with at most one arrival per input.
fn arrivals_strategy(n: usize, slots: usize) -> impl Strategy<Value = Vec<Vec<(usize, usize)>>> {
    prop::collection::vec(
        prop::collection::vec((0..n, 0..n), 0..=n).prop_map(move |mut v| {
            let mut seen = vec![false; n];
            v.retain(|&(i, _)| {
                if seen[i] {
                    false
                } else {
                    seen[i] = true;
                    true
                }
            });
            v
        }),
        slots,
    )
}

fn check_scheduler(
    mut sched: Box<dyn CellScheduler>,
    trace: &[Vec<(usize, usize)>],
) -> Result<(), TestCaseError> {
    let n = sched.inputs();
    let cap = sched.out_capacity();
    let mut shadow = Requests::square(n);
    let mut injected = 0u64;
    let mut granted = 0u64;
    for (slot, arrivals) in trace.iter().enumerate() {
        let m = sched.tick(slot as u64);
        m.validate(&shadow, cap)
            .map_err(|e| TestCaseError::fail(format!("slot {slot}: {e}")))?;
        for &(i, o) in m.pairs() {
            shadow.dec(i, o);
            granted += 1;
        }
        for &(i, o) in arrivals {
            sched.note_arrival(i, o);
            shadow.inc(i, o);
            injected += 1;
        }
    }
    // Drain: with no further arrivals, everything must be served.
    for slot in trace.len()..(trace.len() + 50 * n) {
        let m = sched.tick(slot as u64);
        m.validate(&shadow, cap)
            .map_err(|e| TestCaseError::fail(format!("drain {slot}: {e}")))?;
        for &(i, o) in m.pairs() {
            shadow.dec(i, o);
            granted += 1;
        }
        if shadow.is_empty() {
            break;
        }
    }
    prop_assert_eq!(granted, injected, "work conservation");
    prop_assert!(shadow.is_empty(), "all cells drained");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn islip_respects_constraints(trace in arrivals_strategy(8, 30)) {
        check_scheduler(Box::new(Islip::log2n(8, 1)), &trace)?;
    }

    #[test]
    fn islip_dual_receiver_respects_constraints(trace in arrivals_strategy(8, 30)) {
        check_scheduler(Box::new(Islip::log2n(8, 2)), &trace)?;
    }

    #[test]
    fn pim_respects_constraints(trace in arrivals_strategy(8, 30), seed in any::<u64>()) {
        check_scheduler(Box::new(Pim::new(8, 3, 1, seed)), &trace)?;
    }

    #[test]
    fn flppr_respects_constraints(trace in arrivals_strategy(8, 30)) {
        check_scheduler(Box::new(Flppr::osmosis(8, 1)), &trace)?;
    }

    #[test]
    fn flppr_dual_receiver_respects_constraints(trace in arrivals_strategy(8, 30)) {
        check_scheduler(Box::new(Flppr::osmosis(8, 2)), &trace)?;
    }

    #[test]
    fn pipelined_respects_constraints(trace in arrivals_strategy(8, 30)) {
        check_scheduler(Box::new(PipelinedArbiter::log2n(8, 1)), &trace)?;
    }
}

proptest! {
    /// The wrapping priority encoder agrees with a naive scan for
    /// arbitrary bit patterns and starting points.
    #[test]
    fn next_set_wrapping_matches_naive(
        bits in prop::collection::vec(any::<bool>(), 1..200),
        from in any::<usize>(),
    ) {
        let n = bits.len();
        let mut set = BitSet::new(n);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                set.set(i);
            }
        }
        let from = from % n;
        let naive = (0..n).map(|k| (from + k) % n).find(|&i| bits[i]);
        prop_assert_eq!(set.next_set_wrapping(from), naive);
    }

    /// Set/clear/count behave like a Vec<bool>.
    #[test]
    fn bitset_matches_vec_bool(ops in prop::collection::vec((any::<bool>(), 0usize..150), 0..300)) {
        let n = 150;
        let mut set = BitSet::new(n);
        let mut reference = vec![false; n];
        for (on, idx) in ops {
            if on {
                set.set(idx);
                reference[idx] = true;
            } else {
                set.clear(idx);
                reference[idx] = false;
            }
        }
        for (i, &expect) in reference.iter().enumerate() {
            prop_assert_eq!(set.get(i), expect);
        }
        prop_assert_eq!(set.count(), reference.iter().filter(|&&b| b).count());
    }

    /// The max-size oracle never returns an invalid matching and is at
    /// least as large as any greedy matching.
    #[test]
    fn max_matching_validity(edges in prop::collection::vec((0usize..10, 0usize..10), 0..40)) {
        use osmosis::sched::max_matching;
        let mut occ = Requests::square(10);
        for &(i, o) in &edges {
            occ.inc(i, o);
        }
        let m = max_matching(&occ, 1);
        prop_assert!(m.validate(&occ, 1).is_ok());
        // Greedy lower bound.
        let mut in_used = [false; 10];
        let mut out_used = [false; 10];
        let mut greedy = 0;
        for (i, iu) in in_used.iter_mut().enumerate() {
            for (o, ou) in out_used.iter_mut().enumerate() {
                if !*iu && !*ou && occ.get(i, o) > 0 {
                    *iu = true;
                    *ou = true;
                    greedy += 1;
                    break;
                }
            }
        }
        prop_assert!(m.len() >= greedy, "{} < greedy {}", m.len(), greedy);
    }
}
