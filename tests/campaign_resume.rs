//! The crash-safe campaign runner, exercised with real worker
//! *processes*: the supervisor SIGKILLs a run mid-campaign, a
//! checkpoint file is corrupted the way a crash would, a poison shard
//! exhausts its attempts — and the resumed campaign still reproduces
//! the uninterrupted run's summary fingerprint bit for bit, with the
//! quarantine recorded identically in both manifests.
//!
//! The worker is this very test binary re-invoked: `worker_entry` is an
//! env-gated `#[test]` that is a no-op under normal `cargo test` and
//! becomes the shard worker when the supervisor spawns it with the
//! `OSMOSIS_CAMPAIGN_WORKER_*` variables set.

use osmosis::campaign::{
    run_campaign, run_shard, BufferSpec, CampaignError, CampaignOptions, CampaignSpec, FaultSpec,
    WorkerRequest,
};
use osmosis::fabric::TopologySpec;
use osmosis::telemetry::validate_jsonl;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const ENV_DIR: &str = "OSMOSIS_CAMPAIGN_WORKER_DIR";
const ENV_SHARD: &str = "OSMOSIS_CAMPAIGN_WORKER_SHARD";
const ENV_SHARDS: &str = "OSMOSIS_CAMPAIGN_WORKER_SHARDS";
const ENV_HANG: &str = "OSMOSIS_CAMPAIGN_WORKER_HANG";

/// Worker mode. Under plain `cargo test` the gate variable is unset and
/// this passes vacuously; spawned by the launcher below it runs one
/// shard and exits with the worker status convention (0 ok, 3 poison,
/// 1 anything else) before the harness can print its summary.
#[test]
fn worker_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let shard: usize = std::env::var(ENV_SHARD)
        .expect("worker shard env")
        .parse()
        .expect("worker shard index");
    let shards: usize = std::env::var(ENV_SHARDS)
        .expect("worker shards env")
        .parse()
        .expect("worker shard count");
    if std::env::var(ENV_HANG).ok().as_deref() == Some(shard.to_string().as_str()) {
        // Simulate a wedged worker: no progress, no exit. The
        // supervisor's heartbeat watchdog must kill us.
        std::thread::sleep(std::time::Duration::from_secs(120));
        std::process::exit(1);
    }
    match run_shard(Path::new(&dir), shard, shards) {
        Ok(_) => std::process::exit(0),
        Err(CampaignError::Poisoned { .. }) => std::process::exit(3),
        Err(e) => {
            eprintln!("worker shard {shard}: {e}");
            std::process::exit(1);
        }
    }
}

fn launcher(hang_shard: Option<usize>) -> impl Fn(&WorkerRequest) -> Command {
    move |req: &WorkerRequest| {
        let exe = std::env::current_exe().expect("current test binary");
        let mut cmd = Command::new(exe);
        cmd.arg("worker_entry")
            .arg("--exact")
            .arg("--nocapture")
            .env(ENV_DIR, &req.dir)
            .env(ENV_SHARD, req.shard.to_string())
            .env(ENV_SHARDS, req.shards.to_string())
            .stdout(Stdio::null());
        if let Some(h) = hang_shard {
            cmd.env(ENV_HANG, h.to_string());
        }
        cmd
    }
}

fn quick_spec() -> CampaignSpec {
    CampaignSpec {
        seed: 0xCA11,
        ports: 4,
        warmup: 50,
        measure: 400,
        loads: vec![0.3, 0.7],
        bursts: vec![1.0, 3.0],
        faults: vec![FaultSpec::None, FaultSpec::PlaneLoss { planes: 1 }],
        topologies: vec![None, Some(TopologySpec::two_level(4))],
        buffers: vec![BufferSpec::Electronic, BufferSpec::Fdl],
        replicas: 1,
        poison_shards: vec![2],
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("osmosis-campaign-it-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn opts(interrupt_after: Option<usize>) -> CampaignOptions {
    CampaignOptions {
        shards: 5,
        workers: 3,
        max_attempts: 2,
        backoff_base_ms: 1,
        heartbeat_timeout_ms: 30_000,
        poll_ms: 5,
        interrupt_after,
        progress: false,
    }
}

#[test]
fn sigkilled_campaign_resumes_to_the_uninterrupted_fingerprint() {
    let spec = quick_spec();

    // Reference: one uninterrupted supervised run. The poison shard is
    // quarantined; everything else completes.
    let dir_a = fresh_dir("clean");
    let clean = run_campaign(&dir_a, &spec, &opts(None), launcher(None)).expect("clean run");
    assert!(!clean.interrupted);
    assert_eq!(
        clean
            .quarantined
            .iter()
            .map(|q| q.shard)
            .collect::<Vec<_>>(),
        vec![2],
        "the poison shard must be quarantined: {:?}",
        clean.quarantined
    );
    assert_eq!(clean.quarantined[0].attempts, 2);
    assert_eq!(clean.completed.len(), 4);
    assert!(clean.points_done > 0 && clean.delivered > 0);

    // Victim: same campaign, but the supervisor tears everything down
    // (SIGKILL to every live worker) once two shards are done.
    let dir_b = fresh_dir("killed");
    let killed =
        run_campaign(&dir_b, &spec, &opts(Some(2)), launcher(None)).expect("interrupted run");
    assert!(killed.interrupted, "interrupt_after must fire");
    assert!(!osmosis::campaign::shard::paths::summary(&dir_b).exists());

    // Corrupt one shard's checkpoint log the way a crash torn mid-append
    // would, and drop its summary so the resume must re-derive the shard
    // from the damaged log.
    let victim = (0..5)
        .find(|&s| osmosis::campaign::shard::paths::shard_log(&dir_b, s).exists() && s != 2)
        .expect("some non-poison shard left a checkpoint log");
    let log = osmosis::campaign::shard::paths::shard_log(&dir_b, victim);
    let bytes = std::fs::read(&log).expect("read victim log");
    assert!(bytes.len() > 5);
    std::fs::write(&log, &bytes[..bytes.len() - 5]).expect("truncate victim log");
    std::fs::remove_file(osmosis::campaign::shard::paths::shard_summary(
        &dir_b, victim,
    ))
    .ok();

    // Resume. Finished shards restore from their summaries, the
    // corrupted one re-derives from its repaired log, the poison shard
    // is quarantined again — and the campaign fingerprint, point count,
    // and merged registry are bit-identical to the clean run's.
    let resumed = run_campaign(&dir_b, &spec, &opts(None), launcher(None)).expect("resumed run");
    assert!(!resumed.interrupted);
    assert_eq!(
        resumed.fingerprint, clean.fingerprint,
        "resume must be bit-exact"
    );
    assert_eq!(resumed.points_done, clean.points_done);
    assert_eq!(resumed.delivered, clean.delivered);
    assert_eq!(resumed.dropped, clean.dropped);
    assert_eq!(
        resumed.registry.to_json().encode(),
        clean.registry.to_json().encode(),
        "merged registries must match exactly"
    );
    assert_eq!(
        resumed
            .quarantined
            .iter()
            .map(|q| q.shard)
            .collect::<Vec<_>>(),
        vec![2]
    );

    // Both manifests name the quarantined shard with a reason; both
    // campaign telemetry streams are schema-valid.
    for dir in [&dir_a, &dir_b] {
        let manifest = std::fs::read_to_string(osmosis::campaign::shard::paths::manifest(dir))
            .expect("manifest");
        assert!(
            manifest.contains("\"status\":\"quarantined\""),
            "{manifest}"
        );
        assert!(manifest.contains("\"reason\""), "{manifest}");
        let stream =
            std::fs::read_to_string(osmosis::campaign::shard::paths::stream(dir)).expect("stream");
        let stats = validate_jsonl(&stream).expect("campaign stream must validate");
        assert_eq!(stats.campaigns, 1);
        assert_eq!(stats.campaign_summaries, 1);
        assert_eq!(stats.shards, 5);
    }

    // A different campaign refuses to adopt this directory.
    let mut other = spec.clone();
    other.seed ^= 1;
    let err = run_campaign(&dir_b, &other, &opts(None), launcher(None)).unwrap_err();
    assert!(
        matches!(err, CampaignError::Spec { .. }),
        "resuming a different campaign must be refused, got {err}"
    );

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn hung_worker_is_killed_by_the_heartbeat_watchdog_and_quarantined() {
    let mut spec = quick_spec();
    spec.poison_shards = vec![];
    let dir = fresh_dir("hang");
    let opts = CampaignOptions {
        shards: 2,
        workers: 2,
        max_attempts: 2,
        backoff_base_ms: 1,
        heartbeat_timeout_ms: 250,
        poll_ms: 10,
        interrupt_after: None,
        progress: false,
    };
    let report = run_campaign(&dir, &spec, &opts, launcher(Some(1))).expect("campaign");
    assert_eq!(report.completed, vec![0]);
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.shard, 1);
    assert_eq!(q.attempts, 2);
    assert!(
        q.reason.contains("heartbeat"),
        "watchdog reason expected, got: {}",
        q.reason
    );
    std::fs::remove_dir_all(&dir).ok();
}
