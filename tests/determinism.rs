//! Reproducibility: every simulation in the workspace is a pure function
//! of its seed — reruns are bit-identical, different seeds differ.

use osmosis::core::{OsmosisFabricConfig, Scale};
use osmosis::sched::Flppr;
use osmosis::sim::{SeedSequence, SimRng};
use osmosis::switch::{run_uniform, RunConfig};
use osmosis::traffic::BernoulliUniform;

fn cfg() -> RunConfig {
    RunConfig {
        warmup_slots: 300,
        measure_slots: 3_000,
    }
}

#[test]
fn switch_runs_are_bit_identical() {
    let a = run_uniform(|| Box::new(Flppr::osmosis(16, 2)), 0.7, 1234, cfg());
    let b = run_uniform(|| Box::new(Flppr::osmosis(16, 2)), 0.7, 1234, cfg());
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.mean_delay.to_bits(), b.mean_delay.to_bits());
    assert_eq!(a.mean_request_grant.to_bits(), b.mean_request_grant.to_bits());
}

#[test]
fn switch_runs_differ_across_seeds() {
    let a = run_uniform(|| Box::new(Flppr::osmosis(16, 2)), 0.7, 1, cfg());
    let b = run_uniform(|| Box::new(Flppr::osmosis(16, 2)), 0.7, 2, cfg());
    assert_ne!(a.injected, b.injected, "different seeds, different traffic");
}

#[test]
fn fabric_runs_are_bit_identical() {
    let run = || {
        let f = OsmosisFabricConfig::sim_sized(8);
        let mut tr = BernoulliUniform::new(f.ports(), 0.5, &SeedSequence::new(77));
        f.run(&mut tr, 300, 3_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.mean_latency.to_bits(), b.mean_latency.to_bits());
    assert_eq!(a.max_buffer_occupancy, b.max_buffer_occupancy);
}

#[test]
fn experiments_are_reproducible() {
    let a = osmosis::core::experiments::fig7::run(Scale::Quick, 9);
    let b = osmosis::core::experiments::fig7::run(Scale::Quick, 9);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.delay_single.to_bits(), y.delay_single.to_bits());
        assert_eq!(x.delay_dual.to_bits(), y.delay_dual.to_bits());
    }
}

#[test]
fn parallel_sweep_order_is_stable() {
    // The sweep runs on threads; results must still come back in input
    // order and be identical across runs.
    let inputs: Vec<u64> = (0..40).collect();
    let f = |x: u64| {
        let mut rng = SimRng::seed_from_u64(x);
        (0..1000).map(|_| rng.next_u64() & 0xFF).sum::<u64>()
    };
    let a = osmosis::sim::parallel_sweep(inputs.clone(), f);
    let b = osmosis::sim::parallel_sweep(inputs, f);
    assert_eq!(a, b);
}

#[test]
fn seed_sequences_isolate_components() {
    // Adding a new named stream must not perturb existing ones.
    let seq = SeedSequence::new(42);
    let before: Vec<u64> = (0..8).map(|i| seq.stream("voq", i).next_u64()).collect();
    let _other = seq.stream("brand-new-component", 0).next_u64();
    let after: Vec<u64> = (0..8).map(|i| seq.stream("voq", i).next_u64()).collect();
    assert_eq!(before, after);
}
