//! Reproducibility: every simulation in the workspace is a pure function
//! of its seed — reruns are bit-identical (same engine fingerprint),
//! different seeds change the delivered traffic.
//!
//! With every simulator on the shared engine, one harness covers all of
//! them: `EngineReport::fingerprint()` hashes the full report (counters,
//! f64 bit patterns, histograms, extras), so fingerprint equality is a
//! much stronger statement than comparing a few fields.

use osmosis::core::{OsmosisFabricConfig, Scale};
use osmosis::fabric::multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
use osmosis::fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis::sched::Flppr;
use osmosis::sim::{EngineConfig, EngineReport, SeedSequence, SimRng};
use osmosis::switch::{
    run_multicast, run_uniform, BurstSwitch, BvnSwitch, CioqSwitch, DeflectionSwitch, FifoSwitch,
    OqSwitch, RemoteSchedulerSwitch,
};
use osmosis::traffic::BernoulliUniform;

fn cfg() -> EngineConfig {
    EngineConfig::new(300, 3_000)
}

/// The reproducibility contract every simulator must satisfy: the same
/// seed gives a bit-identical report (fingerprint over counters, f64
/// bits, histograms, extras), and a different seed changes the delivered
/// traffic.
fn assert_seed_determinism(name: &str, mut run: impl FnMut(u64) -> EngineReport) {
    let a = run(1234);
    let b = run(1234);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "{name}: same seed must give a bit-identical report"
    );
    let c = run(4321);
    assert!(
        a.delivered != c.delivered || a.injected != c.injected,
        "{name}: different seeds must change the delivered traffic \
         (delivered {} vs {}, injected {} vs {})",
        a.delivered,
        c.delivered,
        a.injected,
        c.injected
    );
}

fn uniform(n: usize, load: f64, seed: u64) -> BernoulliUniform {
    BernoulliUniform::new(n, load, &SeedSequence::new(seed))
}

#[test]
fn voq_switch_is_deterministic() {
    assert_seed_determinism("voq", |s| {
        run_uniform(|| Box::new(Flppr::osmosis(16, 2)), 0.7, &cfg().with_seed(s))
    });
}

#[test]
fn fifo_switch_is_deterministic() {
    assert_seed_determinism("fifo", |s| {
        FifoSwitch::new(16).run(&mut uniform(16, 0.5, s), &cfg())
    });
}

#[test]
fn oq_switch_is_deterministic() {
    assert_seed_determinism("oq", |s| {
        OqSwitch::new(16).run(&mut uniform(16, 0.7, s), &cfg())
    });
}

#[test]
fn bvn_switch_is_deterministic() {
    assert_seed_determinism("bvn", |s| {
        BvnSwitch::new(16).run(&mut uniform(16, 0.6, s), &cfg())
    });
}

#[test]
fn burst_switch_is_deterministic() {
    assert_seed_determinism("burst", |s| {
        BurstSwitch::new(16, 8, 8).run(&mut uniform(16, 0.6, s), &cfg())
    });
}

#[test]
fn deflection_switch_is_deterministic() {
    // The deflection switch has internal randomness seeded at
    // construction on top of the traffic seed.
    assert_seed_determinism("deflection", |s| {
        DeflectionSwitch::new(16, 4, s).run(&mut uniform(16, 0.6, s), &cfg())
    });
}

#[test]
fn cioq_switch_is_deterministic() {
    assert_seed_determinism("cioq", |s| {
        CioqSwitch::new(16, 2, 8).run(&mut uniform(16, 0.8, s), &cfg())
    });
}

#[test]
fn remote_scheduler_switch_is_deterministic() {
    assert_seed_determinism("remote_sched", |s| {
        RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 4)
            .run(&mut uniform(8, 0.5, s), &cfg())
    });
}

#[test]
fn multicast_workload_is_deterministic() {
    assert_seed_determinism("multicast", |s| run_multicast(16, 3, 0.2, 3_000, s));
}

#[test]
fn fat_tree_fabric_is_deterministic() {
    assert_seed_determinism("multistage", |s| {
        let mut fab = FatTreeFabric::new(FabricConfig::small(8, 2));
        let hosts = fab.topology().hosts();
        fab.run(&mut uniform(hosts, 0.5, s), &cfg())
    });
}

#[test]
fn multilevel_fabric_is_deterministic() {
    assert_seed_determinism("multilevel", |s| {
        let topo = MultiLevelClos::new(4, 3);
        let mut fab = MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2));
        fab.run(&mut uniform(topo.hosts(), 0.4, s), &cfg())
    });
}

#[test]
fn fabric_level_config_runs_are_bit_identical() {
    let run = || {
        let f = OsmosisFabricConfig::sim_sized(8);
        let mut tr = BernoulliUniform::new(f.ports(), 0.5, &SeedSequence::new(77));
        f.run(&mut tr, &cfg())
    };
    assert_eq!(run().fingerprint(), run().fingerprint());
}

#[test]
fn experiments_are_reproducible() {
    let a = osmosis::core::experiments::fig7::run(Scale::Quick, 9);
    let b = osmosis::core::experiments::fig7::run(Scale::Quick, 9);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.delay_single.to_bits(), y.delay_single.to_bits());
        assert_eq!(x.delay_dual.to_bits(), y.delay_dual.to_bits());
    }
}

#[test]
fn parallel_sweep_order_is_stable() {
    // The sweep runs on threads; results must still come back in input
    // order and be identical across runs.
    let inputs: Vec<u64> = (0..40).collect();
    let f = |x: u64| {
        let mut rng = SimRng::seed_from_u64(x);
        (0..1000).map(|_| rng.next_u64() & 0xFF).sum::<u64>()
    };
    let a = osmosis::sim::parallel_sweep(inputs.clone(), f);
    let b = osmosis::sim::parallel_sweep(inputs, f);
    assert_eq!(a, b);
}

#[test]
fn seed_sequences_isolate_components() {
    // Adding a new named stream must not perturb existing ones.
    let seq = SeedSequence::new(42);
    let before: Vec<u64> = (0..8).map(|i| seq.stream("voq", i).next_u64()).collect();
    let _other = seq.stream("brand-new-component", 0).next_u64();
    let after: Vec<u64> = (0..8).map(|i| seq.stream("voq", i).next_u64()).collect();
    assert_eq!(before, after);
}
