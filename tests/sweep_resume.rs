//! The supervised, crash-safe sweep runner, exercised end to end with
//! real engine runs: a panicking job is isolated and deterministically
//! retried without aborting its siblings, a budget-exceeding job is
//! reported as such, and an interrupted checkpointed sweep resumes from
//! disk with bit-identical results.

use osmosis::sched::Flppr;
use osmosis::sim::{
    checkpointed_sweep, supervised_sweep, EngineConfig, EngineReport, JobOutcome, SeedSequence,
    SweepCheckpoint, SweepError, SweepOptions,
};
use osmosis::switch::{run_switch, VoqSwitch};
use osmosis::traffic::BernoulliUniform;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

fn run_point(load: f64, seed: u64, measure: u64) -> EngineReport {
    let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(8, 1)));
    let mut tr = BernoulliUniform::new(8, load, &SeedSequence::new(seed));
    run_switch(
        &mut sw,
        &mut tr,
        &EngineConfig::new(100, measure).with_seed(seed),
    )
}

fn tmp_ckpt(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("osmosis-sweep-{}-{tag}.json", std::process::id()))
}

#[test]
fn interrupted_checkpointed_sweep_resumes_bit_identically() {
    let loads = [0.1, 0.3, 0.5, 0.7, 0.9];
    let path = tmp_ckpt("resume");
    std::fs::remove_file(&path).ok();
    let ckpt = SweepCheckpoint::new(&path, 0xC0FFEE);
    let opts = SweepOptions::seeded(7)
        .with_backoff_base_ms(0)
        .with_max_attempts(1);

    // First pass "crashes" mid-sweep: every job past the second panics,
    // so only the surviving points reach the checkpoint file.
    let crashing = AtomicBool::new(true);
    let job = |&load: &f64| {
        if crashing.load(Ordering::SeqCst) && load > 0.35 {
            panic!("simulated crash");
        }
        run_point(load, (load * 100.0) as u64, 2_000)
    };
    let first = checkpointed_sweep(loads.to_vec(), &opts, &ckpt, job).expect("checkpoint io");
    assert!(
        !first.is_complete(),
        "the simulated crash must leave gaps: {:?}",
        first.failures()
    );
    let completed_first = first.outputs.iter().flatten().count();
    assert!(completed_first >= 2, "some points must have survived");

    // Second pass: the crash is over. Completed points restore from
    // disk; the rest run fresh. The merged sweep must be bit-identical
    // to one that was never interrupted.
    crashing.store(false, Ordering::SeqCst);
    let resumed = checkpointed_sweep(loads.to_vec(), &opts, &ckpt, job).expect("checkpoint io");
    assert!(resumed.is_complete());
    let restored = resumed
        .jobs
        .iter()
        .filter(|j| j.outcome == JobOutcome::Restored)
        .count();
    assert_eq!(
        restored, completed_first,
        "every checkpointed point must restore, not rerun"
    );

    let uninterrupted = supervised_sweep(loads.to_vec(), &opts, |&load: &f64| {
        run_point(load, (load * 100.0) as u64, 2_000)
    });
    for (i, (r, u)) in resumed
        .outputs
        .iter()
        .zip(uninterrupted.outputs.iter())
        .enumerate()
    {
        let (r, u) = (r.as_ref().expect("resumed"), u.as_ref().expect("plain"));
        assert_eq!(
            r.fingerprint(),
            u.fingerprint(),
            "point {i}: resumed sweep diverged from the uninterrupted one"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn panicking_job_is_isolated_and_retried_deterministically() {
    // Job 2 panics on its first attempt and succeeds on the second; its
    // siblings must complete untouched, on their first attempt.
    let attempts = [const { AtomicU32::new(0) }; 4];
    let opts = SweepOptions::seeded(11).with_backoff_base_ms(0);
    let summary = supervised_sweep(vec![0usize, 1, 2, 3], &opts, |&i: &usize| {
        let n = attempts[i].fetch_add(1, Ordering::SeqCst) + 1;
        if i == 2 && n == 1 {
            panic!("transient failure on job 2");
        }
        run_point(0.5, i as u64, 1_000)
    });
    assert!(summary.is_complete(), "{:?}", summary.failures());
    for (i, job) in summary.jobs.iter().enumerate() {
        assert_eq!(job.outcome, JobOutcome::Completed);
        let expect = if i == 2 { 2 } else { 1 };
        assert_eq!(job.attempts, expect, "job {i}");
    }
    // The retried job's output is the same as an undisturbed run's.
    let redo = run_point(0.5, 2, 1_000);
    assert_eq!(
        summary.outputs[2].as_ref().expect("job 2").fingerprint(),
        redo.fingerprint(),
        "retry must reproduce the run exactly"
    );
}

#[test]
fn budget_exceeding_job_is_reported_without_aborting_siblings() {
    // Budget covers the small jobs (1100 slots each) but not job 1
    // (50100 slots): the watchdog rejects it before it burns the budget,
    // every retry included, while the siblings complete normally.
    let opts = SweepOptions::seeded(13)
        .with_backoff_base_ms(0)
        .with_slot_budget(10_000)
        .with_max_attempts(2);
    let summary = supervised_sweep(vec![0usize, 1, 2], &opts, |&i: &usize| {
        let measure = if i == 1 { 50_000 } else { 1_000 };
        run_point(0.4, i as u64, measure)
    });
    assert!(!summary.is_complete());
    let failures = summary.failures();
    assert_eq!(failures.len(), 1);
    let (idx, err) = &failures[0];
    assert_eq!(*idx, 1);
    assert!(
        matches!(err, SweepError::BudgetExceeded { budget: 10_000, .. }),
        "expected a budget rejection, got {err}"
    );
    assert_eq!(summary.jobs[1].attempts, 2, "budget failures retry too");
    for i in [0usize, 2] {
        assert_eq!(summary.jobs[i].outcome, JobOutcome::Completed, "job {i}");
        assert!(summary.outputs[i].is_some());
    }
}

#[test]
fn corrupt_checkpoint_is_discarded_and_the_sweep_recomputes_exactly() {
    // A checkpoint torn mid-write (truncated JSON) must not abort the
    // sweep: the loader discards it with a warning and every point runs
    // fresh, bit-identical to a sweep that never had a checkpoint.
    let loads = [0.2f64, 0.5, 0.8];
    let path = tmp_ckpt("corrupt");
    let opts = SweepOptions::seeded(23).with_backoff_base_ms(0);
    let job = |&l: &f64| run_point(l, (l * 10.0) as u64, 1_500);

    let clean = checkpointed_sweep(
        loads.to_vec(),
        &opts,
        &SweepCheckpoint::new(&path, 0xBAD),
        job,
    )
    .expect("io");
    assert!(clean.is_complete());
    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

    let recovered = checkpointed_sweep(
        loads.to_vec(),
        &opts,
        &SweepCheckpoint::new(&path, 0xBAD),
        job,
    )
    .expect("a corrupt checkpoint must not be fatal");
    assert!(recovered.is_complete());
    assert!(
        recovered
            .jobs
            .iter()
            .all(|j| j.outcome == JobOutcome::Completed),
        "nothing can restore from a discarded checkpoint"
    );
    for (r, c) in recovered.outputs.iter().zip(clean.outputs.iter()) {
        assert_eq!(
            r.as_ref().expect("recovered").fingerprint(),
            c.as_ref().expect("clean").fingerprint(),
            "recomputed sweep must match the original bit for bit"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_checkpoint_from_another_sweep_is_ignored() {
    // A checkpoint keyed to a different sweep (other key) must not leak
    // its points into this one — the sweep starts fresh and overwrites.
    let path = tmp_ckpt("stale");
    std::fs::remove_file(&path).ok();
    let opts = SweepOptions::seeded(17).with_backoff_base_ms(0);
    let a = checkpointed_sweep(
        vec![0.2f64, 0.6],
        &opts,
        &SweepCheckpoint::new(&path, 111),
        |&l: &f64| run_point(l, 1, 1_000),
    )
    .expect("io");
    assert!(a.is_complete());
    let b = checkpointed_sweep(
        vec![0.2f64, 0.6],
        &opts,
        &SweepCheckpoint::new(&path, 222),
        |&l: &f64| run_point(l, 2, 1_000),
    )
    .expect("io");
    assert!(b.is_complete());
    assert!(
        b.jobs.iter().all(|j| j.outcome == JobOutcome::Completed),
        "a mismatched key must force fresh runs, not restores"
    );
    std::fs::remove_file(&path).ok();
}
