//! Property-based tests of the Birkhoff–von-Neumann decomposition: for
//! arbitrary non-negative traffic matrices the extracted permutation
//! terms must reconstruct the demand exactly (up to the deterministic
//! padding that balances rows and columns), with every term a genuine
//! permutation and the weights summing to the balancing target.

use osmosis::ocs::bvn::decompose;
use proptest::prelude::*;

fn tm_strategy() -> impl Strategy<Value = (usize, Vec<u64>)> {
    // Draw the largest matrix and truncate to n×n: the vendored
    // proptest has no flat-map, so sizes are fixed at sample time.
    (2usize..=8, prop::collection::vec(0u64..64, 64..=64))
        .prop_map(|(n, entries)| (n, entries[..n * n].to_vec()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reconstruction conserves every row and column sum: the summed
    /// permutation terms equal the input plus padding, and padding only
    /// ever tops deficits up to the common target — so each row and
    /// column of the reconstruction sums to exactly `max(row, col sums)`.
    #[test]
    fn decomposition_conserves_row_and_column_sums(case in tm_strategy()) {
        let (n, tm) = case;
        let d = decompose(n, &tm);
        let rebuilt = d.reconstruct();

        // Elementwise: never below demand (padding is additive only).
        for (i, (&want, &got)) in tm.iter().zip(rebuilt.iter()).enumerate() {
            prop_assert!(got >= want, "entry {i}: rebuilt {got} < demand {want}");
        }

        // The balancing target is the max row/column sum of the input.
        let mut target = 0u64;
        for i in 0..n {
            let row: u64 = (0..n).map(|j| tm[i * n + j]).sum();
            let col: u64 = (0..n).map(|j| tm[j * n + i]).sum();
            target = target.max(row).max(col);
        }

        // Every row and column of the reconstruction hits the target
        // exactly — row/column sums are conserved and balanced.
        for i in 0..n {
            let row: u64 = (0..n).map(|j| rebuilt[i * n + j]).sum();
            let col: u64 = (0..n).map(|j| rebuilt[j * n + i]).sum();
            prop_assert_eq!(row, target, "row {} sum", i);
            prop_assert_eq!(col, target, "col {} sum", i);
        }

        // Weights sum to the target (each term covers every row once).
        prop_assert_eq!(d.total_weight(), target);
    }

    /// Every extracted term is a strictly positive-weight permutation of
    /// the full port set.
    #[test]
    fn terms_are_positive_permutations(case in tm_strategy()) {
        let (n, tm) = case;
        let d = decompose(n, &tm);
        for (k, term) in d.terms.iter().enumerate() {
            prop_assert!(term.weight > 0, "term {k} has zero weight");
            prop_assert_eq!(term.perm.len(), n);
            let mut seen = vec![false; n];
            for (input, &out) in term.perm.iter().enumerate() {
                prop_assert!(out < n, "term {k} input {input} maps out of range");
                prop_assert!(!seen[out], "term {k} output {out} claimed twice");
                seen[out] = true;
            }
        }
    }

    /// The decomposition is a pure function of its input.
    #[test]
    fn decomposition_is_deterministic(case in tm_strategy()) {
        let (n, tm) = case;
        let a = decompose(n, &tm);
        let b = decompose(n, &tm);
        prop_assert_eq!(a.terms.len(), b.terms.len());
        for (x, y) in a.terms.iter().zip(b.terms.iter()) {
            prop_assert_eq!(x.weight, y.weight);
            prop_assert_eq!(&x.perm, &y.perm);
        }
    }
}
