//! Telemetry-plane transparency: attaching a [`TelemetrySink`] (or the
//! zero-cost [`NullTelemetry`] default) to any simulator on the shared
//! engine leaves the report — fingerprint included — bit-identical to
//! the uninstrumented run, for all ten simulators. The sink itself is
//! deterministic too: two identically-seeded observed runs export
//! byte-identical JSONL, and the exported registry survives a JSON
//! round trip exactly.

use osmosis::fabric::multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
use osmosis::fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis::sched::Flppr;
use osmosis::sim::{EngineConfig, SeedSequence};
use osmosis::switch::driven::CellSwitch;
use osmosis::switch::{
    run_switch, run_switch_instrumented_traced, run_switch_traced, BurstSwitch, BvnSwitch,
    CioqSwitch, DeflectionSwitch, FifoSwitch, OqSwitch, RemoteSchedulerSwitch, VoqSwitch,
};
use osmosis::telemetry::{
    metrics, validate_jsonl, MetricsRegistry, NullTelemetry, TelemetryConfig, TelemetrySink,
};
use osmosis::traffic::BernoulliUniform;

fn cfg(seed: u64) -> EngineConfig {
    EngineConfig::new(200, 2_500).with_seed(seed)
}

fn sink() -> TelemetrySink {
    TelemetrySink::with_config(TelemetryConfig::exact().with_snapshot_every(500))
}

/// The telemetry transparency contract, checked for one simulator:
///
/// 1. a full [`TelemetrySink`] does not perturb the run: bit-identical
///    report fingerprint vs. the plain run;
/// 2. [`NullTelemetry`] (the zero-cost default) is equally invisible;
/// 3. the sink actually observed the run (cells counted, spans
///    accounted, span delay population == delivered measured cells);
/// 4. two identically-seeded observed runs export byte-identical JSONL
///    that passes schema validation.
fn assert_telemetry_transparent<S: CellSwitch>(
    name: &str,
    hosts: usize,
    load: f64,
    mk: impl Fn() -> S,
) {
    let plain = {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(1234));
        run_switch(&mut sw, &mut tr, &cfg(1234))
    };

    let observe = || {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(1234));
        let mut tel = sink();
        let r = run_switch_traced(&mut sw, &mut tr, &cfg(1234), &mut tel);
        (r, tel)
    };

    let (observed, tel) = observe();
    assert_eq!(
        plain.fingerprint(),
        observed.fingerprint(),
        "{name}: telemetry must not perturb the run"
    );

    let nulled = {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(1234));
        run_switch_instrumented_traced(&mut sw, &mut tr, &cfg(1234), &mut NullTelemetry, None, None)
    };
    assert_eq!(
        plain.fingerprint(),
        nulled.fingerprint(),
        "{name}: NullTelemetry must be bit-identical to no sink at all"
    );

    // The sink really watched: injections counted, and the span plane's
    // accounted population is exactly the engine's delay population
    // (cells injected after warmup AND delivered in the window — the
    // same gating the span plane applies).
    assert!(
        tel.registry().counter(metrics::CELLS_INJECTED) > 0,
        "{name}: no injections observed"
    );
    let d = tel.decomposition();
    assert_eq!(
        d.completed,
        plain.delay_hist.count(),
        "{name}: span population must equal the engine's delay population"
    );
    if d.completed > 0 {
        assert!(
            (d.segment_sum() - plain.mean_delay).abs() < 1e-9,
            "{name}: segment sums {} must reconcile with engine mean delay {}",
            d.segment_sum(),
            plain.mean_delay
        );
    }

    // Determinism of the export itself: same seed, byte-identical JSONL.
    let export = |tel: &TelemetrySink, report: &osmosis::sim::EngineReport| {
        let mut buf = Vec::new();
        tel.export_jsonl(&mut buf, report).expect("export");
        String::from_utf8(buf).expect("utf8")
    };
    let (observed2, tel2) = observe();
    let text = export(&tel, &observed);
    let text2 = export(&tel2, &observed2);
    assert_eq!(
        text, text2,
        "{name}: identically-seeded runs must export byte-identical JSONL"
    );
    let stats = validate_jsonl(&text)
        .unwrap_or_else(|e| panic!("{name}: exported JSONL failed validation: {e}"));
    assert_eq!(stats.metas, 1);
    assert_eq!(stats.summaries, 1);

    // The registry survives its JSON round trip bit-exactly.
    let reg_json = tel.registry().to_json();
    let back = MetricsRegistry::from_json(&reg_json).expect("registry parse");
    assert_eq!(
        back.to_json().encode(),
        reg_json.encode(),
        "{name}: registry JSON round trip must be exact"
    );
}

#[test]
fn voq_switch_telemetry_is_transparent() {
    assert_telemetry_transparent("voq", 16, 0.7, || {
        VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)))
    });
}

#[test]
fn fifo_switch_telemetry_is_transparent() {
    assert_telemetry_transparent("fifo", 16, 0.5, || FifoSwitch::new(16));
}

#[test]
fn oq_switch_telemetry_is_transparent() {
    assert_telemetry_transparent("oq", 16, 0.7, || OqSwitch::new(16));
}

#[test]
fn bvn_switch_telemetry_is_transparent() {
    assert_telemetry_transparent("bvn", 16, 0.6, || BvnSwitch::new(16));
}

#[test]
fn burst_switch_telemetry_is_transparent() {
    assert_telemetry_transparent("burst", 16, 0.6, || BurstSwitch::new(16, 8, 8));
}

#[test]
fn deflection_switch_telemetry_is_transparent() {
    assert_telemetry_transparent("deflection", 16, 0.6, || DeflectionSwitch::new(16, 4, 7));
}

#[test]
fn cioq_switch_telemetry_is_transparent() {
    assert_telemetry_transparent("cioq", 16, 0.8, || CioqSwitch::new(16, 2, 8));
}

#[test]
fn remote_scheduler_switch_telemetry_is_transparent() {
    assert_telemetry_transparent("remote_sched", 8, 0.5, || {
        RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 4)
    });
}

#[test]
fn fat_tree_fabric_telemetry_is_transparent() {
    assert_telemetry_transparent("multistage", 32, 0.5, || {
        FatTreeFabric::new(FabricConfig::small(8, 2))
    });
}

#[test]
fn multilevel_fabric_telemetry_is_transparent() {
    let topo = MultiLevelClos::new(4, 3);
    assert_telemetry_transparent("multilevel", topo.hosts(), 0.4, move || {
        MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2))
    });
}

#[test]
fn telemetry_composes_with_fault_and_audit_planes() {
    // All three engine hooks at once: telemetry + a real fault plan + the
    // invariant battery. The report must match the same faulted+audited
    // run without telemetry, bit for bit.
    use osmosis::faults::{FaultInjector, FaultKind, FaultPlan};
    use osmosis_audit::{AuditMode, AuditSet};

    let plan = || {
        FaultPlan::new()
            .one_shot(FaultKind::SoaStuckOff { output: 1 }, 400, Some(300))
            .periodic(FaultKind::GrantLoss { prob: 0.1 }, 200, 900, 250)
    };
    let run_one = |tel: Option<&mut TelemetrySink>| {
        let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)));
        let mut tr = BernoulliUniform::new(16, 0.7, &SeedSequence::new(77));
        let mut inj = FaultInjector::new(plan());
        let mut set = AuditSet::standard(AuditMode::FailFast);
        let r = match tel {
            Some(tel) => run_switch_instrumented_traced(
                &mut sw,
                &mut tr,
                &cfg(77),
                tel,
                Some(&mut inj),
                Some(&mut set),
            ),
            None => run_switch_instrumented_traced(
                &mut sw,
                &mut tr,
                &cfg(77),
                &mut osmosis::sim::NullTrace,
                Some(&mut inj),
                Some(&mut set),
            ),
        };
        assert_eq!(set.total_violations(), 0);
        r
    };
    let without = run_one(None);
    let mut tel = sink();
    let with = run_one(Some(&mut tel));
    assert_eq!(
        without.fingerprint(),
        with.fingerprint(),
        "telemetry must stay invisible under faults and audit"
    );
    assert!(tel.registry().counter(metrics::CELLS_DROPPED) > 0 || with.dropped == 0);
}
