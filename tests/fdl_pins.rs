//! Pinned fingerprints for the FDL-buffered multistage fabric.
//!
//! Same-seed runs of the fat tree with emulated fiber-delay-line input
//! buffers must be bit-exactly reproducible — clean, and under a
//! permanent dead-delay-line fault plan. The literals were captured
//! when the optical buffering plane landed (PR 9); any change that
//! perturbs one must consciously update the pin and say why in the
//! commit message.
//!
//! The electronic pin here is the same `multistage` literal pinned in
//! `fingerprint_pins.rs`: re-asserting it next to the FDL pins makes
//! the zero-cost claim local — flipping `buffer_tech` is the ONLY
//! thing that separates the first two captures.

use osmosis::fabric::multistage::{BufferTech, FabricConfig, FatTreeFabric};
use osmosis::faults::{FaultInjector, FaultKind, FaultPlan};
use osmosis::sim::{EngineConfig, SeedSequence};
use osmosis::traffic::BernoulliUniform;

const SEED: u64 = 1234;
const RADIX: usize = 8;
const LINK_DELAY: u64 = 2;

fn cfg() -> EngineConfig {
    EngineConfig::new(300, 3_000)
}

fn fabric(tech: BufferTech) -> FatTreeFabric {
    FatTreeFabric::new(FabricConfig {
        buffer_tech: tech,
        ..FabricConfig::small(RADIX, LINK_DELAY)
    })
}

fn uniform(n: usize, load: f64) -> BernoulliUniform {
    BernoulliUniform::new(n, load, &SeedSequence::new(SEED))
}

/// Kill the short half of leaf 0's delay lines from slot 0 — the same
/// shape `fdl_study`'s `DelayLinesDead` plan uses. Line indices follow
/// the global formula `(node·radix + input)·lines_per_queue + local`
/// with node 0, where `lines_per_queue == buffer_cells`.
fn dead_line_plan(lines_per_queue: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for input in 0..RADIX {
        for local in 0..lines_per_queue / 2 {
            let line = input * lines_per_queue + local;
            plan = plan.permanent(FaultKind::DelayLineDead { line }, 0);
        }
    }
    plan
}

fn capture(tech: BufferTech) -> u64 {
    let mut fab = fabric(tech);
    let hosts = fab.topology().hosts();
    fab.run(&mut uniform(hosts, 0.5), &cfg()).fingerprint()
}

fn capture_faulted() -> u64 {
    let mut fab = fabric(BufferTech::Fdl);
    let hosts = fab.topology().hosts();
    let lines_per_queue = FabricConfig::small(RADIX, LINK_DELAY).buffer_cells;
    let mut inj = FaultInjector::new(dead_line_plan(lines_per_queue));
    fab.run_faulted(&mut uniform(hosts, 0.5), &cfg(), &mut inj)
        .fingerprint()
}

/// Radix-8 fat tree, 2-slot links, seed 1234, 300 + 3000 slots, 50%
/// uniform Bernoulli load.
const ELECTRONIC_PIN: u64 = 0x7cdd_391d_75c3_0074;
const FDL_PIN: u64 = 0x06ed_5ef1_a1c8_5de3;
const FDL_FAULTED_PIN: u64 = 0xe85e_0082_de6e_3aa9;

#[test]
fn electronic_default_still_matches_the_multistage_pin() {
    // The buffer-plane seam is zero-cost: the electronic fabric built
    // through the `buffer_tech` field reproduces the pre-seam pin.
    assert_eq!(
        capture(BufferTech::Electronic),
        ELECTRONIC_PIN,
        "electronic multistage fingerprint drifted"
    );
}

#[test]
fn fdl_fingerprint_matches_pin() {
    assert_eq!(
        capture(BufferTech::Fdl),
        FDL_PIN,
        "FDL-buffered multistage fingerprint drifted"
    );
}

#[test]
fn fdl_faulted_fingerprint_matches_pin() {
    assert_eq!(
        capture_faulted(),
        FDL_FAULTED_PIN,
        "faulted FDL multistage fingerprint drifted"
    );
}

#[test]
fn fdl_same_seed_runs_are_bit_identical() {
    assert_eq!(capture(BufferTech::Fdl), capture(BufferTech::Fdl));
    assert_eq!(capture_faulted(), capture_faulted());
}

#[test]
fn the_technologies_and_faults_actually_separate() {
    // The FDL pin proves nothing if it coincides with the electronic
    // run, and the faulted pin proves nothing if dead lines are inert.
    assert_ne!(FDL_PIN, ELECTRONIC_PIN);
    assert_ne!(FDL_FAULTED_PIN, FDL_PIN);
}
