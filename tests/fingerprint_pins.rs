//! Pinned engine fingerprints for all ten simulators.
//!
//! These literal values were captured before the HashMap→BTreeMap and
//! unwrap burn-down refactor (PR 5) and prove that the refactor left
//! every simulator's report bit-identical. Any future change that
//! perturbs a fingerprint must consciously update the pin and explain
//! why in the commit message.

use osmosis::fabric::multilevel::{MultiLevelClos, MultiLevelConfig, MultiLevelFabric};
use osmosis::fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis::sched::Flppr;
use osmosis::sim::{EngineConfig, EngineReport, SeedSequence};
use osmosis::switch::{
    run_multicast, run_uniform, BurstSwitch, BvnSwitch, CioqSwitch, DeflectionSwitch, FifoSwitch,
    OqSwitch, RemoteSchedulerSwitch,
};
use osmosis::traffic::BernoulliUniform;

fn cfg() -> EngineConfig {
    EngineConfig::new(300, 3_000)
}

fn uniform(n: usize, load: f64, seed: u64) -> BernoulliUniform {
    BernoulliUniform::new(n, load, &SeedSequence::new(seed))
}

fn capture() -> Vec<(&'static str, u64)> {
    let s = 1234u64;
    let mut out: Vec<(&'static str, EngineReport)> = Vec::new();
    out.push((
        "voq",
        run_uniform(|| Box::new(Flppr::osmosis(16, 2)), 0.7, &cfg().with_seed(s)),
    ));
    out.push((
        "fifo",
        FifoSwitch::new(16).run(&mut uniform(16, 0.5, s), &cfg()),
    ));
    out.push((
        "oq",
        OqSwitch::new(16).run(&mut uniform(16, 0.7, s), &cfg()),
    ));
    out.push((
        "bvn",
        BvnSwitch::new(16).run(&mut uniform(16, 0.6, s), &cfg()),
    ));
    out.push((
        "burst",
        BurstSwitch::new(16, 8, 8).run(&mut uniform(16, 0.6, s), &cfg()),
    ));
    out.push((
        "deflection",
        DeflectionSwitch::new(16, 4, s).run(&mut uniform(16, 0.6, s), &cfg()),
    ));
    out.push((
        "cioq",
        CioqSwitch::new(16, 2, 8).run(&mut uniform(16, 0.8, s), &cfg()),
    ));
    out.push((
        "remote_sched",
        RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 4)
            .run(&mut uniform(8, 0.5, s), &cfg()),
    ));
    out.push(("multicast", run_multicast(16, 3, 0.2, 3_000, s)));
    out.push(("multistage", {
        let mut fab = FatTreeFabric::new(FabricConfig::small(8, 2));
        let hosts = fab.topology().hosts();
        fab.run(&mut uniform(hosts, 0.5, s), &cfg())
    }));
    out.push(("multilevel", {
        let topo = MultiLevelClos::new(4, 3);
        let mut fab = MultiLevelFabric::new(MultiLevelConfig::standard(topo, 2));
        fab.run(&mut uniform(topo.hosts(), 0.4, s), &cfg())
    }));
    out.into_iter().map(|(n, r)| (n, r.fingerprint())).collect()
}

/// Fingerprints captured on the commit preceding the static-analysis
/// refactor. The HashMap→BTreeMap conversions and the unwrap burn-down
/// must not perturb a single bit of any report.
const PINS: &[(&str, u64)] = &[
    ("voq", 0xbcfe_ba06_2d0e_ba76),
    ("fifo", 0xda3c_b239_af7b_f740),
    ("oq", 0x8d41_1187_2c49_8762),
    ("bvn", 0x316f_0339_2850_4561),
    ("burst", 0x0426_93ee_8fda_1e8d),
    ("deflection", 0x7c6a_2fd4_bd22_a98c),
    ("cioq", 0x8b8d_a37f_b734_d1f3),
    ("remote_sched", 0x8b25_4860_27ab_953e),
    ("multicast", 0x9cbd_4359_dfb6_1abf),
    ("multistage", 0x7cdd_391d_75c3_0074),
    ("multilevel", 0x18ca_f1b3_5fc3_e739),
];

#[test]
fn fingerprints_match_pre_refactor_pins() {
    let got = capture();
    assert_eq!(got.len(), PINS.len());
    for ((name, fp), (pin_name, pin)) in got.iter().zip(PINS) {
        assert_eq!(name, pin_name);
        assert_eq!(
            *fp, *pin,
            "{name}: fingerprint {fp:#018x} drifted from pinned {pin:#018x}"
        );
    }
}

/// Structural fingerprints of the topology compiler's expansions,
/// captured when the compiler landed (PR 6). The §V two-level pin also
/// asserts that the multistage simulator's internal expansion is the
/// very same graph — the declarative spec reproduces the hand-built
/// 2048-port fabric exactly.
const EXPANSION_PINS: &[(&str, u64)] = &[
    ("fat-tree:radix=64,levels=2,planes=2", 0xbe1a_8a40_048e_3cf4),
    ("dragonfly:radix=8,groups=4", 0xe28a_f9f4_81c0_596d),
    ("full-mesh:radix=8,switches=5", 0x649e_aa38_4a0c_285c),
];

#[test]
fn expansion_fingerprints_match_pins() {
    use osmosis::fabric::expand::ExpandedFabric;
    use osmosis::fabric::spec::TopologySpec;

    for (text, pin) in EXPANSION_PINS {
        let spec: TopologySpec = text.parse().unwrap();
        let fp = ExpandedFabric::expand(spec)
            .unwrap()
            .structural_fingerprint();
        assert_eq!(
            fp, *pin,
            "{text}: structural fingerprint {fp:#018x} drifted from {pin:#018x}"
        );
    }
    // The 2048-port §V fabric the multistage simulator wires itself from
    // is the pinned expansion, bit for bit.
    let fab = FatTreeFabric::new(FabricConfig::small(64, 2));
    assert_eq!(
        fab.expanded().structural_fingerprint(),
        EXPANSION_PINS[0].1,
        "multistage internal expansion drifted from the §V pin"
    );
}

/// The OCS mode hook is zero-cost: running packet simulators through
/// the circuit-switched entry point with the null circuit plane must
/// reproduce the pre-OCS pins bit for bit — the plane is dropped before
/// the slot loop ever sees it.
#[test]
fn null_circuit_plane_reproduces_pins() {
    use osmosis::sched::CellScheduler;
    use osmosis::sim::NullCircuits;
    use osmosis::switch::{run_switch_circuit, VoqSwitch};

    let s = 1234u64;
    let pin = |name: &str| {
        PINS.iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, fp)| fp)
            .expect("pinned simulator")
    };
    {
        let sched: Box<dyn CellScheduler> = Box::new(Flppr::osmosis(16, 2));
        let mut sw = VoqSwitch::new(sched);
        let cfg = cfg().with_seed(s);
        let mut tr = uniform(16, 0.7, cfg.seed);
        let r = run_switch_circuit(&mut sw, &mut tr, &cfg, &mut NullCircuits, None, None);
        assert_eq!(r.fingerprint(), pin("voq"), "voq drifted under the hook");
    }
    {
        let mut sw = FifoSwitch::new(16);
        let mut tr = uniform(16, 0.5, s);
        let r = run_switch_circuit(&mut sw, &mut tr, &cfg(), &mut NullCircuits, None, None);
        assert_eq!(r.fingerprint(), pin("fifo"), "fifo drifted under the hook");
    }
    {
        let mut sw = BvnSwitch::new(16);
        let mut tr = uniform(16, 0.6, s);
        let r = run_switch_circuit(&mut sw, &mut tr, &cfg(), &mut NullCircuits, None, None);
        assert_eq!(r.fingerprint(), pin("bvn"), "bvn drifted under the hook");
    }
}

/// Engine-report fingerprints of the compiled simulator over the two
/// non-fat-tree families, pinning routing and flow control end to end.
const COMPILED_PINS: &[(&str, u64)] = &[
    ("dragonfly:radix=8,groups=4", 0x30d9_f2a1_3616_bb8b),
    ("full-mesh:radix=8,switches=5", 0x4209_01b9_e65a_9686),
];

#[test]
fn compiled_family_fingerprints_match_pins() {
    use osmosis::fabric::expand::ExpandedFabric;
    use osmosis::fabric::spec::TopologySpec;
    use osmosis::fabric::CompiledFabric;

    for (text, pin) in COMPILED_PINS {
        let spec: TopologySpec = text.parse().unwrap();
        let fab = ExpandedFabric::expand(spec).unwrap();
        let hosts = fab.hosts.len();
        let mut sim = CompiledFabric::over(fab);
        let r = sim.run(&mut uniform(hosts, 0.4, 1234), &cfg());
        assert_eq!(
            r.fingerprint(),
            *pin,
            "{text}: report fingerprint {:#018x} drifted from {pin:#018x}",
            r.fingerprint()
        );
    }
}
