//! The invariant-audit plane, exercised end to end: every simulator in
//! the workspace runs with the full battery attached, clean and under
//! the fault plans the resilience subsystem reacts to. Three contracts:
//!
//! 1. **Zero-cost attachment.** Auditors on a clean run find nothing and
//!    leave the report — fingerprint included — bit-identical to the
//!    unaudited run (no `audit_violations` extra is ever set for a clean
//!    run).
//! 2. **Invariants hold under faults.** Cell conservation (with every
//!    drop accounted by reason), credit conservation (including the
//!    resync path after dropped credits), per-flow order (through
//!    go-back-N retransmissions), and capacity legality all pass for the
//!    reactive models under their fault plans.
//! 3. **Violations are detectable.** The liveness watchdog actually
//!    fires when an output is genuinely blocked — the battery is not
//!    vacuously green.

use osmosis::fabric::multistage::{FabricConfig, FatTreeFabric};
use osmosis::faults::{FaultInjector, FaultKind, FaultPlan, LINK_ANY};
use osmosis::sched::Flppr;
use osmosis::sim::{EngineConfig, SeedSequence};
use osmosis::switch::driven::CellSwitch;
use osmosis::switch::{run_switch, run_switch_instrumented, RemoteSchedulerSwitch, VoqSwitch};
use osmosis::traffic::BernoulliUniform;
use osmosis_audit::{AuditMode, AuditSet, ViolationKind};

fn cfg(seed: u64) -> EngineConfig {
    EngineConfig::new(200, 3_000).with_seed(seed)
}

/// Run `mk()` under `plan` with the standard battery; assert it audits
/// clean and that the audit did not perturb the run.
fn assert_clean_under<S: CellSwitch>(
    name: &str,
    hosts: usize,
    load: f64,
    seed: u64,
    plan: FaultPlan,
    mk: impl Fn() -> S,
) {
    let unaudited = {
        let mut sw = mk();
        let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
        let mut inj = FaultInjector::new(plan.clone());
        run_switch_instrumented(&mut sw, &mut tr, &cfg(seed), Some(&mut inj), None)
    };
    let mut sw = mk();
    let mut tr = BernoulliUniform::new(hosts, load, &SeedSequence::new(seed));
    let mut inj = FaultInjector::new(plan);
    let mut set = AuditSet::standard(AuditMode::Accumulate);
    let audited =
        run_switch_instrumented(&mut sw, &mut tr, &cfg(seed), Some(&mut inj), Some(&mut set));
    assert_eq!(
        set.total_violations(),
        0,
        "{name}: invariants must hold: {}",
        set.report()
    );
    assert!(set.report().is_clean());
    assert_eq!(
        unaudited.fingerprint(),
        audited.fingerprint(),
        "{name}: a clean audit must not perturb the faulted run"
    );
    assert_eq!(
        audited.extra("audit_violations"),
        None,
        "{name}: a clean run must not grow an audit extra"
    );
}

#[test]
fn voq_switch_audits_clean_under_soa_and_receiver_faults() {
    // SOA gate failures force the scheduler around the dead output;
    // receiver death drops cells at a *dual-receiver* egress — both must
    // stay inside the conservation and capacity-legality ledgers.
    let plan = FaultPlan::new()
        .one_shot(FaultKind::SoaStuckOff { output: 2 }, 400, Some(500))
        .one_shot(FaultKind::ReceiverDeath { output: 5 }, 800, Some(600));
    assert_clean_under("voq", 16, 0.7, 42, plan, || {
        VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)))
    });
}

#[test]
fn remote_scheduler_audits_clean_under_grant_loss() {
    // Lost grants re-enter the control loop: the cell stays queued, the
    // re-request flies again — conservation and order must both survive.
    let plan = FaultPlan::new().permanent(FaultKind::GrantLoss { prob: 0.15 }, 0);
    assert_clean_under("remote_sched", 8, 0.5, 43, plan, || {
        RemoteSchedulerSwitch::new(Box::new(Flppr::osmosis(8, 1)), 4)
    });
}

#[test]
fn fat_tree_audits_clean_under_credit_drops() {
    // Dropped credit returns take the resync path; the credit ledger
    // (held + in flight + occupancy = capacity) must balance every slot,
    // resync flights included.
    let plan = FaultPlan::new().one_shot(FaultKind::CreditDrop { prob: 0.3 }, 500, Some(1_500));
    assert_clean_under("fat-tree/credit", 32, 0.5, 44, plan, || {
        FatTreeFabric::new(FabricConfig::small(8, 2))
    });
}

#[test]
fn fat_tree_audits_clean_under_link_ber() {
    // Go-back-N retransmission: corrupted cells resend one RTT later and
    // every successor on the link queues up behind them — per-flow order
    // at egress must hold through the whole stall.
    let plan = FaultPlan::new().permanent(
        FaultKind::LinkBerBurst {
            link: LINK_ANY,
            cell_error_prob: 0.05,
        },
        0,
    );
    assert_clean_under("fat-tree/ber", 32, 0.4, 45, plan, || {
        FatTreeFabric::new(FabricConfig::small(8, 2))
    });
}

#[test]
fn liveness_watchdog_fires_on_a_blocked_output() {
    // An SOA plane stuck off for 800 slots starves the VOQs behind it:
    // with a 100-slot wait bound the watchdog must report starvation —
    // proof the battery detects real violations, not just vacuous green.
    let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)));
    let mut tr = BernoulliUniform::new(16, 0.6, &SeedSequence::new(46));
    let plan = FaultPlan::new().one_shot(FaultKind::SoaStuckOff { output: 3 }, 300, Some(800));
    let mut inj = FaultInjector::new(plan);
    let mut set = AuditSet::new(AuditMode::Accumulate).with_liveness(100);
    run_switch_instrumented(&mut sw, &mut tr, &cfg(46), Some(&mut inj), Some(&mut set));
    assert!(
        set.total_violations() > 0,
        "an 800-slot outage must trip a 100-slot wait bound"
    );
    let report = set.report();
    let starved = report
        .entries
        .iter()
        .flat_map(|e| e.sample.iter())
        .any(|v| matches!(v.kind, ViolationKind::Starvation { output: 3, .. }));
    assert!(starved, "the starved output must be named: {report}");
}

#[test]
fn liveness_watchdog_stays_quiet_within_bound() {
    let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)));
    let mut tr = BernoulliUniform::new(16, 0.6, &SeedSequence::new(46));
    let plain = run_switch(&mut sw, &mut tr, &cfg(46));

    let mut sw = VoqSwitch::new(Box::new(Flppr::osmosis(16, 2)));
    let mut tr = BernoulliUniform::new(16, 0.6, &SeedSequence::new(46));
    let mut set = AuditSet::standard(AuditMode::FailFast).with_liveness(2_000);
    let audited = run_switch_instrumented(&mut sw, &mut tr, &cfg(46), None, Some(&mut set));
    assert_eq!(set.total_violations(), 0);
    assert_eq!(plain.fingerprint(), audited.fingerprint());
}
