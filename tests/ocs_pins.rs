//! Pinned fingerprints for the circuit-switched mode.
//!
//! Same-seed OCS runs must be bit-exactly reproducible — per workload,
//! and under an injected stuck-circuit fault schedule. The literals
//! were captured when the OCS subsystem landed (PR 7); any change that
//! perturbs one must consciously update the pin and say why in the
//! commit message.

use osmosis::core::experiments::ocs_study::workload;
use osmosis::faults::{FaultInjector, FaultKind, FaultPlan};
use osmosis::ocs::{run_ocs, run_ocs_instrumented, EpochConfig};
use osmosis::sim::EngineConfig;

const SEED: u64 = 1234;
const MEASURE: u64 = 3_000;

fn cfg() -> EngineConfig {
    EngineConfig::new(300, MEASURE).with_seed(SEED)
}

/// The ML workloads, in [`osmosis::core::experiments::ocs_study::WORKLOADS`]
/// order, each run once through the OCS mode at 16 ports.
fn capture() -> Vec<String> {
    osmosis::core::experiments::ocs_study::WORKLOADS
        .iter()
        .map(|&name| {
            let mut tr = workload(name, 16, MEASURE, SEED).expect("known workload");
            let r = run_ocs(tr.as_mut(), EpochConfig::osmosis_default(), &cfg());
            format!("{name}:{:016x}", r.fingerprint())
        })
        .collect()
}

fn capture_faulted() -> String {
    let plan = FaultPlan::new()
        .one_shot(FaultKind::CircuitStuck { input: 3 }, 700, Some(500))
        .one_shot(FaultKind::CircuitStuck { input: 9 }, 1_800, None);
    let mut inj = FaultInjector::new(plan);
    let mut tr = workload("hotspot_skew", 16, MEASURE, SEED).expect("skew");
    let r = run_ocs_instrumented(
        tr.as_mut(),
        EpochConfig::osmosis_default(),
        &cfg(),
        Some(&mut inj),
        None,
    );
    format!("hotspot_skew+faults:{:016x}", r.fingerprint())
}

/// Fingerprints captured at 16 ports, seed 1234, 300 + 3000 slots, the
/// default 64-slot epoch with 1 guard slot.
const OCS_PINS: &[&str] = &[
    "uniform:2ca4daf8e7aada56",
    "allreduce_ring:6a4a214906af275a",
    "allreduce_tree:fabf47cb07a9f199",
    "incast:a32225dc2c2c091c",
    "hotspot_skew:e3efd9da682502b4",
    "diurnal:ba5b88c2f11204ae",
];

/// The same skew workload with two stuck-circuit faults injected.
const OCS_FAULTED_PIN: &str = "hotspot_skew+faults:0fe1d53ab4cd1697";

#[test]
fn ocs_fingerprints_match_pins() {
    let got = capture();
    assert_eq!(
        got.iter().map(String::as_str).collect::<Vec<_>>(),
        OCS_PINS,
        "OCS per-workload fingerprints drifted"
    );
}

#[test]
fn ocs_same_seed_runs_are_bit_identical() {
    assert_eq!(capture(), capture());
}

#[test]
fn ocs_faulted_run_matches_pin_and_reproduces() {
    let a = capture_faulted();
    assert_eq!(a, OCS_FAULTED_PIN, "faulted OCS fingerprint drifted");
    assert_eq!(a, capture_faulted());
}

#[test]
fn faults_actually_perturb_the_run() {
    // The stuck-circuit plan must change behaviour — otherwise the
    // faulted pin proves nothing.
    let clean = &capture()[4];
    let (_, clean_fp) = clean.split_once(':').expect("name:fp");
    let (_, faulted_fp) = OCS_FAULTED_PIN.split_once(':').expect("name:fp");
    assert_ne!(clean_fp, faulted_fp);
}
