//! Property-based tests at the system level: the switch and fabric
//! invariants (losslessness, ordering, throughput ≤ offered) hold for
//! arbitrary loads, seeds and topologies; the statistics kernels match
//! naive references.

use osmosis::fabric::multistage::{BufferTech, FabricConfig, FatTreeFabric, Placement};
use osmosis::sched::Flppr;
use osmosis::sim::stats::{Histogram, Welford};
use osmosis::sim::SeedSequence;
use osmosis::switch::{run_uniform, EngineConfig};
use osmosis::traffic::{BernoulliUniform, Bursty, Hotspot, TrafficGen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The OSMOSIS switch never drops, never reorders, and never carries
    /// more than offered — for arbitrary load and seed.
    #[test]
    fn switch_invariants(load in 0.01f64..0.97, seed in any::<u64>(), dual in any::<bool>()) {
        let r = run_uniform(
            || Box::new(Flppr::osmosis(8, if dual { 2 } else { 1 })),
            load,
            &EngineConfig::new(200, 2_000).with_seed(seed),
        );
        prop_assert_eq!(r.dropped, 0);
        prop_assert_eq!(r.reordered, 0);
        prop_assert!(r.throughput <= r.offered_load + 0.05);
        // Stable region: carried ≈ offered.
        if load < 0.9 {
            prop_assert!((r.throughput - r.offered_load).abs() < 0.05);
        }
    }

    /// Fabric invariants hold for arbitrary traffic shape and placement.
    #[test]
    fn fabric_invariants(
        load in 0.05f64..0.6,
        seed in any::<u64>(),
        placement_idx in 0usize..3,
        bursty in any::<bool>(),
    ) {
        let placement = [
            Placement::InputAndOutput,
            Placement::OutputOnly,
            Placement::InputOnly,
        ][placement_idx];
        let cfg = FabricConfig {
            radix: 8,
            link_delay: 2,
            buffer_cells: 8,
            iterations: 2,
            placement,
            buffer_tech: BufferTech::Electronic,
        };
        let mut fab = FatTreeFabric::new(cfg);
        let hosts = fab.topology().hosts();
        let seeds = SeedSequence::new(seed);
        let mut tr: Box<dyn TrafficGen> = if bursty {
            Box::new(Bursty::new(hosts, load, 8.0, &seeds))
        } else {
            Box::new(BernoulliUniform::new(hosts, load, &seeds))
        };
        // The sim panics internally on any buffer overflow (losslessness).
        let r = fab.run(tr.as_mut(), &EngineConfig::new(300, 2_500));
        prop_assert_eq!(r.reordered, 0);
        prop_assert!(r.max_queue_depth <= cfg.buffer_cells);
        prop_assert!(r.throughput <= r.offered_load + 0.05);
    }

    /// Hotspot overload at arbitrary intensity never breaks losslessness
    /// or ordering anywhere in the fabric.
    #[test]
    fn fabric_hotspot_invariants(hot_frac in 0.1f64..0.9, seed in any::<u64>()) {
        let cfg = FabricConfig::small(8, 2);
        let mut fab = FatTreeFabric::new(cfg);
        let hosts = fab.topology().hosts();
        let mut tr = Hotspot::new(hosts, 0.5, 3, hot_frac, &SeedSequence::new(seed));
        let r = fab.run(&mut tr, &EngineConfig::new(300, 2_500));
        prop_assert_eq!(r.reordered, 0);
        prop_assert!(r.max_queue_depth <= cfg.buffer_cells);
    }
}

proptest! {
    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / (xs.len() - 1) as f64;
            prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
    }

    /// Welford merge is order-independent.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.add(x);
        }
        for &x in &xs[split..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
    }

    /// Histogram quantiles bracket the true order statistics within one
    /// bucket width.
    #[test]
    fn histogram_quantile_bounds(
        xs in prop::collection::vec(0f64..100.0, 10..300),
        q in 0.01f64..0.99,
    ) {
        let mut h = Histogram::new(1.0, 200);
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
        let truth = sorted[idx];
        let est = h.quantile(q).unwrap();
        prop_assert!((est - truth).abs() <= 1.0 + 1e-9, "est {est} truth {truth}");
    }
}
