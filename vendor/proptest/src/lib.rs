//! Minimal stand-in for the `proptest` property-testing framework,
//! vendored so the workspace builds without registry access (see
//! `vendor/README.md`).
//!
//! It implements the subset of the proptest 1.x API the workspace's tests
//! use: the [`Strategy`] trait with `prop_map`, numeric-range / tuple /
//! `any` strategies, `prop::collection::vec`, `prop::array::uniform*`,
//! `prop::sample::select`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and `prop_assert*` / `prop_assume!`.
//!
//! Differences from proptest proper: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name and case index, so failures are
//! reproducible by re-running the test binary), there is **no shrinking**,
//! and `prop_assume!` skips the current case rather than resampling.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access to the strategy constructors
    /// (`prop::collection::vec`, `prop::sample::select`, ...).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item expands to a normal `#[test]` that samples the strategies for a
/// configurable number of cases and runs the body against each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unused_must_use)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        stringify!($name),
                        case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        { $body };
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fail the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Skip the current case when the precondition does not hold. (Proptest
/// proper resamples; this stand-in simply treats the case as vacuous.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges respect their bounds; tuples and maps compose.
        #[test]
        fn strategies_sample_in_bounds(
            x in 0u32..10,
            y in 1u8..=3,
            f in -2.0f64..2.0,
            pair in (0usize..5, 0usize..7),
            v in prop::collection::vec(any::<bool>(), 2..6),
            sel in prop::sample::select(vec![4usize, 6, 8]),
            arr in prop::array::uniform::<_, 4>(0u8..9),
            mapped in (0u32..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(x < 10);
            prop_assert!((1..=3).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(pair.0 < 5 && pair.1 < 7);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!([4usize, 6, 8].contains(&sel));
            prop_assert!(arr.iter().all(|&b| b < 9));
            prop_assert_eq!(mapped % 2, 0);
            prop_assert_ne!(mapped, 1);
            prop_assume!(x > 0);
            prop_assert!(x >= 1);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let strat = (0u64..1000, prop::collection::vec(any::<u8>(), 0..=8));
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        let _ = strat.sample(&mut c); // different case: just must not panic
    }

    #[test]
    fn prop_assert_failure_is_reported() {
        fn inner() -> TestCaseResult {
            prop_assert!(false, "expected failure {}", 42);
            Ok(())
        }
        let err = inner().unwrap_err();
        assert!(format!("{err}").contains("expected failure 42"));
    }
}
