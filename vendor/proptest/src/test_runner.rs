//! Test-case configuration, error type, and the deterministic RNG behind
//! strategy sampling.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Proptest proper defaults to 256; many of the workspace's
        // properties run full slotted simulations per case, so the
        // stand-in default is lower. Tests that need a specific count set
        // it with `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// An assertion failure with the given reason.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias of [`TestCaseError::fail`] (proptest distinguishes rejects
    /// from failures; the stand-in does not resample).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand for a test-case body result.
pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64-based sampling RNG, seeded from the test name and case
/// index so every case is reproducible by rerunning the test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for `(test, case)`.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // One warmup step decorrelates adjacent cases.
        rng.next_u64();
        rng
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, span)`; `span` must be nonzero. Debiased by
    /// rejection from the top of the range.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other_case = TestRng::deterministic("x", 1);
        let mut other_name = TestRng::deterministic("y", 0);
        assert_ne!(a[0], other_case.next_u64());
        assert_ne!(a[0], other_name.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::deterministic("below", 0);
        for span in [1u64, 2, 3, 10, 1 << 40] {
            for _ in 0..50 {
                assert!(r.below(span) < span);
            }
        }
    }
}
