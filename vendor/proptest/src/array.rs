//! Fixed-size array strategies (`prop::array::uniform*`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`uniform`].
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

/// An `[T; N]` of independent `element` samples.
pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
    UniformArray { element }
}

/// An `[T; 32]` of independent `element` samples.
pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
    uniform(element)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_have_fixed_length_and_bounded_elements() {
        let mut rng = TestRng::deterministic("array", 0);
        let a: [u8; 34] = uniform::<_, 34>(0u8..5).sample(&mut rng);
        assert!(a.iter().all(|&x| x < 5));
        let b = uniform32(crate::arbitrary::any::<u8>()).sample(&mut rng);
        assert_eq!(b.len(), 32);
    }
}
