//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `Vec` of `element` samples with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_every_size_range_form() {
        let mut rng = TestRng::deterministic("vec", 0);
        for _ in 0..50 {
            assert_eq!(vec(0u8..5, 3).sample(&mut rng).len(), 3);
            let l = vec(0u8..5, 1..4).sample(&mut rng).len();
            assert!((1..4).contains(&l));
            let l = vec(0u8..5, 0..=2).sample(&mut rng).len();
            assert!(l <= 2);
        }
    }
}
