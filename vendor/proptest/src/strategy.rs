//! The [`Strategy`] trait and the built-in range / tuple / map strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike proptest proper
/// there is no value tree or shrinking: a strategy is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_bounds_eventually() {
        let mut rng = TestRng::deterministic("cover", 0);
        let s = 0u8..=1;
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn signed_ranges_handle_negative_bounds() {
        let mut rng = TestRng::deterministic("signed", 0);
        let s = -5i32..5;
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn just_and_map() {
        let mut rng = TestRng::deterministic("just", 0);
        assert_eq!(Just(7u32).sample(&mut rng), 7);
        let doubled = Just(7u32).prop_map(|x| x * 2);
        assert_eq!(doubled.sample(&mut rng), 14);
    }
}
