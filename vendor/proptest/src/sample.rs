//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Pick uniformly from a fixed, non-empty list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_options() {
        let mut rng = TestRng::deterministic("select", 0);
        let s = select(vec![4usize, 6, 8]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
