//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes — good enough
        // for property tests without NaN/Inf edge cases.
        let mag = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32 - 30) as f64;
        mag * exp.exp2()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_samples_each_primitive() {
        let mut rng = TestRng::deterministic("any", 0);
        let _: u8 = any::<u8>().sample(&mut rng);
        let _: u64 = any::<u64>().sample(&mut rng);
        let _: usize = any::<usize>().sample(&mut rng);
        let f = any::<f64>().sample(&mut rng);
        assert!(f.is_finite());
        let mut saw = [false; 2];
        for _ in 0..64 {
            saw[any::<bool>().sample(&mut rng) as usize] = true;
        }
        assert_eq!(saw, [true, true]);
    }
}
