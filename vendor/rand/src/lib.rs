//! Trait-only stand-in for the `rand` crate, vendored so the workspace
//! builds without registry access (the build environment is fully
//! offline — see `vendor/README.md`).
//!
//! The workspace uses `rand` solely as a *vocabulary*: `osmosis-sim`
//! implements [`RngCore`] for its own xoshiro256\*\* generator so that it
//! composes with external code expecting the standard trait. No generator,
//! distribution, or OS entropy from the real crate is used anywhere, so
//! this stub only carries the trait definition (API-compatible with
//! rand 0.9).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// The core random-number-generator trait, matching `rand 0.9`'s
/// `rand_core::RngCore` surface.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn trait_is_object_safe_and_forwards_through_refs() {
        let mut c = Counter(0);
        let dynref: &mut dyn RngCore = &mut c;
        assert_eq!(dynref.next_u64(), 1);
        let by_ref = &mut c;
        assert_eq!(by_ref.next_u64(), 2);
        let mut buf = [0u8; 3];
        by_ref.fill_bytes(&mut buf);
        assert_eq!(buf, [3, 4, 5]);
    }
}
