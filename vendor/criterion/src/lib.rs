//! Minimal stand-in for the `criterion` benchmark harness, vendored so the
//! workspace builds without registry access (see `vendor/README.md`).
//!
//! It implements the subset of the criterion 0.5 API the workspace's
//! benches use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-measure timing loop instead of criterion's statistical
//! machinery. Results are printed as mean wall time per iteration plus
//! derived throughput; there is no outlier analysis, plotting, or saved
//! baseline comparison.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value or the computation behind it.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group: per-iteration work volume.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A two-part benchmark identifier: function name plus parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in criterion proper.
    pub fn new<S: Display, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// A parameter-only id (criterion's `from_parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id; lets `bench_function` accept
/// both plain strings and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    /// Mean wall time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Time `f`: one untimed warmup call, then enough timed iterations to
    /// fill a small budget (at least 3 calls).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let budget = Duration::from_millis(300);
        let mut iters = 0u32;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if iters >= 3 && start.elapsed() >= budget {
                break;
            }
            if iters >= 1000 {
                break;
            }
        }
        self.elapsed_per_iter = start.elapsed() / iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with per-iteration work volume.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run a benchmark closure.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.into_id(), b.elapsed_per_iter);
    }

    /// Run a benchmark closure against a borrowed input value.
    pub fn bench_with_input<I, V: ?Sized, F: FnMut(&mut Bencher, &V)>(
        &mut self,
        id: I,
        input: &V,
        mut f: F,
    ) where
        I: IntoBenchmarkId,
    {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.into_id(), b.elapsed_per_iter);
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &str, per_iter: Duration) {
        let secs = per_iter.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / secs)
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / secs)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {per_iter:>12.3?}/iter{rate}", self.name);
    }
}

/// Top-level benchmark context (criterion's entry object).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Bundle benchmark functions into a runnable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        assert!(ran >= 4, "warmup + at least 3 timed iterations, got {ran}");
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("fat_tree", 8).into_id(), "fat_tree/8");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
