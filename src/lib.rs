//! Umbrella crate: re-exports the OSMOSIS workspace crates for integration
//! tests and examples. See `osmosis-core` for the main public API.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use osmosis_analysis as analysis;
pub use osmosis_campaign as campaign;
pub use osmosis_core as core;
pub use osmosis_fabric as fabric;
pub use osmosis_faults as faults;
pub use osmosis_fdl as fdl;
pub use osmosis_fec as fec;
pub use osmosis_ocs as ocs;
pub use osmosis_phy as phy;
pub use osmosis_sched as sched;
pub use osmosis_sim as sim;
pub use osmosis_switch as switch;
pub use osmosis_telemetry as telemetry;
pub use osmosis_traffic as traffic;
